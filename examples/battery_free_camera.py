#!/usr/bin/env python3
"""A battery-free camera left in a wall cavity (the §5.2 motivation).

The paper pitches the camera at hard-to-reach places — walls, attics,
sewers — where replacing batteries is impractical. This example places the
battery-free camera behind each Fig 13 wall material at several distances
and prints the achievable frame cadence, plus a super-capacitor charge
timeline for one capture cycle.

Usage::

    python examples/battery_free_camera.py
"""

from repro.harvester.storage import SuperCapacitor
from repro.rf.link import LinkBudget, Transmitter
from repro.rf.materials import WALL_MATERIALS
from repro.sensors.camera import IMAGE_CAPTURE_ENERGY_J, WiFiCamera


def charge_timeline(camera: WiFiCamera, harvested_w: float) -> float:
    """Seconds to charge the supercap through one capture window."""
    supercap = SuperCapacitor()
    if harvested_w <= 0:
        return float("inf")
    # Energy to go from the 2.4 V floor to the 3.1 V activation threshold.
    return supercap.usable_energy_j / harvested_w


def main() -> None:
    link = LinkBudget(Transmitter(tx_power_dbm=30.0))
    camera = WiFiCamera(battery_recharging=False)

    print("Battery-free Wi-Fi camera (OV7670 + MSP430FR5969)")
    print(f"Energy per QCIF capture: {IMAGE_CAPTURE_ENERGY_J * 1e3:.1f} mJ")
    print(f"Operating range in free space: {camera.range_feet(link):.1f} ft\n")

    header = f"{'wall':<14}" + "".join(f"{d:>4} ft" for d in (3, 5, 8, 12, 15))
    print("Minutes between frames by wall material and distance:")
    print(header)
    for name, material in WALL_MATERIALS.items():
        row = f"{name:<14}"
        for feet in (3, 5, 8, 12, 15):
            outcome = camera.evaluate_at(
                link, feet, wall=material if material.attenuation_db else None
            )
            if outcome.operational:
                row += f"{outcome.inter_frame_minutes:6.1f}"
            else:
                row += f"{'--':>6}"
        print(row)

    print("\nSuper-capacitor charge cycle at 5 ft through sheetrock:")
    outcome = camera.evaluate_at(link, 5.0, wall=WALL_MATERIALS["sheetrock"])
    charge_s = charge_timeline(camera, outcome.harvested_power_w)
    print(f"  harvested power:           {outcome.harvested_power_w * 1e6:6.1f} uW")
    print(f"  3.1 V activation charge:   {charge_s / 60:6.1f} minutes")
    print("  -> the bq25570's buck then runs the camera from 3.1 V down to")
    print("     2.4 V, capturing one frame, and the cycle repeats.")


if __name__ == "__main__":
    main()
