#!/usr/bin/env python3
"""Replay the §6 home-deployment study (Table 1, Figs 14-15).

Generates each home's 24-hour occupancy log, prints the Fig 14 summary, and
derives the Fig 15 sensor update-rate distribution at ten feet.

Usage::

    python examples/home_deployment.py [seed]
"""

import sys

from repro.experiments.fig14_homes import run_fig14
from repro.experiments.fig15_home_sensor import run_fig15
from repro.experiments.table1_homes import run_table1


def sparkline(samples, buckets: int = 48) -> str:
    """Compress a day of samples into a one-line unicode profile."""
    glyphs = " .:-=+*#%@"
    step = max(1, len(samples) // buckets)
    downsampled = [
        sum(samples[i : i + step]) / len(samples[i : i + step])
        for i in range(0, len(samples), step)
    ]
    top = max(downsampled) or 1.0
    return "".join(
        glyphs[min(len(glyphs) - 1, int(v / top * (len(glyphs) - 1)))]
        for v in downsampled
    )


def main(seed: int = 0) -> None:
    print("Table 1 — deployment parameters")
    print(run_table1().as_text())

    print("\nGenerating 24-hour logs for all six homes...")
    study = run_fig14(seed=seed)

    print("\nFig 14 — cumulative occupancy over the day (one glyph ~ 30 min):")
    for home in study.homes:
        profile = sparkline(home.cumulative.samples)
        print(
            f"  home {home.profile.index} ({home.profile.neighboring_aps:>2} APs) "
            f"mean {100 * home.mean_cumulative:5.1f} %  |{profile}|"
        )
    low, high = study.mean_cumulative_range
    print(f"  mean cumulative range: {100 * low:.0f}-{100 * high:.0f} %  (paper: 78-127 %)")

    print("\nFig 15 — battery-free sensor at 10 ft, update-rate medians:")
    result = run_fig15(study)
    for index in sorted(result.samples_by_home):
        print(f"  home {index}: median {result.median(index):5.2f} reads/s")
    verdict = "yes" if result.all_homes_deliver_power else "no"
    print(f"  power delivered in every home: {verdict}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 0)
