#!/usr/bin/env python3
"""Quickstart: stand up a PoWiFi router and measure what a harvester sees.

Runs the core design end to end in a few seconds:

1. three channel media (1, 6, 11) with ambient office traffic;
2. a PoWiFi router — per-channel injectors pacing 1500-byte UDP broadcast
   power packets at 54 Mb/s behind the IP_Power queue-depth gate;
3. the paper's occupancy metric per channel and cumulatively;
4. the harvester chain converting that occupancy into sensor update rates
   at a few distances.

Usage::

    python examples/quickstart.py [seconds]
"""

import sys

from repro.core.config import Scheme
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.mac80211.medium import Medium
from repro.rf.link import LinkBudget, Transmitter
from repro.sensors.temperature import TemperatureSensor
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.office import OfficeBackground


def main(duration_s: float = 3.0) -> None:
    sim = Simulator()
    streams = RandomStreams(seed=42)
    media = {ch: Medium(sim, channel=ch) for ch in (1, 6, 11)}

    router = PoWiFiRouter(sim, media, streams, RouterConfig(scheme=Scheme.POWIFI))
    office = OfficeBackground(sim, media, streams)

    print(f"Running PoWiFi for {duration_s:.1f} simulated seconds...")
    router.start()
    office.start()
    sim.run(until=duration_s)

    print("\nRouter channel occupancy (the paper's sum(size/rate) metric):")
    for channel, occupancy in sorted(router.occupancy_by_channel().items()):
        print(f"  channel {channel:>2}: {100 * occupancy:5.1f} %")
    cumulative = router.cumulative_occupancy()
    print(f"  cumulative: {100 * cumulative:5.1f} %   (paper reports ~95 % in the office)")

    frames = sum(injector.sent for injector in router.injectors.values())
    drops = sum(injector.dropped_by_gate for injector in router.injectors.values())
    print(f"\nPower frames transmitted: {frames}")
    print(f"Power datagrams dropped by the IP_Power gate: {drops}")

    print("\nWhat a battery-free temperature sensor harvests from this router:")
    link = LinkBudget(Transmitter(tx_power_dbm=30.0))
    sensor = TemperatureSensor()
    for feet in (5, 10, 15, 20):
        rx_dbm = link.received_power_dbm_at_feet(feet)
        rate = sensor.update_rate_hz(rx_dbm, occupancy=cumulative)
        print(
            f"  {feet:>2} ft: {rx_dbm:6.1f} dBm incident -> "
            f"{rate:6.2f} temperature reads/s"
        )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 3.0)
