#!/usr/bin/env python3
"""Craft real PoWiFi power-packet bytes and replay the capture pipeline.

This is the scapy-style prototyping path: build the exact on-air bytes of a
power frame (802.11 broadcast data + LLC/SNAP + IPv4 with the IP_Power
option + UDP), hexdump the interesting headers, then run a simulated router
with a monitor capture and compute channel occupancy from the resulting
pcap file — the same tcpdump/tshark pipeline the paper used.

Usage::

    python examples/packet_injection.py [output.pcap]
"""

import sys

from repro.core.config import Scheme
from repro.core.occupancy import occupancy_from_pcap
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.mac80211.capture import MonitorCapture
from repro.mac80211.medium import Medium
from repro.packets.builder import PowerPacketBuilder
from repro.packets.bytesutil import hexdump
from repro.packets.dot11 import Dot11Data, MacAddress
from repro.packets.ipv4 import IPv4Packet
from repro.packets.llc import LlcSnapHeader
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def show_power_frame() -> None:
    builder = PowerPacketBuilder(
        interface_id=1,
        router_mac=MacAddress.from_string("02:00:00:00:00:01"),
    )
    frame = builder.build_frame()
    raw = frame.encode(with_fcs=True)
    print(f"One power frame: {len(raw)} bytes on the air")
    print("\n802.11 header + LLC/SNAP (first 32 bytes):")
    print(hexdump(raw[:32]))

    decoded = Dot11Data.decode(raw)
    _llc, ip_bytes = LlcSnapHeader.decode(decoded.payload)
    packet = IPv4Packet.decode(ip_bytes)
    print("\nIPv4 header with the IP_Power option (24 bytes):")
    print(hexdump(ip_bytes[:24]))
    print(
        f"\nparsed: dst={packet.dst} proto={packet.protocol} "
        f"power_packet={packet.is_power_packet} "
        f"interface_id={packet.power_option.interface_id}"
    )


def capture_and_measure(path: str) -> None:
    print(f"\nRunning a one-channel PoWiFi router; capturing to {path} ...")
    sim = Simulator()
    streams = RandomStreams(7)
    medium = Medium(sim, channel=6)
    router = PoWiFiRouter(
        sim,
        {6: medium},
        streams,
        RouterConfig(scheme=Scheme.POWIFI, channels=(6,), client_channel=6),
    )
    capture = MonitorCapture(medium, target=path, station_filter="router:ch6")
    router.start()
    duration = 0.5
    sim.run(until=duration)
    capture.close()

    occupancy = occupancy_from_pcap(path, duration_s=duration)
    print(f"captured frames:       {capture.captured_frames}")
    print(f"occupancy from pcap:   {100 * occupancy:5.1f} %")
    print(f"occupancy from router: {100 * router.occupancy_by_channel()[6]:5.1f} %")
    print("(both implement the paper's sum(size_i/rate_i)/duration formula)")


def main(path: str = "/tmp/powifi_ch6.pcap") -> None:
    show_power_frame()
    capture_and_measure(path)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "/tmp/powifi_ch6.pcap")
