#!/usr/bin/env python3
"""Plan a real deployment: site survey + multi-band what-if.

Answers the questions a deployer of Wi-Fi-powered sensors asks:

1. how far can my temperature sensor sit from the router, for my target
   update rate, in my building?
2. what if there's a wall in the way?
3. how much cumulative occupancy does my spot need?
4. what does the §8(e) multi-band (900 MHz + 2.4 GHz) future buy me?

Usage::

    python examples/deployment_planner.py
"""

from repro.harvester.multiband import BandInput, MultiBandHarvester
from repro.planner import DeploymentPlanner, Environment, SensingRequirement
from repro.rf.materials import WALL_MATERIALS
from repro.sensors.mcu import TEMPERATURE_READ_ENERGY_J


def site_survey() -> None:
    requirement = SensingRequirement(
        operation_energy_j=TEMPERATURE_READ_ENERGY_J, target_rate_hz=1.0
    )
    planner = DeploymentPlanner(Environment(cumulative_occupancy=1.0))

    print("Site survey — temperature sensor at 1 read/s, occupancy 100 %")
    print(f"{'distance':>9}  {'received':>9}  {'harvested':>10}  {'rate':>7}  verdict")
    for verdict in planner.survey(requirement, [5, 8, 10, 12, 15, 18, 22]):
        status = "OK" if verdict.feasible else "--"
        print(
            f"{verdict.distance_feet:>7.0f} ft {verdict.received_power_dbm:>8.1f} dBm"
            f" {1e6 * verdict.harvested_power_w:>8.2f} uW"
            f" {verdict.achievable_rate_hz:>6.2f}/s   {status}"
            f"  (margin {verdict.margin_db:+.1f} dB)"
        )
    print(f"max feasible distance: {planner.max_distance_feet(requirement):.1f} ft")

    print("\nThrough a sheet-rock wall:")
    walled = DeploymentPlanner(
        Environment(wall=WALL_MATERIALS["sheetrock"], cumulative_occupancy=1.0)
    )
    print(f"max feasible distance: {walled.max_distance_feet(requirement):.1f} ft")

    print("\nRequired cumulative occupancy by spot:")
    for feet in (8, 10, 12, 14):
        occupancy = planner.required_occupancy(requirement, feet)
        rendered = f"{100 * occupancy:.0f} %" if occupancy else "unreachable"
        print(f"  {feet:>2} ft -> {rendered}")


def multiband_whatif() -> None:
    print("\nMulti-band what-if (§8e): add a 900 MHz ISM source")
    harvester = MultiBandHarvester()
    for wifi_dbm in (-14.0, -16.0, -18.0):
        wifi_only = harvester.dc_output_power_w([BandInput(2.437e9, wifi_dbm)])
        both = harvester.dc_output_power_w(
            [BandInput(2.437e9, wifi_dbm), BandInput(915e6, wifi_dbm)]
        )
        gain = both / wifi_only if wifi_only > 0 else float("inf")
        print(
            f"  Wi-Fi at {wifi_dbm:5.1f} dBm: {1e6 * wifi_only:6.2f} uW alone, "
            f"{1e6 * both:6.2f} uW with a matched 900 MHz source ({gain:.1f}x)"
        )


if __name__ == "__main__":
    site_survey()
    multiband_whatif()
