#!/usr/bin/env python3
"""The Wi-Fi charging hotspot (§8(a) / Fig 16) plus the occupancy cap.

Simulates the Jawbone UP24 charging session next to a PoWiFi router and
demonstrates the §4/§6 "scale back" extension the paper describes but did
not implement: a feedback controller that holds cumulative occupancy just
under 100 % by retuning the injectors' inter-packet delay.

Usage::

    python examples/charging_hotspot.py
"""

from repro.core.config import Scheme
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.core.scheduler import OccupancyCap
from repro.mac80211.medium import Medium
from repro.sensors.charger import UsbWiFiCharger, hotspot_incident_power_dbm
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def charging_demo() -> None:
    print("Wi-Fi charging hotspot (Jawbone UP24, 5-7 cm from the router)")
    charger = UsbWiFiCharger()
    incident = hotspot_incident_power_dbm()
    print(f"  incident RF power: {incident:5.1f} dBm")
    for hours in (0.5, 1.0, 1.5, 2.0, 2.5):
        session = charger.charge_session(incident, hours)
        print(
            f"  after {hours:3.1f} h: {100 * session.charge_fraction_gained:5.1f} % "
            f"charged ({session.average_current_ma:.2f} mA average)"
        )
    print("  paper: 41 % after 2.5 h at 2.3 mA\n")


def occupancy_cap_demo() -> None:
    print("Occupancy-cap extension: hold cumulative occupancy at 95 %")
    sim = Simulator()
    streams = RandomStreams(1)
    media = {ch: Medium(sim, channel=ch) for ch in (1, 6, 11)}
    router = PoWiFiRouter(sim, media, streams, RouterConfig(scheme=Scheme.POWIFI))
    cap = OccupancyCap(sim, router, target=0.95, sample_interval_s=0.5)
    router.start()
    cap.start()
    for step in range(1, 9):
        sim.run(until=step * 0.5)
    print("  cumulative occupancy per control tick:")
    for i, value in enumerate(cap.history):
        print(f"    t={0.5 * (i + 1):3.1f} s: {100 * value:6.1f} %")
    final_delay = next(iter(router.injectors.values())).config.effective_period_s
    print(f"  steered inter-packet delay: {final_delay * 1e6:.0f} us (from 100 us)")


if __name__ == "__main__":
    charging_demo()
    occupancy_cap_demo()
