#!/usr/bin/env python3
"""Fairness to a neighbouring Wi-Fi network (the Fig 8 experiment).

Places a neighbouring AP-client pair on channel 1, runs saturated UDP at a
few bit rates, and compares what the neighbour achieves while our router
runs BlindUDP, EqualShare or PoWiFi — demonstrating the paper's claim that
PoWiFi's 54 Mb/s power packets give neighbours *better* than an equal share
of the medium.

Usage::

    python examples/neighbor_fairness.py
"""

from repro.core.config import Scheme
from repro.experiments.fig08_fairness import measure_neighbor_throughput

RATES = (5.5, 11.0, 24.0, 48.0, 54.0)


def main() -> None:
    print("Neighbour's achieved UDP throughput (Mb/s) per scheme\n")
    header = f"{'neighbour rate':<16}" + "".join(f"{r:>9.1f}" for r in RATES)
    print(header)
    for scheme in (Scheme.EQUAL_SHARE, Scheme.POWIFI, Scheme.BLIND_UDP):
        row = f"{scheme.value:<16}"
        for rate in RATES:
            throughput = measure_neighbor_throughput(scheme, rate, duration_s=1.5)
            row += f"{throughput:>9.2f}"
        print(row)

    print(
        "\nPoWiFi's power packets ride 54 Mb/s and occupy the channel only"
        "\nbriefly, so the neighbour beats its equal share; BlindUDP's"
        "\n1 Mb/s packets monopolise airtime and crush it (§3.2(iii), Fig 8)."
    )


if __name__ == "__main__":
    main()
