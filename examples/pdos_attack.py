#!/usr/bin/env python3
"""The §8(d) power denial-of-service attack, end to end.

Starts a PoWiFi router powering a temperature sensor, lets a rogue jammer
starve it via carrier sense, shows the watchdog catching the attack, and
demonstrates a defence: hopping the power traffic to an unjammed channel.

Usage::

    python examples/pdos_attack.py
"""

from repro.core.config import Scheme
from repro.core.pdos import PdosAttacker, PdosWatchdog
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.mac80211.medium import Medium
from repro.rf.link import LinkBudget, Transmitter
from repro.sensors.temperature import TemperatureSensor
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def sensor_rate(router, window):
    link = LinkBudget(Transmitter(tx_power_dbm=30.0))
    sensor = TemperatureSensor()
    rx = link.received_power_dbm_at_feet(10.0)
    start, end = window
    occupancy = sum(
        analyzer.occupancy(start, end) for analyzer in router.analyzers.values()
    )
    return sensor.update_rate_hz(rx, occupancy=occupancy)


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(4)
    media = {ch: Medium(sim, channel=ch) for ch in (1, 6, 11)}
    router = PoWiFiRouter(sim, media, streams, RouterConfig(scheme=Scheme.POWIFI))
    watchdog = PdosWatchdog(
        sim, media[6], router.analyzers[6].occupancy, window_s=0.5
    )
    router.start()
    watchdog.start()

    print("Phase 1 — healthy operation (2 s)...")
    sim.run(until=2.0)
    print(f"  sensor at 10 ft: {sensor_rate(router, (0.0, 2.0)):.2f} reads/s")
    print(f"  watchdog alerts: {len(watchdog.alerts)}")

    print("\nPhase 2 — PDoS jammer saturates channel 6 (3 s)...")
    attacker = PdosAttacker(sim, media[6], streams)
    attacker.start()
    sim.run(until=5.0)
    ch6 = router.analyzers[6].occupancy(4.0, 5.0)
    print(f"  channel 6 power occupancy: {100 * ch6:5.1f} %  (was ~65 %)")
    print(f"  sensor at 10 ft: {sensor_rate(router, (4.0, 5.0)):.2f} reads/s")
    print(f"  watchdog alerts: {len(watchdog.alerts)}  under attack: {watchdog.under_attack}")

    print("\nPhase 3 — defence: abandon the jammed channel (3 s)...")
    # The simplest §8(d) mitigation with stock hardware: the watchdog's
    # alert stops the injector on the jammed channel (its datagrams were
    # being carrier-sense-blocked anyway), keeping delivery flowing on the
    # healthy channels. Recovering the jammed channel's share needs either
    # a spare 2.4 GHz channel or the multi-band branch of §8(e).
    router.injectors[6].stop()
    sim.run(until=8.0)
    print(f"  sensor at 10 ft: {sensor_rate(router, (7.0, 8.0)):.2f} reads/s")
    print("  (channels 1 and 11 keep delivering; the jammed channel's share")
    print("   is lost until the jammer leaves or the router changes bands)")


if __name__ == "__main__":
    main()
