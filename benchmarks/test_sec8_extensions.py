"""§8 extension benchmarks: the USB charging hotspot (Fig 16) and the
multi-router coexistence proposal.

Paper results: (a) the Jawbone UP24 draws 2.3 mA average and goes from
empty to 41 % charge in 2.5 h next to the router; (c) concurrent PoWiFi
routers keep the harvester-visible cumulative occupancy high despite
power-packet collisions.
"""

from conftest import write_report

from repro.experiments.sec8a_charger import run_sec8a
from repro.experiments.sec8c_multi_router import run_sec8c


def test_sec8a_usb_charger(benchmark):
    result = benchmark.pedantic(run_sec8a, rounds=1, iterations=1)
    lines = [
        "Sec 8(a) / Fig 16 — Wi-Fi charging hotspot (Jawbone UP24)",
        f"incident power at 5-7 cm:  {result.incident_power_dbm:6.1f} dBm",
        f"average charging current:  {result.average_current_ma:6.2f} mA   (paper: 2.3 mA)",
        f"charge after 2.5 h:        {result.charge_percent_after:6.1f} %    (paper: 41 %)",
    ]
    write_report("sec8a", lines)
    assert abs(result.average_current_ma - 2.3) < 0.5
    assert abs(result.charge_percent_after - 41.0) < 8.0


def test_sec8c_multi_router(benchmark):
    study = benchmark.pedantic(
        lambda: run_sec8c(router_counts=(1, 2, 3), duration_s=1.0),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Sec 8(c) — Concurrent PoWiFi routers",
        f"{'routers':<9}{'aggregate cumulative %':>24}{'collision fraction %':>22}",
    ]
    for count in sorted(study.by_count):
        measurement = study.by_count[count]
        lines.append(
            f"{count:<9}{100 * measurement.aggregate_cumulative:>24.1f}"
            f"{100 * measurement.collision_fraction:>22.1f}"
        )
    lines += [
        "",
        "paper: collisions between power packets are acceptable — the",
        "       cumulative occupancy each harvester sees stays high.",
    ]
    write_report("sec8c", lines)
    assert study.occupancy_stays_high
