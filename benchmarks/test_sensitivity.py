"""Calibration-sensitivity benchmark: error bars for the reproduction.

Sweeps the two environmental parameters the paper could not report
precisely — the indoor path-loss exponent and the ambient office load —
and regenerates the headline results under each, demonstrating that the
qualitative conclusions are not artefacts of one calibration point.
"""

from conftest import write_report

from repro.experiments.sensitivity import (
    sweep_office_load,
    sweep_path_loss_exponent,
)


def test_sensitivity_path_loss(benchmark):
    sweep = benchmark.pedantic(sweep_path_loss_exponent, rounds=1, iterations=1)
    lines = [
        "Sensitivity — sensor operating range vs path-loss exponent",
        f"{'exponent':<10}{'temp free (ft)':>16}{'temp rechg (ft)':>17}{'camera free (ft)':>18}",
    ]
    for exponent in sorted(sweep.ranges):
        temp_free, temp_recharging, camera_free = sweep.ranges[exponent]
        lines.append(
            f"{exponent:<10.2f}{temp_free:>16.1f}{temp_recharging:>17.1f}{camera_free:>18.1f}"
        )
    lines += [
        "",
        "paper anchors (exponent 1.85): 20 / 28 / 17 ft. The ordering",
        "camera < temp-free < recharging holds at every exponent.",
    ]
    write_report("sensitivity_path_loss", lines)
    for temp_free, temp_recharging, camera_free in sweep.ranges.values():
        assert camera_free < temp_free < temp_recharging


def test_sensitivity_office_load(benchmark):
    sweep = benchmark.pedantic(
        lambda: sweep_office_load(duration_s=2.0), rounds=1, iterations=1
    )
    lines = [
        "Sensitivity — PoWiFi do-no-harm vs ambient office load (10 Mb/s client)",
        f"{'office load %':<15}{'baseline Mb/s':>15}{'powifi Mb/s':>13}",
    ]
    for load in sorted(sweep.throughput):
        baseline, powifi = sweep.throughput[load]
        lines.append(f"{100 * load:<15.0f}{baseline:>15.2f}{powifi:>13.2f}")
    lines += [
        "",
        f"worst PoWiFi client-throughput penalty: {100 * sweep.max_powifi_penalty():.1f} %",
        "the §3.2 queue gate protects the client at every ambient load.",
    ]
    write_report("sensitivity_office_load", lines)
    assert sweep.max_powifi_penalty() < 0.15
