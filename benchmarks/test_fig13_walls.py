"""Fig 13 benchmark: battery-free camera through walls.

Paper result: the camera keeps operating behind every tested wall; more
absorbent materials stretch the inter-frame time (§5.2, Fig 13).
"""

from conftest import write_report

from repro.experiments.fig13_walls import FIG13_MATERIALS, run_fig13
from repro.rf.materials import WALL_MATERIALS


def test_fig13_walls(benchmark):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    lines = [
        "Fig 13 — Battery-free camera through walls, 5 ft from the router",
        f"{'material':<14}{'thickness (in)':>16}{'atten (dB)':>12}{'inter-frame (min)':>20}",
    ]
    for name in FIG13_MATERIALS:
        material = WALL_MATERIALS[name]
        lines.append(
            f"{name:<14}{material.thickness_inches:>16.1f}"
            f"{material.attenuation_db:>12.1f}"
            f"{result.inter_frame_minutes[name]:>20.1f}"
        )
    lines += [
        "",
        "paper: operational behind every wall; time grows with absorption.",
    ]
    write_report("fig13", lines)

    assert result.all_operational
    times = [result.inter_frame_minutes[m] for m in FIG13_MATERIALS]
    assert times == sorted(times)
