"""Lint wall-time guard: the flow pass must stay CI-cheap.

The whole-program ``repro lint --flow`` runs on every PR, so its cost is
part of the contract: a cold pass parses and indexes the full ``src/repro``
tree once; a warm pass (the common case — almost nothing changed) must
replay per-module facts and findings from the incremental cache instead of
re-parsing. Two bounds are enforced against a throwaway cache directory:

* warm wall-clock under 2 s (absolute budget from the issue), and
* warm at least 5x faster than cold — the cache must actually shortcut
  the parse/extract work, not just shave constants.

Both runs include source hashing, index construction, and the PW1xx rule
pass, so the ratio reflects what a developer sees at the prompt.
"""

from pathlib import Path
from time import perf_counter

from conftest import write_report

from repro.lint.config import load_config
from repro.lint.flow import flow_lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Absolute warm-pass budget (seconds).
MAX_WARM_S = 2.0

#: The warm pass must beat the cold pass by at least this factor.
MIN_WARM_SPEEDUP = 5.0


def _run(config, cache_path):
    started = perf_counter()
    findings, stats = flow_lint_paths(
        [str(REPO_ROOT / "src" / "repro")],
        config,
        use_baseline=False,
        use_cache=True,
        cache_path=cache_path,
    )
    return perf_counter() - started, findings, stats


def test_flow_lint_warm_cache_under_budget(tmp_path):
    config = load_config(REPO_ROOT / "pyproject.toml")
    cache_path = tmp_path / "flow_index.json"

    cold_s, cold_findings, cold_stats = _run(config, cache_path)
    assert cold_stats.reused == 0, "cache unexpectedly warm on first pass"

    warm_s, warm_findings, warm_stats = _run(config, cache_path)
    assert warm_stats.parsed == 0, "warm pass re-parsed unchanged modules"
    assert warm_stats.reused == warm_stats.files

    # Identical findings either way: the cache is an optimisation, not a
    # second analysis.
    as_dicts = lambda findings: [f.to_dict() for f in findings]  # noqa: E731
    assert as_dicts(cold_findings) == as_dicts(warm_findings)

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    write_report(
        "lint_flow_perf",
        [
            "Flow lint wall-time — src/repro, throwaway cache",
            f"cold    {cold_s:8.3f} s  ({cold_stats.parsed} parsed)",
            f"warm    {warm_s:8.3f} s  ({warm_stats.reused} reused)",
            f"speedup {speedup:8.1f} x  (floor {MIN_WARM_SPEEDUP:.0f}x)",
        ],
    )
    assert warm_s < MAX_WARM_S, f"warm flow pass took {warm_s:.3f}s"
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm pass only {speedup:.1f}x faster than cold "
        f"({cold_s:.3f}s -> {warm_s:.3f}s)"
    )
