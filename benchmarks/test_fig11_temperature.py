"""Fig 11 benchmark: temperature-sensor update rate vs distance.

Paper result: rates fall with distance; the builds are comparable close in;
the battery-free sensor works to 20 ft, the battery-recharging build runs
energy-neutral to 28 ft (§5.1, Fig 11).
"""

from conftest import fmt_row, write_report

from repro.experiments.fig11_temperature import DEFAULT_DISTANCES_FEET, run_fig11


def test_fig11_temperature(benchmark):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    lines = [
        "Fig 11 — Temperature-sensor update rate (reads/s) vs distance (ft)",
        fmt_row("distance (ft)", DEFAULT_DISTANCES_FEET, "{:>7.0f}"),
        fmt_row(
            "battery-free",
            [result.battery_free[d] for d in DEFAULT_DISTANCES_FEET],
            "{:>7.2f}",
        ),
        fmt_row(
            "battery-recharging",
            [result.battery_recharging[d] for d in DEFAULT_DISTANCES_FEET],
            "{:>7.2f}",
        ),
        "",
        f"battery-free range:       {result.battery_free_range_feet:5.1f} ft  (paper: 20 ft)",
        f"battery-recharging range: {result.battery_recharging_range_feet:5.1f} ft  (paper: 28 ft)",
    ]
    write_report("fig11", lines)

    assert abs(result.battery_free_range_feet - 20.0) < 2.5
    assert abs(result.battery_recharging_range_feet - 28.0) < 2.5
    assert result.battery_recharging[20] > result.battery_free[20]
