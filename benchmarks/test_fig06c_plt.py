"""Fig 6c benchmark: page-load times of the top-10 US sites per scheme.

Paper result: PoWiFi adds ~101 ms mean delay over Baseline, NoQueue
~294 ms, BlindUDP deteriorates PLT severely (§4.1(c)).
"""

from conftest import write_report

from repro.core.config import Scheme
from repro.experiments.fig06_traffic import run_fig06c
from repro.workloads.web import TOP_10_US_SITES

SCHEMES = (Scheme.BASELINE, Scheme.POWIFI, Scheme.NO_QUEUE, Scheme.BLIND_UDP)


def test_fig06c_plt(benchmark):
    results = benchmark.pedantic(
        lambda: run_fig06c(loads_per_site=2, page_scale=0.3),
        rounds=1,
        iterations=1,
    )
    header = f"{'site':<16}" + "".join(f"{s.value:>12}" for s in SCHEMES)
    lines = ["Fig 6c — Page load time (s) per site", header]
    for site in TOP_10_US_SITES:
        row = f"{site:<16}" + "".join(
            f"{results[s].plt_by_site[site]:>12.2f}" for s in SCHEMES
        )
        lines.append(row)
    means = {s: results[s].mean_plt_s for s in SCHEMES}
    lines += [
        f"{'MEAN':<16}" + "".join(f"{means[s]:>12.2f}" for s in SCHEMES),
        "",
        f"PoWiFi delay over baseline:  {1e3 * (means[Scheme.POWIFI] - means[Scheme.BASELINE]):7.0f} ms   (paper: 101 ms)",
        f"NoQueue delay over baseline: {1e3 * (means[Scheme.NO_QUEUE] - means[Scheme.BASELINE]):7.0f} ms   (paper: 294 ms)",
    ]
    write_report("fig06c", lines)

    assert means[Scheme.BASELINE] < means[Scheme.POWIFI] < means[Scheme.NO_QUEUE]
    assert means[Scheme.BLIND_UDP] > 2 * means[Scheme.BASELINE]
    powifi_delay = means[Scheme.POWIFI] - means[Scheme.BASELINE]
    noqueue_delay = means[Scheme.NO_QUEUE] - means[Scheme.BASELINE]
    assert 0.0 < powifi_delay < 0.3
    assert powifi_delay < noqueue_delay < 0.8
