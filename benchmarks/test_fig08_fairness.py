"""Fig 8 benchmark: effect on a neighbouring network's UDP throughput.

Paper result: PoWiFi gives the neighbouring router-client pair *better*
than equal-share throughput at every bit rate (54 Mb/s power packets are
brief); BlindUDP devastates the neighbour, and worse at higher bit rates
(§4.1(d), Fig 8).
"""

from conftest import fmt_row, write_report

from repro.core.config import Scheme
from repro.experiments.fig08_fairness import DEFAULT_NEIGHBOR_RATES, run_fig08


def test_fig08_fairness(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig08(neighbor_rates=DEFAULT_NEIGHBOR_RATES, duration_s=2.0),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Fig 8 — Neighbour UDP throughput (Mb/s) vs its Wi-Fi bit rate",
        fmt_row("bit rate", DEFAULT_NEIGHBOR_RATES, "{:>7.1f}"),
    ]
    for scheme in (Scheme.EQUAL_SHARE, Scheme.POWIFI, Scheme.BLIND_UDP):
        row = [result.throughput[scheme][r] for r in DEFAULT_NEIGHBOR_RATES]
        lines.append(fmt_row(scheme.value, row, "{:>7.2f}"))
    lines += [
        "",
        "paper: PoWiFi >= EqualShare at every rate; BlindUDP crushes the",
        "       neighbour, increasingly so at high bit rates.",
    ]
    write_report("fig08", lines)

    for rate in (5.5, 11, 18, 24, 36, 48):
        assert (
            result.throughput[Scheme.POWIFI][rate]
            >= result.throughput[Scheme.EQUAL_SHARE][rate] * 0.95
        )
    assert result.throughput[Scheme.BLIND_UDP][54] < 2.0
