"""Fig 15 benchmark: battery-free temperature sensor across the six homes.

Paper result: at ten feet from each home's router, the sensor sustains
nonzero update rates around a few reads per second in every home — power is
delivered under real-world network conditions (§6, Fig 15).
"""

from conftest import fmt_row, write_report

from repro.experiments.fig14_homes import run_fig14
from repro.experiments.fig15_home_sensor import run_fig15

PERCENTILES = (10, 25, 50, 75, 90)


def _percentile(samples, q):
    ordered = sorted(samples)
    pos = q / 100 * (len(ordered) - 1)
    low = int(pos)
    high = min(low + 1, len(ordered) - 1)
    frac = pos - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def test_fig15_home_sensor(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig15(run_fig14()), rounds=1, iterations=1
    )
    lines = [
        "Fig 15 — Battery-free sensor update-rate CDF percentiles (reads/s)",
        fmt_row("percentile", PERCENTILES, "{:>8.0f}"),
    ]
    for index in sorted(result.samples_by_home):
        samples = result.samples_by_home[index]
        lines.append(
            fmt_row(
                f"home {index}", [_percentile(samples, q) for q in PERCENTILES], "{:>8.2f}"
            )
        )
    lines += [
        "",
        "paper: every home delivers power; rates sit in the 0-10 reads/s axis.",
    ]
    write_report("fig15", lines)

    assert result.all_homes_deliver_power
    for index in result.samples_by_home:
        assert 0.1 < result.median(index) < 10.0
