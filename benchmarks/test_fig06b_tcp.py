"""Fig 6b benchmark: TCP throughput CDFs for the four schemes.

Paper result: the Baseline and PoWiFi CDFs overlap; NoQueue sits at about
half; BlindUDP collapses (§4.1(b)).
"""

from conftest import fmt_row, write_report

from repro.core.config import Scheme
from repro.experiments.fig06_traffic import run_fig06b

PERCENTILES = (10, 25, 50, 75, 90)


def _percentile(samples, q):
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    pos = q / 100 * (len(ordered) - 1)
    low = int(pos)
    high = min(low + 1, len(ordered) - 1)
    frac = pos - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def test_fig06b_tcp(benchmark):
    results = benchmark.pedantic(
        lambda: run_fig06b(runs=3, copies=2, run_seconds=1.5),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Fig 6b — TCP throughput CDF percentiles (Mb/s)",
        fmt_row("percentile", PERCENTILES, "{:>8.0f}"),
    ]
    for scheme in (Scheme.BASELINE, Scheme.POWIFI, Scheme.NO_QUEUE, Scheme.BLIND_UDP):
        samples = results[scheme].interval_throughputs_mbps
        lines.append(
            fmt_row(scheme.value, [_percentile(samples, q) for q in PERCENTILES], "{:>8.2f}")
        )
    lines += [
        "",
        "paper: Baseline ~= PoWiFi; NoQueue ~half; BlindUDP collapses.",
    ]
    write_report("fig06b", lines)

    baseline = results[Scheme.BASELINE].median_mbps
    assert results[Scheme.POWIFI].median_mbps > 0.75 * baseline
    assert results[Scheme.NO_QUEUE].median_mbps < 0.75 * baseline
    assert results[Scheme.BLIND_UDP].median_mbps < 0.2 * baseline
