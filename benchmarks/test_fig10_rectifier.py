"""Fig 10 benchmark: available power at the rectifier output vs input power.

Paper result: output scales with input to ~150 uW at +4 dBm; sensitivities
are -17.8 dBm (battery-free) and -19.3 dBm (battery-recharging); channels
1, 6 and 11 behave near-identically (§4.2(b)).
"""

from conftest import fmt_row, write_report

from repro.experiments.fig10_rectifier import run_fig10

SWEEP = tuple(range(-20, 5, 2))


def test_fig10_rectifier(benchmark):
    free, recharging = benchmark.pedantic(
        lambda: run_fig10(input_powers_dbm=SWEEP), rounds=1, iterations=1
    )
    lines = [
        "Fig 10 — Rectifier output power (uW) vs input power (dBm)",
        fmt_row("input (dBm)", SWEEP, "{:>7.0f}"),
    ]
    for result in (free, recharging):
        for channel in (1, 6, 11):
            row = [1e6 * result.output_at(channel, dbm) for dbm in SWEEP]
            lines.append(fmt_row(f"{result.name} ch{channel}", row, "{:>7.1f}"))
    lines += [
        "",
        f"sensitivity battery-free:       {free.worst_sensitivity_dbm:6.1f} dBm  (paper: -17.8)",
        f"sensitivity battery-recharging: {recharging.worst_sensitivity_dbm:6.1f} dBm  (paper: -19.3)",
    ]
    write_report("fig10", lines)

    assert abs(free.worst_sensitivity_dbm - (-17.8)) < 1.0
    assert abs(recharging.worst_sensitivity_dbm - (-19.3)) < 1.0
    assert 100e-6 < free.output_at(6, 4) < 250e-6
    # Channel uniformity.
    outputs = [free.output_at(ch, 0) for ch in (1, 6, 11)]
    assert max(outputs) / min(outputs) < 1.1
