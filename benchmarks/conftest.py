"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark regenerates one paper table/figure: it runs the experiment
driver under pytest-benchmark timing, prints the regenerated rows/series,
and writes them to ``benchmarks/results/<id>.txt`` so the artifacts survive
stdout capture.
"""

from __future__ import annotations

import os
from typing import List

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_report(experiment_id: str, lines: List[str]) -> str:
    """Persist and print one experiment's regenerated rows."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines) + "\n"
    path = os.path.join(RESULTS_DIR, f"{experiment_id}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"\n=== {experiment_id} ===")
    print(text)
    return path


def fmt_row(label: str, values, fmt: str = "{:>8.2f}") -> str:
    """One aligned table row."""
    rendered = "  ".join(fmt.format(v) for v in values)
    return f"{label:<28}{rendered}"
