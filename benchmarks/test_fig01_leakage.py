"""Fig 1 benchmark: harvester voltage under a stock router's bursty traffic.

Paper result: the rectifier voltage rises during Wi-Fi bursts and leaks
away in the silences, never crossing the 300 mV DC-DC threshold over a
24-hour observation at ten feet (§2, Fig 1).
"""

from conftest import fmt_row, write_report

from repro.experiments.fig01_leakage import (
    MIN_THRESHOLD_V,
    run_fig01,
    run_fig01_powifi_contrast,
)


def test_fig01_leakage(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig01(duration_s=0.1), rounds=1, iterations=1
    )
    contrast = run_fig01_powifi_contrast(duration_s=0.1)
    lines = [
        "Fig 1 — Key challenge with Wi-Fi power delivery",
        f"received power at 10 ft          {result.received_power_dbm:8.1f} dBm",
        f"router occupancy                 {result.occupancy * 100:8.1f} %",
        f"peak rectifier voltage           {result.peak_voltage_v * 1e3:8.1f} mV",
        f"mean rectifier voltage           {result.mean_voltage_v * 1e3:8.1f} mV",
        f"300 mV threshold crossed         {str(result.crossed_threshold):>8}",
        "",
        "Counterfactual: PoWiFi router at the same spot",
        f"peak rectifier voltage           {contrast.peak_voltage_v * 1e3:8.1f} mV",
        f"300 mV threshold crossed         {str(contrast.crossed_threshold):>8}",
        "",
        "paper: stock router never crosses 300 mV; PoWiFi does.",
    ]
    write_report("fig01", lines)
    assert not result.crossed_threshold
    assert contrast.crossed_threshold
    assert result.peak_voltage_v < MIN_THRESHOLD_V
