"""Fig 6a benchmark: UDP throughput vs offered rate for the four schemes.

Paper result: PoWiFi tracks Baseline across the whole sweep; NoQueue
roughly halves the saturated throughput; BlindUDP floors it (§4.1(a)).
"""

from conftest import fmt_row, write_report

from repro.core.config import Scheme
from repro.experiments.fig06_traffic import DEFAULT_UDP_RATES, run_fig06a


def test_fig06a_udp(benchmark):
    results = benchmark.pedantic(
        lambda: run_fig06a(rates_mbps=DEFAULT_UDP_RATES, copies=2, run_seconds=1.5),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Fig 6a — Achieved UDP throughput (Mb/s) vs offered rate (Mb/s)",
        fmt_row("offered", DEFAULT_UDP_RATES, "{:>7.0f}"),
    ]
    for scheme in (Scheme.BASELINE, Scheme.POWIFI, Scheme.NO_QUEUE, Scheme.BLIND_UDP):
        row = [results[scheme].throughput_by_rate[r] for r in DEFAULT_UDP_RATES]
        lines.append(fmt_row(scheme.value, row, "{:>7.2f}"))
    lines += [
        "",
        "paper: PoWiFi ~= Baseline; NoQueue ~half at saturation; BlindUDP ~floor.",
    ]
    write_report("fig06a", lines)

    baseline = results[Scheme.BASELINE].throughput_by_rate
    powifi = results[Scheme.POWIFI].throughput_by_rate
    noqueue = results[Scheme.NO_QUEUE].throughput_by_rate
    blind = results[Scheme.BLIND_UDP].throughput_by_rate
    for rate in (5, 15, 25):
        assert abs(powifi[rate] - baseline[rate]) / baseline[rate] < 0.15
    assert 0.3 * baseline[50] < noqueue[50] < 0.7 * baseline[50]
    assert blind[50] < 2.0
