"""Fig 14 benchmark: 24-hour occupancy logs across the six homes.

Paper result: per-channel occupancy varies with neighbouring load
(carrier-sense scale-back), cumulative occupancy stays high throughout,
and the per-home means land in the 78-127 % range (§6, Fig 14).
"""

from conftest import write_report

from repro.experiments.fig14_homes import run_fig14


def test_fig14_home_occupancy(benchmark):
    study = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    lines = [
        "Fig 14 — Home-deployment occupancy (24 h at 60 s windows)",
        f"{'home':<6}{'APs':>5}{'ch1 mean %':>12}{'ch6 mean %':>12}{'ch11 mean %':>13}"
        f"{'cumul mean %':>14}{'cumul p10 %':>13}{'cumul p90 %':>13}",
    ]
    for home in study.homes:
        per = {ch: 100 * s.mean for ch, s in home.per_channel.items()}
        lines.append(
            f"{home.profile.index:<6}{home.profile.neighboring_aps:>5}"
            f"{per[1]:>12.1f}{per[6]:>12.1f}{per[11]:>13.1f}"
            f"{100 * home.mean_cumulative:>14.1f}"
            f"{100 * home.cumulative.percentile(10):>13.1f}"
            f"{100 * home.cumulative.percentile(90):>13.1f}"
        )
    low, high = study.mean_cumulative_range
    lines += [
        "",
        f"mean cumulative range across homes: {100 * low:.0f}-{100 * high:.0f} %  (paper: 78-127 %)",
    ]
    write_report("fig14", lines)

    assert 0.70 < low < 1.0
    assert 1.0 < high < 1.45
    means = {h.profile.index: h.mean_cumulative for h in study.homes}
    assert means[5] == min(means.values())  # 24 neighbouring APs
    assert means[2] == max(means.values())  # 4 neighbouring APs
