"""Fig 5 benchmark: occupancy vs inter-packet delay and queue threshold.

Paper result: occupancy plateaus (~50 % in the busy office) while the
inter-packet delay is below the frame's on-air time, decays beyond it, and
the threshold-1 curve sits below the rest because the queue repeatedly
drains (§3.2, Fig 5).
"""

from conftest import fmt_row, write_report

from repro.experiments.fig05_delay_sweep import run_fig05

THRESHOLDS = (1, 5, 50, 100)
DELAYS_US = (10, 50, 100, 150, 200, 300, 400, 600, 800, 1000)


def test_fig05_delay_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig05(
            thresholds=THRESHOLDS, delays_us=DELAYS_US, duration_s=2.0
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        "Fig 5 — Channel occupancy (%) vs UDP inter-packet delay (us)",
        fmt_row("delay (us)", DELAYS_US, "{:>8.0f}"),
    ]
    for threshold in THRESHOLDS:
        occupancies = [
            100 * result.occupancy_at(threshold, d) for d in DELAYS_US
        ]
        lines.append(fmt_row(f"qdepth-threshold={threshold}", occupancies, "{:>8.1f}"))
    lines += [
        "",
        "paper: plateau below the frame airtime, decay beyond it,",
        "       threshold 1 strictly below the tuned threshold of 5.",
    ]
    write_report("fig05", lines)

    plateau = result.occupancy_at(5, 100)
    assert 0.40 < plateau < 0.58
    assert result.occupancy_at(5, 1000) < 0.75 * plateau
    assert result.occupancy_at(1, 100) < plateau
    assert abs(result.occupancy_at(50, 100) - result.occupancy_at(100, 100)) < 0.05
