"""Fig 7 benchmark: PoWiFi channel-occupancy CDFs during client traffic.

Paper result: individual channels run at 5-50 % occupancy while the mean
cumulative occupancy stays near or above 100 % (97.6 % UDP, 100.9 % TCP,
87.6 % PLT) (§4.1, Fig 7).
"""

from conftest import fmt_row, write_report

from repro.experiments.fig06_traffic import run_fig07

PERCENTILES = (10, 25, 50, 75, 90)


def test_fig07_occupancy(benchmark):
    report = benchmark.pedantic(
        lambda: run_fig07(duration_s=8.0), rounds=1, iterations=1
    )
    lines = [
        "Fig 7 — PoWiFi occupancy CDF percentiles (%) during UDP client traffic",
        fmt_row("percentile", PERCENTILES, "{:>8.0f}"),
    ]
    for channel, series in sorted(report.per_channel.items()):
        lines.append(
            fmt_row(
                f"channel {channel}",
                [100 * series.percentile(q) for q in PERCENTILES],
                "{:>8.1f}",
            )
        )
    lines.append(
        fmt_row(
            "cumulative",
            [100 * report.cumulative.percentile(q) for q in PERCENTILES],
            "{:>8.1f}",
        )
    )
    lines += [
        "",
        f"mean cumulative occupancy: {100 * report.mean_cumulative:6.1f} %  (paper: ~97.6 %)",
    ]
    write_report("fig07", lines)

    assert 0.8 < report.mean_cumulative < 2.2
    # Each individual channel must sit well below the cumulative.
    for series in report.per_channel.values():
        assert series.mean < report.mean_cumulative
