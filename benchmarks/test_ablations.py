"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation varies one PoWiFi design decision and regenerates the metric
that motivated it:

* power-packet size (§3.2 uses 1500 bytes to maximise payload airtime);
* power-packet bit rate (§3.2 picks 54 Mb/s for fairness; BlindUDP's
  1 Mb/s is the anti-ablation);
* number of power channels (the multi-channel harvester co-design);
* the occupancy-cap extension (§4/§6 "scale back" feature);
* client frame latency per scheme (the "minimize the effect on the client
  delay" half of §3.2's goal);
* the §8(d) PDoS attack and its watchdog.
"""

from conftest import fmt_row, write_report

from repro.core.config import InjectorConfig, Scheme
from repro.core.pdos import PdosAttacker, PdosWatchdog
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.core.scheduler import OccupancyCap
from repro.experiments.base import build_testbed
from repro.mac80211.medium import Medium
from repro.netstack.latency import LatencyTracker
from repro.netstack.udp import UdpFlow
from repro.rf.link import LinkBudget, Transmitter
from repro.sensors.temperature import TemperatureSensor
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def _single_channel_occupancy(injector_config, duration_s=2.0, seed=0):
    bed = build_testbed(
        Scheme.POWIFI,
        seed=seed,
        channels=(1,),
        injector_override=injector_config,
    )
    bed.start()
    bed.sim.run(until=duration_s)
    return bed.router.occupancy_by_channel()[1]


def test_ablation_packet_size(benchmark):
    """Smaller power packets waste airtime share on per-frame overhead."""
    sizes = (300, 600, 1000, 1500)

    def run():
        return {
            size: _single_channel_occupancy(
                InjectorConfig(ip_datagram_bytes=size)
            )
            for size in sizes
        }

    occupancy = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — power-datagram size vs single-channel occupancy",
        fmt_row("size (bytes)", sizes, "{:>8.0f}"),
        fmt_row("occupancy (%)", [100 * occupancy[s] for s in sizes], "{:>8.1f}"),
        "",
        "design choice: 1500-byte datagrams maximise the paper's",
        "sum(size/rate) metric per unit of channel time.",
    ]
    write_report("ablation_packet_size", lines)
    values = [occupancy[s] for s in sizes]
    assert values == sorted(values)  # bigger datagrams -> higher occupancy


def test_ablation_power_rate(benchmark):
    """Lower power-packet rates raise occupancy but destroy coexistence."""
    rates = (6.0, 12.0, 24.0, 54.0)

    def run():
        occupancy = {}
        client = {}
        for rate in rates:
            config = InjectorConfig(rate_mbps=rate, queue_threshold=5)
            bed = build_testbed(
                Scheme.POWIFI, channels=(1,), injector_override=config
            )
            flow = UdpFlow(bed.sim, bed.router.client_station, target_rate_mbps=10.0)
            bed.start()
            flow.start()
            bed.sim.run(until=2.0)
            occupancy[rate] = bed.router.occupancy_by_channel()[1]
            client[rate] = flow.delivered_mbps(0.5, 2.0)
        return occupancy, client

    occupancy, client = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — power-packet bit rate (queue gate active, 10 Mb/s client)",
        fmt_row("rate (Mb/s)", rates, "{:>8.0f}"),
        fmt_row("occupancy (%)", [100 * occupancy[r] for r in rates], "{:>8.1f}"),
        fmt_row("client (Mb/s)", [client[r] for r in rates], "{:>8.2f}"),
        "",
        "design choice: 54 Mb/s keeps each power frame brief; the queue",
        "gate then protects the client at every rate, but slower rates",
        "consume far more airtime per delivered microjoule (fairness, Fig 8).",
    ]
    write_report("ablation_power_rate", lines)
    # Occupancy metric favours slow rates...
    assert occupancy[6.0] > occupancy[54.0]
    # ...but the client stays protected by the gate at 54 Mb/s.
    assert client[54.0] > 8.0


def test_ablation_channel_count(benchmark):
    """Cumulative occupancy — and harvested power — scale with channels."""
    configurations = {1: (1,), 2: (1, 6), 3: (1, 6, 11)}

    def run():
        out = {}
        for count, channels in configurations.items():
            bed = build_testbed(Scheme.POWIFI, channels=channels)
            bed.start()
            bed.sim.run(until=2.0)
            out[count] = bed.router.cumulative_occupancy()
        return out

    cumulative = benchmark.pedantic(run, rounds=1, iterations=1)
    link = LinkBudget(Transmitter(tx_power_dbm=30.0))
    sensor = TemperatureSensor()
    rx = link.received_power_dbm_at_feet(10.0)
    rates = {
        count: sensor.update_rate_hz(rx, occupancy=cumulative[count])
        for count in configurations
    }
    lines = [
        "Ablation — number of power channels",
        fmt_row("channels", sorted(configurations), "{:>8.0f}"),
        fmt_row(
            "cumulative occ (%)",
            [100 * cumulative[c] for c in sorted(configurations)],
            "{:>8.1f}",
        ),
        fmt_row(
            "sensor @10ft (reads/s)",
            [rates[c] for c in sorted(configurations)],
            "{:>8.2f}",
        ),
        "",
        "design choice: the multi-channel harvester lets occupancy (and",
        "harvested power) stack across channels 1, 6 and 11.",
    ]
    write_report("ablation_channel_count", lines)
    assert cumulative[3] > cumulative[2] > cumulative[1]
    assert rates[3] > rates[1]


def test_ablation_occupancy_cap(benchmark):
    """The §4/§6 scale-back extension holds cumulative occupancy at target."""

    def run():
        results = {}
        for target in (None, 0.95, 0.75):
            sim = Simulator()
            streams = RandomStreams(0)
            media = {ch: Medium(sim, channel=ch) for ch in (1, 6, 11)}
            router = PoWiFiRouter(sim, media, streams)
            router.start()
            if target is not None:
                cap = OccupancyCap(sim, router, target=target, sample_interval_s=0.25)
                cap.start()
            sim.run(until=6.0)
            results[target] = router.cumulative_occupancy(start=3.0)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — occupancy-cap extension (steady state, idle channels)",
        f"{'target':<12}{'achieved cumulative %':>24}",
        f"{'uncapped':<12}{100 * results[None]:>24.1f}",
        f"{'95 %':<12}{100 * results[0.95]:>24.1f}",
        f"{'75 %':<12}{100 * results[0.75]:>24.1f}",
        "",
        "the paper describes but does not implement this feature (§4, §6);",
        "the controller holds cumulative occupancy near the target.",
    ]
    write_report("ablation_occupancy_cap", lines)
    assert results[None] > 1.5
    assert abs(results[0.95] - 0.95) < 0.25
    assert results[0.75] < results[0.95]


def test_ablation_client_latency(benchmark):
    """Per-scheme client frame latency — §3.2's delay-minimisation claim.

    At 10 Mb/s offered, the client fits comfortably inside Baseline's and
    PoWiFi's capacity but exceeds NoQueue's halved share, so NoQueue's
    client queue grows and latency balloons — the §4.1 slowdown, seen from
    the delay side."""
    schemes = (Scheme.BASELINE, Scheme.POWIFI, Scheme.NO_QUEUE, Scheme.BLIND_UDP)

    def run():
        out = {}
        for scheme in schemes:
            bed = build_testbed(scheme, channels=(1,))
            tracker = LatencyTracker()
            flow = UdpFlow(bed.sim, bed.router.client_station, target_rate_mbps=10.0)
            # Instrument every client frame as it enters the device queue.
            station = bed.router.client_station
            original_enqueue = station.enqueue

            def enqueue(frame, tracker=tracker, original=original_enqueue):
                if frame.flow.startswith("udp"):
                    tracker.instrument(frame)
                return original(frame)

            station.enqueue = enqueue
            bed.start()
            flow.start()
            bed.sim.run(until=2.0)
            out[scheme] = tracker.mean_latency_s()
        return out

    latency = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — mean client frame latency per scheme (10 Mb/s UDP)",
        f"{'scheme':<12}{'mean latency (ms)':>20}",
    ]
    for scheme in schemes:
        lines.append(f"{scheme.value:<12}{1e3 * latency[scheme]:>20.2f}")
    lines += [
        "",
        "design goal (§3.2): the queue gate keeps PoWiFi's client latency",
        "near Baseline; NoQueue and especially BlindUDP inflate it.",
    ]
    write_report("ablation_client_latency", lines)
    # PoWiFi adds ~1-2 ms per frame (client frames share rounds with the
    # <=5 gated power frames) — milliseconds, versus NoQueue's growing
    # backlog and BlindUDP's hundreds of milliseconds.
    assert latency[Scheme.POWIFI] < latency[Scheme.BASELINE] + 3e-3
    assert latency[Scheme.NO_QUEUE] > latency[Scheme.POWIFI]
    assert latency[Scheme.BLIND_UDP] > 50 * latency[Scheme.BASELINE]


def test_ablation_pdos_attack(benchmark):
    """§8(d): the PDoS attack starves power delivery; the watchdog sees it."""

    def run():
        sim = Simulator()
        streams = RandomStreams(0)
        medium = Medium(sim, channel=1)
        router = PoWiFiRouter(
            sim, {1: medium}, streams,
            RouterConfig(scheme=Scheme.POWIFI, channels=(1,), client_channel=1),
        )
        watchdog = PdosWatchdog(sim, medium, router.analyzers[1].occupancy, window_s=0.5)
        router.start()
        watchdog.start()
        sim.run(until=2.0)
        before = router.analyzers[1].occupancy(0.0, 2.0)
        attacker = PdosAttacker(sim, medium, streams)
        attacker.start()
        sim.run(until=5.0)
        during = router.analyzers[1].occupancy(4.0, 5.0)
        return before, during, len(watchdog.alerts), watchdog.under_attack

    before, during, alerts, flagged = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Extension — power denial-of-service attack (§8(d))",
        f"power occupancy before attack: {100 * before:6.1f} %",
        f"power occupancy under attack:  {100 * during:6.1f} %",
        f"watchdog alerts:               {alerts:>6}",
        f"attack flagged:                {str(flagged):>6}",
        "",
        "a 1 Mb/s saturating jammer trips carrier sense and starves the",
        "harvesters; the occupancy watchdog detects the busy-but-starved",
        "signature within two windows.",
    ]
    write_report("ablation_pdos", lines)
    assert during < 0.2 * before
    assert flagged and alerts >= 1


def test_ablation_80211n_fairness(benchmark):
    """§4.1(d)'s forward-compatibility claim: fairness holds on 802.11n.

    Power packets at HT MCS7 short-GI (72.2 Mb/s) occupy the channel even
    more briefly than the evaluated 54 Mb/s ERP frames, so the neighbour
    does at least as well.
    """
    from repro.mac80211.ht import ht_power_packet_advantage
    from repro.mac80211.station import Station

    def neighbor_throughput(power_rate):
        bed = build_testbed(
            Scheme.POWIFI,
            channels=(1,),
            office_occupancy=None,
            injector_override=InjectorConfig(rate_mbps=power_rate, queue_threshold=5),
        )
        neighbor_ap = Station(bed.sim, name="neighbor-ap", streams=bed.streams)
        bed.media[1].attach(neighbor_ap)
        flow = UdpFlow(
            bed.sim, neighbor_ap, target_rate_mbps=41.0, rate_mbps=24.0,
            flow_label="neighbor",
        )
        bed.start()
        flow.start()
        bed.sim.run(until=2.0)
        return flow.delivered_mbps(0.0, 2.0)

    def run():
        return {
            "802.11g (54 Mb/s)": neighbor_throughput(54.0),
            "802.11n MCS7 LGI (65 Mb/s)": neighbor_throughput(65.0),
            "802.11n MCS7 SGI (72.2 Mb/s)": neighbor_throughput(72.2),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation — fairness with 802.11n power packets (neighbour at 24 Mb/s)",
        f"{'power-packet build':<30}{'neighbour Mb/s':>16}",
    ]
    for label, value in results.items():
        lines.append(f"{label:<30}{value:>16.2f}")
    lines += [
        "",
        f"MCS7-SGI frames are {ht_power_packet_advantage():.2f}x briefer than",
        "54 Mb/s ERP frames — the paper's claim that the fairness property",
        "'would hold true even with 802.11n' (§4.1(d)) checks out.",
    ]
    write_report("ablation_80211n_fairness", lines)
    g = results["802.11g (54 Mb/s)"]
    assert results["802.11n MCS7 SGI (72.2 Mb/s)"] >= 0.95 * g
    assert results["802.11n MCS7 LGI (65 Mb/s)"] >= 0.95 * g
