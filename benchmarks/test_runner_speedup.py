"""Runner acceptance demo: parallel == sequential, warm cache is ~free.

Three claims over the *full* 17-experiment registry (this is the
heavyweight companion to ``tests/test_runner_run_all.py``, which pins the
same guarantees on sub-second experiments):

* a cold ``run_all(jobs=4)`` regenerates every experiment and all shape
  checks pass;
* a warm re-invocation serves at least 16/17 experiments from the
  content-addressed cache and finishes in under 10 % of the cold
  wall-clock;
* the parallel run is byte-identical (result SHA-256) to a sequential
  ``jobs=1`` run with caching disabled.

Expect several minutes of wall-clock: the cold parallel pass plus a full
sequential pass (~217 s of driver time) run once each, shared across the
tests via module-scoped fixtures.
"""

import pytest

from conftest import write_report

from repro.runner import run_all

JOBS = 4

#: Warm wall-clock budget, as a fraction of the cold run (acceptance: <10 %).
WARM_FRACTION_BUDGET = 0.10

#: Experiments that must replay from cache on the warm run (out of 17).
MIN_WARM_HITS = 16


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("repro_cache"))


@pytest.fixture(scope="module")
def cold(cache_dir):
    """One cold parallel pass over the whole registry, shared by all tests."""
    return run_all(jobs=JOBS, cache_dir=cache_dir, progress=print)


def test_cold_run_regenerates_all_experiments(cold):
    assert len(cold.runs) == 17
    assert cold.cache_hits == 0
    for run in cold.runs:
        assert run.error is None, f"{run.id}: {run.error}"
        assert run.shape_ok is True, f"{run.id}: {run.shape_detail}"
    assert cold.ok


def test_warm_run_hits_cache_within_budget(cold, cache_dir):
    warm = run_all(jobs=JOBS, cache_dir=cache_dir, progress=print)
    write_report(
        "runner_speedup",
        [
            f"run-all over 17 experiments, jobs={JOBS}",
            f"cold wall   {cold.wall_s:8.2f} s  ({cold.cache_hits} cache hits)",
            f"warm wall   {warm.wall_s:8.2f} s  ({warm.cache_hits} cache hits)",
            f"speedup     {cold.wall_s / max(warm.wall_s, 1e-9):8.1f} x",
            "",
            f"budget: warm < {100 * WARM_FRACTION_BUDGET:.0f} % of cold, "
            f">= {MIN_WARM_HITS}/17 experiments from cache",
        ],
    )
    assert warm.cache_hits >= MIN_WARM_HITS
    assert warm.wall_s < WARM_FRACTION_BUDGET * cold.wall_s
    for run in warm.runs:
        assert (
            run.result_sha256 == cold.run_for(run.id).result_sha256
        ), f"{run.id}: cached replay differs from cold run"


def test_parallel_matches_sequential_byte_for_byte(cold):
    sequential = run_all(jobs=1, use_cache=False, progress=print)
    assert [r.id for r in sequential.runs] == [r.id for r in cold.runs]
    for run in sequential.runs:
        assert (
            run.result_sha256 == cold.run_for(run.id).result_sha256
        ), f"{run.id}: parallel (jobs={JOBS}) and sequential results differ"
