"""Fig 9 benchmark: harvester return loss across the Wi-Fi band.

Paper result: both harvester builds hold return loss below -10 dB across
2.401-2.473 GHz, i.e. under 0.5 dB of power lost to reflection (§4.2(a)).
"""

from conftest import write_report

from repro.experiments.fig09_return_loss import run_fig09


def test_fig09_return_loss(benchmark):
    free, recharging = benchmark.pedantic(run_fig09, rounds=1, iterations=1)
    lines = ["Fig 9 — Harvester return loss (dB) across the band"]
    lines.append(f"{'freq (GHz)':<12}{'battery-free':>14}{'battery-recharging':>20}")
    free_points = {f: rl for f, rl in free.sweep}
    rech_points = {f: rl for f, rl in recharging.sweep}
    for f in sorted(free_points):
        if abs((f / 1e6) % 10) > 0.1:  # print every 10 MHz
            continue
        lines.append(
            f"{f / 1e9:<12.3f}{free_points[f]:>14.1f}{rech_points[f]:>20.1f}"
        )
    lines += [
        "",
        f"worst in-band (battery-free):       {free.worst_in_band_db:6.1f} dB",
        f"worst in-band (battery-recharging): {recharging.worst_in_band_db:6.1f} dB",
        f"worst reflection penalty:           {max(free.worst_power_penalty_db, recharging.worst_power_penalty_db):6.2f} dB  (paper: < 0.5 dB)",
    ]
    write_report("fig09", lines)

    assert free.meets_spec
    assert recharging.meets_spec
    assert free.worst_power_penalty_db < 0.5
    assert recharging.worst_power_penalty_db < 0.5
