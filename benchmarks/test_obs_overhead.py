"""Instrumentation-overhead guard: observability must stay near-free.

Runs the fig 6a UDP workload (one PoWiFi point) with observability enabled
and in ``--no-obs`` mode, best-of-3 each, and bounds the enabled-mode
wall-clock overhead. The hot paths (medium transmissions, queue pushes,
gate checks, injector ticks) each touch a handful of counters per event,
so the budget is 10 % plus a small absolute slack for timer noise on
short runs.

The attribution profiler (per-kind component + sim-bound tracking in the
dispatch loop) rides inside that same budget — its steady-state cost is
one list store per dispatch plus the pre-existing stride-sampled timer —
and the ``--no-obs`` guard additionally asserts the escape hatch is
*clean*: a disabled run accumulates no attribution state whatsoever.
"""

from time import perf_counter

from conftest import write_report

from repro.core.config import Scheme
from repro.experiments.fig06_traffic import run_udp_for_scheme
from repro.obs import runtime as obs_runtime

#: Relative wall-clock budget for enabled-mode instrumentation.
MAX_OVERHEAD_FRACTION = 0.10

#: Absolute slack (seconds) so sub-second runs don't fail on scheduler noise.
ABSOLUTE_SLACK_S = 0.08


def _run_once() -> float:
    started = perf_counter()
    run_udp_for_scheme(
        Scheme.POWIFI, rates_mbps=(20,), copies=1, run_seconds=0.5
    )
    return perf_counter() - started


def _best_of(n: int) -> float:
    return min(_run_once() for _ in range(n))


def test_obs_overhead_under_budget():
    try:
        obs_runtime.configure(enabled=True)
        _run_once()  # warm imports and caches outside the timed runs
        observed = _best_of(3)
        obs_runtime.configure(enabled=False)
        unobserved = _best_of(3)
    finally:
        obs_runtime.configure(enabled=True)

    overhead = observed - unobserved
    fraction = overhead / unobserved if unobserved > 0 else 0.0
    write_report(
        "obs_overhead",
        [
            "Observability overhead — fig 6a UDP point (PoWiFi, 20 Mb/s, 0.5 s)",
            f"observed   {observed:8.3f} s",
            f"unobserved {unobserved:8.3f} s",
            f"overhead   {overhead:8.3f} s ({100 * fraction:.1f} %)",
            "",
            f"budget: {100 * MAX_OVERHEAD_FRACTION:.0f} % + {ABSOLUTE_SLACK_S} s slack",
        ],
    )
    assert overhead <= MAX_OVERHEAD_FRACTION * unobserved + ABSOLUTE_SLACK_S, (
        f"instrumentation overhead {overhead:.3f}s "
        f"({100 * fraction:.1f}%) exceeds budget"
    )


def test_no_obs_leaves_no_attribution_state():
    """``--no-obs`` must be profiler-clean: zero tracked simulators, zero
    per-kind counters, zero attribution rows — not merely 'cheap'."""
    from repro.obs.profile import rows_from_engine

    try:
        obs_runtime.configure(enabled=False)
        _run_once()
        engine = obs_runtime.aggregate_engine_stats()
    finally:
        obs_runtime.configure(enabled=True)
    assert engine["simulators"] == 0
    assert engine["callback_counts"] == {}
    assert engine["callback_components"] == {}
    assert engine["callback_sim_bounds"] == {}
    assert rows_from_engine(engine) == []


def test_profiler_attribution_covers_dispatch_wall():
    """Attributed per-kind wall must explain the bulk of the measured run.

    The bound is deliberately loose (50 % of whole-driver wall, which
    includes setup and analysis outside the dispatch loop) so stride-
    sampling jitter cannot flake CI; the CLI prints the exact coverage
    line for the humans chasing the >= 95 %-of-dispatch target.
    """
    from repro.obs.profile import attributed_wall_s, rows_from_engine

    obs_runtime.configure(enabled=True)
    started = perf_counter()
    run_udp_for_scheme(Scheme.POWIFI, rates_mbps=(20,), copies=1, run_seconds=0.5)
    total_wall = perf_counter() - started
    rows = rows_from_engine(obs_runtime.aggregate_engine_stats())
    obs_runtime.configure(enabled=True)
    assert rows, "observed run must yield attribution rows"
    attributed = attributed_wall_s(rows)
    write_report(
        "obs_attribution_coverage",
        [
            "Profiler attribution coverage — fig 6a UDP point",
            f"measured   {total_wall:8.3f} s",
            f"attributed {attributed:8.3f} s "
            f"({100 * attributed / total_wall:.1f} % of driver wall)",
            f"kinds      {len(rows)}",
        ],
    )
    assert attributed >= 0.5 * total_wall, (
        f"attribution explains only {attributed:.3f}s of {total_wall:.3f}s"
    )
