"""Fig 12 benchmark: camera inter-frame time vs distance.

Paper result: the battery-free camera operates to 17 ft; the
battery-recharging build is energy-neutral to 23 ft and keeps working to
~26.5 ft; the builds are comparable to ~15 ft (§5.2, Fig 12).
"""

from conftest import fmt_row, write_report

from repro.experiments.fig12_camera import DEFAULT_DISTANCES_FEET, run_fig12


def _fmt(minutes):
    return [m if m != float("inf") else -1.0 for m in minutes]


def test_fig12_camera(benchmark):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    lines = [
        "Fig 12 — Camera inter-frame time (min) vs distance (ft)  [-1 = off]",
        fmt_row("distance (ft)", DEFAULT_DISTANCES_FEET, "{:>7.0f}"),
        fmt_row(
            "battery-free",
            _fmt([result.battery_free[d] for d in DEFAULT_DISTANCES_FEET]),
            "{:>7.1f}",
        ),
        fmt_row(
            "battery-recharging",
            _fmt([result.battery_recharging[d] for d in DEFAULT_DISTANCES_FEET]),
            "{:>7.1f}",
        ),
        "",
        f"battery-free range:       {result.battery_free_range_feet:5.1f} ft  (paper: 17 ft)",
        f"battery-recharging range: {result.battery_recharging_range_feet:5.1f} ft  (paper: 23 ft energy-neutral, 26.5 ft max)",
    ]
    write_report("fig12", lines)

    assert abs(result.battery_free_range_feet - 17.0) < 2.0
    assert 23.0 <= result.battery_recharging_range_feet <= 30.0
    assert result.battery_free[20] == float("inf")
    assert result.battery_recharging[23] != float("inf")
