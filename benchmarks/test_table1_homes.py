"""Table 1 benchmark: the home-deployment summary.

Reproduces the deployment table (users / devices / neighbouring APs per
home) that parameterises Figs 14 and 15.
"""

from conftest import write_report

from repro.experiments.table1_homes import run_table1


def test_table1_homes(benchmark):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    lines = [
        "Table 1 — Summary of the home deployment",
        result.as_text(),
        "",
        f"matches the paper's table: {result.matches_paper}",
    ]
    write_report("table1", lines)
    assert result.matches_paper
