#!/usr/bin/env python3
"""Check that every CLI flag the docs mention actually exists.

The markdown under the repo root and ``docs/`` quotes ``repro`` command
lines and flag tables extensively; when a flag is renamed or removed the
docs silently rot. This checker extracts every ``--flag`` token from the
given markdown files and validates it against the set of flags the CLI
parsers actually define — the same information ``python -m repro <sub>
--help`` prints, collected statically (via ``ast``) from the parser
modules so the check needs no subprocesses and stays fast enough for CI
and a pre-commit hook.

Known-flag sources:

* ``src/repro/cli.py`` — the base parser and every subcommand parser
  (``run-all``, ``metrics``, ``profile``, ``watch``, ``trace``, ``spans``,
  ``compare``), plus the pre-parse ``--no-obs`` escape hatch;
* ``src/repro/lint/cli.py`` — the ``lint`` subcommand.

Flags that belong to other tools quoted in the docs (pytest plugins and
the like) are allowlisted explicitly in :data:`EXTERNAL_FLAGS` so a typo
cannot hide behind a wildcard.

Used by the CI ``docs`` job and ``tests/test_docs_cli.py``::

    python tools/check_cli_docs.py            # default file set
    python tools/check_cli_docs.py docs/running.md
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

#: A long-option token as the docs write them: --jobs, --no-cache, ...
FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")

#: Fenced code block delimiter (flags inside fences are still checked —
#: quoted command lines are exactly what rots).
EXTERNAL_FLAGS = {
    # pytest-benchmark, quoted in README/EXPERIMENTS for regenerating rows.
    "--benchmark-only",
}

#: CLI modules that define parsers, relative to the repo root.
PARSER_SOURCES = (
    Path("src") / "repro" / "cli.py",
    Path("src") / "repro" / "lint" / "cli.py",
)

#: Flags handled outside argparse (stripped before dispatch in cli.main),
#: plus the option argparse adds to every parser on its own.
PREPARSE_FLAGS = {"--no-obs", "--help"}

#: Root-level scaffolding that quotes *other* projects' command lines
#: (exemplar snippets, the working issue); not user-facing documentation.
SKIP_FILES = {"SNIPPETS.md", "ISSUE.md", "PAPERS.md", "PAPER.md", "CHANGES.md"}


def repo_root() -> Path:
    """The repository root (this script lives in ``<root>/tools/``)."""
    return Path(__file__).resolve().parent.parent


def default_files(root: Path) -> List[Path]:
    """The markdown set the docs CI job guards."""
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    return [
        path for path in files if path.is_file() and path.name not in SKIP_FILES
    ]


def known_flags(root: Path) -> Set[str]:
    """Every ``--flag`` the CLI parsers register, plus pre-parse flags.

    Walks the parser modules' ASTs for ``*.add_argument("--flag", ...)``
    calls; string positional arguments starting with ``--`` are option
    names by argparse's contract.
    """
    flags: Set[str] = set(PREPARSE_FLAGS)
    for relative in PARSER_SOURCES:
        source = (root / relative).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(relative))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    flags.add(arg.value)
    return flags


def doc_flags(files: Iterable[Path]) -> Dict[str, List[Tuple[Path, int]]]:
    """Map each ``--flag`` token in the docs to its ``(file, line)`` sites."""
    sites: Dict[str, List[Tuple[Path, int]]] = {}
    for path in files:
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for match in FLAG_RE.finditer(line):
                sites.setdefault(match.group(0), []).append((path, number))
    return sites


def stale_flags(files: Iterable[Path], flags: Set[str]) -> List[str]:
    """``"file:line: flag"`` for every doc flag the CLI does not define."""
    problems = []
    for flag, locations in sorted(doc_flags(files).items()):
        if flag in flags or flag in EXTERNAL_FLAGS:
            continue
        for path, number in locations:
            problems.append(f"{path}:{number}: unknown CLI flag {flag}")
    return problems


def main(argv: List[str]) -> int:
    root = repo_root()
    files = [Path(arg) for arg in argv] if argv else default_files(root)
    missing = [str(path) for path in files if not path.is_file()]
    if missing:
        print("no such file(s): " + ", ".join(missing), file=sys.stderr)
        return 2
    flags = known_flags(root)
    problems = stale_flags(files, flags)
    for problem in problems:
        print(problem, file=sys.stderr)
    referenced = doc_flags(files)
    print(
        f"checked {sum(len(v) for v in referenced.values())} flag references "
        f"({len(referenced)} distinct) across {len(list(files))} files "
        f"against {len(flags)} CLI flags: {len(problems)} unknown"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
