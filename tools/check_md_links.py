#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve to real files.

Scans the given markdown files (default: every ``*.md`` at the repo root
plus ``docs/*.md``) for inline links ``[text](target)`` and verifies each
relative target exists on disk, fragment stripped. External links
(``http://``, ``https://``, ``mailto:``) and pure-fragment anchors are
skipped, as are links inside fenced code blocks.

Used by the CI ``docs`` job and ``tests/test_docs_links.py``::

    python tools/check_md_links.py            # default file set
    python tools/check_md_links.py README.md docs/running.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown link: [text](target). Targets never contain spaces here.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced code block delimiter.
FENCE_RE = re.compile(r"^\s*(```|~~~)")

#: Link schemes that are not filesystem paths.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def repo_root() -> Path:
    """The repository root (this script lives in ``<root>/tools/``)."""
    return Path(__file__).resolve().parent.parent


def default_files(root: Path) -> List[Path]:
    """The markdown set the docs CI job guards."""
    files = sorted(root.glob("*.md")) + sorted((root / "docs").glob("*.md"))
    return [path for path in files if path.is_file()]


def iter_links(path: Path) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every checkable link in a file."""
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            yield number, target


def broken_links(files: Iterable[Path]) -> List[str]:
    """``"file:line: target"`` for every link whose file does not exist."""
    problems = []
    for path in files:
        for number, target in iter_links(path):
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(f"{path}:{number}: broken link -> {target}")
    return problems


def main(argv: List[str]) -> int:
    root = repo_root()
    files = [Path(arg) for arg in argv] if argv else default_files(root)
    missing = [str(path) for path in files if not path.is_file()]
    if missing:
        print("no such file(s): " + ", ".join(missing), file=sys.stderr)
        return 2
    problems = broken_links(files)
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = sum(1 for path in files for _ in iter_links(path))
    print(f"checked {checked} links across {len(files)} files: "
          f"{len(problems)} broken")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
