"""Wi-Fi-powered sensor applications (§5): the battery-free and
battery-recharging temperature sensor and camera, plus the USB charging
hotspot of §8(a)."""

from repro.sensors.mcu import Msp430Fr5969, SensorLoad, TEMPERATURE_READ_ENERGY_J
from repro.sensors.temperature import TemperatureSensor, TemperatureSensorResult
from repro.sensors.camera import WiFiCamera, CameraResult, IMAGE_CAPTURE_ENERGY_J
from repro.sensors.charger import UsbWiFiCharger, ChargeResult
from repro.sensors.duty_cycle import DutyCycleSimulator, DutyCycleResult

__all__ = [
    "Msp430Fr5969",
    "SensorLoad",
    "TEMPERATURE_READ_ENERGY_J",
    "TemperatureSensor",
    "TemperatureSensorResult",
    "WiFiCamera",
    "CameraResult",
    "IMAGE_CAPTURE_ENERGY_J",
    "UsbWiFiCharger",
    "ChargeResult",
    "DutyCycleSimulator",
    "DutyCycleResult",
]
