"""Time-domain duty-cycle simulation of a Wi-Fi-powered sensor.

The analytic models in :mod:`repro.sensors.temperature` and
:mod:`repro.sensors.camera` compute long-run rates from average power; this
module simulates the actual charge/boot/operate/sleep cycle against a
time-varying occupancy signal — which is how the battery-free prototypes
really behave (§5.1: the MSP430 boots each time the storage capacitor
reaches 2.4 V, performs one measurement, and browns out again at low
incident power).

It consumes either a constant occupancy, a per-window occupancy series
(e.g. a home deployment log), or live medium records, and produces the
timestamps of completed sensor operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.harvester.harvester import Harvester
from repro.harvester.storage import Capacitor
from repro.obs.energy import EnergyLedger
from repro.sensors.mcu import MCU_BOOT_TIME_S
from repro.units import dbm_to_watts, watts_to_dbm

#: The Seiko storage-capacitor output threshold: the MCU powers on at 2.4 V.
BOOT_VOLTAGE_V = 2.4

#: Brown-out voltage: below this the MCU cannot finish an operation.
BROWNOUT_VOLTAGE_V = 1.9


@dataclass
class OperationRecord:
    """One completed sensor operation."""

    time_s: float
    storage_voltage_before: float
    storage_voltage_after: float


@dataclass
class DutyCycleResult:
    """Outcome of a duty-cycle run."""

    operations: List[OperationRecord] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def count(self) -> int:
        """Number of completed operations."""
        return len(self.operations)

    @property
    def mean_rate_hz(self) -> float:
        """Operations per second over the whole run."""
        if self.duration_s <= 0:
            return 0.0
        return self.count / self.duration_s

    def inter_operation_times(self) -> List[float]:
        """Gaps between consecutive operations."""
        times = [op.time_s for op in self.operations]
        return [b - a for a, b in zip(times, times[1:])]


class DutyCycleSimulator:
    """Charge/boot/operate cycle simulation for one sensor placement.

    Parameters
    ----------
    harvester:
        The harvesting chain feeding the storage capacitor.
    received_power_dbm:
        RF power at the harvester antenna while a channel is busy.
    operation_energy_j:
        Energy one sensor operation draws from storage.
    storage:
        Storage capacitor; defaults to a 10 µF reservoir — large enough to
        ride one measurement (2.77 µJ is a ~50 mV dip at 2.4 V), small
        enough to cold-start in seconds, as the battery-free temperature
        sensor's storage is sized (§5.1).
    step_s:
        Integration step; operations resolve to this granularity.
    boot_voltage_v, floor_voltage_v:
        Storage thresholds: the default 2.4 V / 1.9 V pair models the
        temperature sensor's Seiko chain; the camera's bq25570+supercap
        chain uses 3.1 V / 2.4 V (§5.2).
    ledger:
        Optional :class:`repro.obs.energy.EnergyLedger` recording harvested
        deposits, operation withdrawals and a (strided) storage-voltage
        timeseries. The ledger's timeseries is monotonic in time, so use a
        fresh ledger per ``run`` call.
    vectorized:
        Opt-in numpy fast path. Evaluates the harvester chain once per
        *distinct* occupancy value and advances the storage recurrence in
        array chunks instead of per step — one to two orders of magnitude
        faster for long runs. Results agree with the scalar loop to float
        re-association tolerance (operation counts and times match to the
        integration step), but are **not** bit-identical, so the default
        (and every seeded paper driver) keeps the scalar loop. Ignored when
        numpy is unavailable or a ledger is attached (the ledger's per-step
        timeseries requires the scalar walk).
    """

    def __init__(
        self,
        harvester: Harvester,
        received_power_dbm: float,
        operation_energy_j: float,
        storage: Optional[Capacitor] = None,
        step_s: float = 0.01,
        boot_voltage_v: float = BOOT_VOLTAGE_V,
        floor_voltage_v: float = BROWNOUT_VOLTAGE_V,
        ledger: Optional[EnergyLedger] = None,
        vectorized: bool = False,
    ) -> None:
        if operation_energy_j <= 0:
            raise ConfigurationError("operation energy must be > 0")
        if step_s <= 0:
            raise ConfigurationError("step must be > 0")
        if not (0.0 < floor_voltage_v < boot_voltage_v):
            raise ConfigurationError(
                "need 0 < floor voltage < boot voltage, got "
                f"{floor_voltage_v} / {boot_voltage_v}"
            )
        self.harvester = harvester
        self.received_power_dbm = received_power_dbm
        self.operation_energy_j = operation_energy_j
        self.storage = storage or Capacitor(
            capacitance_f=10e-6, leakage_resistance_ohm=5e6
        )
        self.step_s = step_s
        self.boot_voltage_v = boot_voltage_v
        self.floor_voltage_v = floor_voltage_v
        self.ledger = ledger
        self.vectorized = vectorized

    # ------------------------------------------------------------------ model

    def _harvest_power_w(self, occupancy: float) -> float:
        """DC power into storage at the given instantaneous occupancy."""
        if occupancy <= 0:
            return 0.0
        incident = dbm_to_watts(self.received_power_dbm) * occupancy
        return self.harvester.dc_output_power_w(watts_to_dbm(incident))

    def run(
        self,
        duration_s: float,
        occupancy: Callable[[float], float],
    ) -> DutyCycleResult:
        """Simulate ``duration_s`` seconds against ``occupancy(t)``.

        The storage integrates harvested power (minus leakage); when its
        voltage reaches :data:`BOOT_VOLTAGE_V` and one operation's worth of
        energy is available above the brown-out floor, the MCU boots,
        performs the operation and the cycle repeats.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be > 0")
        if self.vectorized and self.ledger is None:
            try:
                return self._run_vectorized(duration_s, occupancy)
            except ImportError:  # pragma: no cover - numpy always in CI image
                pass
        result = DutyCycleResult(duration_s=duration_s)
        cap = self.storage
        ledger = self.ledger
        brownout_energy = 0.5 * cap.capacitance_f * self.floor_voltage_v ** 2
        t = 0.0
        while t < duration_s:
            power = self._harvest_power_w(occupancy(t))
            cap.deposit(power * self.step_s)
            cap.leak(self.step_s)
            if ledger is not None:
                ledger.deposit(t, power * self.step_s)
            if cap.voltage_v >= self.boot_voltage_v:
                usable = cap.energy_j - brownout_energy
                if usable >= self.operation_energy_j:
                    before = cap.voltage_v
                    cap.withdraw(self.operation_energy_j)
                    if ledger is not None:
                        ledger.withdraw(
                            t + MCU_BOOT_TIME_S, self.operation_energy_j
                        )
                    result.operations.append(
                        OperationRecord(
                            time_s=t + MCU_BOOT_TIME_S,
                            storage_voltage_before=before,
                            storage_voltage_after=cap.voltage_v,
                        )
                    )
            if ledger is not None:
                ledger.sample_voltage(t, cap.voltage_v)
            t += self.step_s
        return result

    def _run_vectorized(
        self,
        duration_s: float,
        occupancy: Callable[[float], float],
    ) -> DutyCycleResult:
        """Numpy fast path: chunked closed-form advance of the storage state.

        Per step the scalar loop computes ``E' = (E + P·dt) · k`` where
        ``k = exp(-2·dt/τ)`` is the leakage decay of *energy*. Rescaling by
        ``k⁻ⁿ`` turns that recurrence into a cumulative sum, so a whole
        chunk of steps advances in one vector expression; a chunk is cut
        short only where the energy crosses the boot-and-budget threshold
        and an operation (withdrawal) must be applied. Chunks are kept
        short enough (1024 steps) that the ``k⁻ⁿ`` rescaling stays well
        within float range for any physical leakage constant.
        """
        import numpy as np

        cap = self.storage
        step = self.step_s
        n_steps = int(math.ceil(duration_s / step - 1e-9))
        result = DutyCycleResult(duration_s=duration_s)
        if n_steps <= 0:
            return result
        times = np.arange(n_steps) * step
        occ = np.fromiter(
            (occupancy(float(t)) for t in times), dtype=float, count=n_steps
        )
        # One harvester-chain evaluation per distinct occupancy level: home
        # deployment logs hold a few hundred windows, constant runs just one.
        values, inverse = np.unique(occ, return_inverse=True)
        powers = np.array([self._harvest_power_w(float(v)) for v in values])
        deposits = powers[inverse] * step
        if math.isinf(cap.leakage_resistance_ohm):
            k = 1.0
        else:
            tau = cap.leakage_resistance_ohm * cap.capacitance_f
            k = math.exp(-2.0 * step / tau)
        brownout_energy = 0.5 * cap.capacitance_f * self.floor_voltage_v**2
        boot_energy = 0.5 * cap.capacitance_f * self.boot_voltage_v**2
        # The scalar loop fires when voltage >= boot AND the energy above
        # the brown-out floor covers one operation — a single energy bar.
        threshold = max(boot_energy, brownout_energy + self.operation_energy_j)
        chunk = 1024
        c_scale = 2.0 / cap.capacitance_f
        energy = cap.energy_j
        index = 0
        while index < n_steps:
            end = min(index + chunk, n_steps)
            d = deposits[index:end]
            m = end - index
            if k == 1.0:
                trajectory = energy + np.cumsum(d)
            else:
                decay = k ** np.arange(1, m + 1)
                trajectory = decay * (energy + np.cumsum(d * k ** -np.arange(m)))
            crossings = trajectory >= threshold
            if not crossings.any():
                energy = float(trajectory[-1])
                index = end
                continue
            hit = int(np.argmax(crossings))
            energy = float(trajectory[hit])
            voltage_before = math.sqrt(c_scale * energy)
            energy -= self.operation_energy_j
            result.operations.append(
                OperationRecord(
                    time_s=float(times[index + hit]) + MCU_BOOT_TIME_S,
                    storage_voltage_before=voltage_before,
                    storage_voltage_after=math.sqrt(c_scale * max(energy, 0.0)),
                )
            )
            index += hit + 1
        cap.set_energy(max(energy, 0.0))
        return result

    # ------------------------------------------------------- occupancy inputs

    def run_constant(self, duration_s: float, occupancy: float) -> DutyCycleResult:
        """Run against a constant occupancy level."""
        if occupancy < 0:
            raise ConfigurationError("occupancy must be >= 0")
        return self.run(duration_s, lambda _t: occupancy)

    def run_series(
        self,
        samples: Sequence[float],
        window_s: float,
    ) -> DutyCycleResult:
        """Run against a windowed occupancy log (e.g. a home deployment).

        ``samples[i]`` holds for ``[i*window_s, (i+1)*window_s)``.
        """
        if not samples:
            raise ConfigurationError("need at least one occupancy sample")
        if window_s <= 0:
            raise ConfigurationError("window must be > 0")

        def occupancy(t: float) -> float:
            index = min(int(t / window_s), len(samples) - 1)
            return samples[index]

        return self.run(len(samples) * window_s, occupancy)


def camera_duty_cycle_simulator(
    harvester: Harvester,
    received_power_dbm: float,
) -> DutyCycleSimulator:
    """The battery-free camera's cycle: supercap charges to 3.1 V, the
    bq25570's buck then runs the OV7670 down to 2.4 V per capture (§5.2)."""
    from repro.harvester.storage import SuperCapacitor
    from repro.sensors.camera import IMAGE_CAPTURE_ENERGY_J

    supercap = SuperCapacitor()
    return DutyCycleSimulator(
        harvester,
        received_power_dbm,
        operation_energy_j=IMAGE_CAPTURE_ENERGY_J,
        storage=supercap,
        step_s=1.0,  # camera cycles span minutes; coarse steps suffice
        boot_voltage_v=supercap.activate_voltage_v,
        floor_voltage_v=supercap.floor_voltage_v,
    )
