"""Time-domain duty-cycle simulation of a Wi-Fi-powered sensor.

The analytic models in :mod:`repro.sensors.temperature` and
:mod:`repro.sensors.camera` compute long-run rates from average power; this
module simulates the actual charge/boot/operate/sleep cycle against a
time-varying occupancy signal — which is how the battery-free prototypes
really behave (§5.1: the MSP430 boots each time the storage capacitor
reaches 2.4 V, performs one measurement, and browns out again at low
incident power).

It consumes either a constant occupancy, a per-window occupancy series
(e.g. a home deployment log), or live medium records, and produces the
timestamps of completed sensor operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.harvester.harvester import Harvester
from repro.harvester.storage import Capacitor
from repro.obs.energy import EnergyLedger
from repro.sensors.mcu import MCU_BOOT_TIME_S
from repro.units import dbm_to_watts, watts_to_dbm

#: The Seiko storage-capacitor output threshold: the MCU powers on at 2.4 V.
BOOT_VOLTAGE_V = 2.4

#: Brown-out voltage: below this the MCU cannot finish an operation.
BROWNOUT_VOLTAGE_V = 1.9


@dataclass
class OperationRecord:
    """One completed sensor operation."""

    time_s: float
    storage_voltage_before: float
    storage_voltage_after: float


@dataclass
class DutyCycleResult:
    """Outcome of a duty-cycle run."""

    operations: List[OperationRecord] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def count(self) -> int:
        """Number of completed operations."""
        return len(self.operations)

    @property
    def mean_rate_hz(self) -> float:
        """Operations per second over the whole run."""
        if self.duration_s <= 0:
            return 0.0
        return self.count / self.duration_s

    def inter_operation_times(self) -> List[float]:
        """Gaps between consecutive operations."""
        times = [op.time_s for op in self.operations]
        return [b - a for a, b in zip(times, times[1:])]


class DutyCycleSimulator:
    """Charge/boot/operate cycle simulation for one sensor placement.

    Parameters
    ----------
    harvester:
        The harvesting chain feeding the storage capacitor.
    received_power_dbm:
        RF power at the harvester antenna while a channel is busy.
    operation_energy_j:
        Energy one sensor operation draws from storage.
    storage:
        Storage capacitor; defaults to a 10 µF reservoir — large enough to
        ride one measurement (2.77 µJ is a ~50 mV dip at 2.4 V), small
        enough to cold-start in seconds, as the battery-free temperature
        sensor's storage is sized (§5.1).
    step_s:
        Integration step; operations resolve to this granularity.
    boot_voltage_v, floor_voltage_v:
        Storage thresholds: the default 2.4 V / 1.9 V pair models the
        temperature sensor's Seiko chain; the camera's bq25570+supercap
        chain uses 3.1 V / 2.4 V (§5.2).
    ledger:
        Optional :class:`repro.obs.energy.EnergyLedger` recording harvested
        deposits, operation withdrawals and a (strided) storage-voltage
        timeseries. The ledger's timeseries is monotonic in time, so use a
        fresh ledger per ``run`` call.
    """

    def __init__(
        self,
        harvester: Harvester,
        received_power_dbm: float,
        operation_energy_j: float,
        storage: Optional[Capacitor] = None,
        step_s: float = 0.01,
        boot_voltage_v: float = BOOT_VOLTAGE_V,
        floor_voltage_v: float = BROWNOUT_VOLTAGE_V,
        ledger: Optional[EnergyLedger] = None,
    ) -> None:
        if operation_energy_j <= 0:
            raise ConfigurationError("operation energy must be > 0")
        if step_s <= 0:
            raise ConfigurationError("step must be > 0")
        if not (0.0 < floor_voltage_v < boot_voltage_v):
            raise ConfigurationError(
                "need 0 < floor voltage < boot voltage, got "
                f"{floor_voltage_v} / {boot_voltage_v}"
            )
        self.harvester = harvester
        self.received_power_dbm = received_power_dbm
        self.operation_energy_j = operation_energy_j
        self.storage = storage or Capacitor(
            capacitance_f=10e-6, leakage_resistance_ohm=5e6
        )
        self.step_s = step_s
        self.boot_voltage_v = boot_voltage_v
        self.floor_voltage_v = floor_voltage_v
        self.ledger = ledger

    # ------------------------------------------------------------------ model

    def _harvest_power_w(self, occupancy: float) -> float:
        """DC power into storage at the given instantaneous occupancy."""
        if occupancy <= 0:
            return 0.0
        incident = dbm_to_watts(self.received_power_dbm) * occupancy
        return self.harvester.dc_output_power_w(watts_to_dbm(incident))

    def run(
        self,
        duration_s: float,
        occupancy: Callable[[float], float],
    ) -> DutyCycleResult:
        """Simulate ``duration_s`` seconds against ``occupancy(t)``.

        The storage integrates harvested power (minus leakage); when its
        voltage reaches :data:`BOOT_VOLTAGE_V` and one operation's worth of
        energy is available above the brown-out floor, the MCU boots,
        performs the operation and the cycle repeats.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be > 0")
        result = DutyCycleResult(duration_s=duration_s)
        cap = self.storage
        ledger = self.ledger
        brownout_energy = 0.5 * cap.capacitance_f * self.floor_voltage_v ** 2
        t = 0.0
        while t < duration_s:
            power = self._harvest_power_w(occupancy(t))
            cap.deposit(power * self.step_s)
            cap.leak(self.step_s)
            if ledger is not None:
                ledger.deposit(t, power * self.step_s)
            if cap.voltage_v >= self.boot_voltage_v:
                usable = cap.energy_j - brownout_energy
                if usable >= self.operation_energy_j:
                    before = cap.voltage_v
                    cap.withdraw(self.operation_energy_j)
                    if ledger is not None:
                        ledger.withdraw(
                            t + MCU_BOOT_TIME_S, self.operation_energy_j
                        )
                    result.operations.append(
                        OperationRecord(
                            time_s=t + MCU_BOOT_TIME_S,
                            storage_voltage_before=before,
                            storage_voltage_after=cap.voltage_v,
                        )
                    )
            if ledger is not None:
                ledger.sample_voltage(t, cap.voltage_v)
            t += self.step_s
        return result

    # ------------------------------------------------------- occupancy inputs

    def run_constant(self, duration_s: float, occupancy: float) -> DutyCycleResult:
        """Run against a constant occupancy level."""
        if occupancy < 0:
            raise ConfigurationError("occupancy must be >= 0")
        return self.run(duration_s, lambda _t: occupancy)

    def run_series(
        self,
        samples: Sequence[float],
        window_s: float,
    ) -> DutyCycleResult:
        """Run against a windowed occupancy log (e.g. a home deployment).

        ``samples[i]`` holds for ``[i*window_s, (i+1)*window_s)``.
        """
        if not samples:
            raise ConfigurationError("need at least one occupancy sample")
        if window_s <= 0:
            raise ConfigurationError("window must be > 0")

        def occupancy(t: float) -> float:
            index = min(int(t / window_s), len(samples) - 1)
            return samples[index]

        return self.run(len(samples) * window_s, occupancy)


def camera_duty_cycle_simulator(
    harvester: Harvester,
    received_power_dbm: float,
) -> DutyCycleSimulator:
    """The battery-free camera's cycle: supercap charges to 3.1 V, the
    bq25570's buck then runs the OV7670 down to 2.4 V per capture (§5.2)."""
    from repro.harvester.storage import SuperCapacitor
    from repro.sensors.camera import IMAGE_CAPTURE_ENERGY_J

    supercap = SuperCapacitor()
    return DutyCycleSimulator(
        harvester,
        received_power_dbm,
        operation_energy_j=IMAGE_CAPTURE_ENERGY_J,
        storage=supercap,
        step_s=1.0,  # camera cycles span minutes; coarse steps suffice
        boot_voltage_v=supercap.activate_voltage_v,
        floor_voltage_v=supercap.floor_voltage_v,
    )
