"""The Wi-Fi-powered temperature sensor (§5.1, Figs 11 and 15).

Battery-free build: harvester → Seiko S-882Z → storage capacitor; when the
capacitor reaches 2.4 V the MSP430 boots, samples the LMT84 and ships the
reading over UART (2.77 µJ per cycle).

Battery-recharging build: harvester → bq25570 → two AAA NiMH cells; the
update rate reported is the energy-neutral rate (incoming power divided by
the 2.77 µJ per operation), exactly the paper's §5.1 methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.harvester.harvester import (
    Harvester,
    battery_free_harvester,
    battery_recharging_harvester,
)
from repro.harvester.storage import NiMHBattery
from repro.rf.link import LinkBudget
from repro.sensors.mcu import TEMPERATURE_READ_ENERGY_J
from repro.units import dbm_to_watts, watts_to_dbm

#: NiMH charge/discharge round-trip efficiency applied to energy-neutral
#: operation of the battery-recharging build.
NIMH_ROUND_TRIP = 0.70


@dataclass(frozen=True)
class TemperatureSensorResult:
    """Outcome of evaluating the sensor at one placement."""

    distance_feet: float
    received_power_dbm: float
    harvested_power_w: float
    update_rate_hz: float

    @property
    def operational(self) -> bool:
        """True when the sensor produces any readings."""
        return self.update_rate_hz > 0


class TemperatureSensor:
    """A temperature sensor powered by a PoWiFi router.

    Parameters
    ----------
    harvester:
        Defaults to the §5.1 build for the chosen variant.
    battery_recharging:
        Choose the build; affects harvester, sensitivity and round-trip
        efficiency.
    read_energy_j:
        Energy per measurement + UART transmission.
    """

    def __init__(
        self,
        battery_recharging: bool = False,
        harvester: Optional[Harvester] = None,
        read_energy_j: float = TEMPERATURE_READ_ENERGY_J,
    ) -> None:
        if read_energy_j <= 0:
            raise ConfigurationError("read energy must be > 0")
        self.battery_recharging = battery_recharging
        if harvester is None:
            harvester = (
                battery_recharging_harvester()
                if battery_recharging
                else battery_free_harvester()
            )
        self.harvester = harvester
        self.read_energy_j = read_energy_j
        self.battery = NiMHBattery() if battery_recharging else None

    def harvested_power_w(
        self,
        received_power_dbm: float,
        occupancy: float = 1.0,
        frequency_hz: float = 2.437e9,
    ) -> float:
        """DC power available for the sensor at this placement.

        ``occupancy`` is the *cumulative* channel occupancy: the harvester
        draws from all three channels at once, so concurrent transmissions
        stack and the average incident power scales with the cumulative
        value (which may exceed 1).
        """
        if not (0.0 <= occupancy):
            raise ConfigurationError(f"occupancy must be >= 0, got {occupancy}")
        incident_w = dbm_to_watts(received_power_dbm) * occupancy
        if incident_w <= 0:
            return 0.0
        dc = self.harvester.dc_output_power_w(watts_to_dbm(incident_w), frequency_hz)
        if self.battery is not None:
            # Energy-neutral operation cycles energy through the battery.
            dc *= NIMH_ROUND_TRIP
        return dc

    def update_rate_hz(
        self,
        received_power_dbm: float,
        occupancy: float = 1.0,
        frequency_hz: float = 2.437e9,
    ) -> float:
        """Readings per second — the Fig 11 / Fig 15 metric."""
        power = self.harvested_power_w(received_power_dbm, occupancy, frequency_hz)
        return power / self.read_energy_j

    def evaluate_at(
        self,
        link: LinkBudget,
        distance_feet: float,
        occupancy: float = 0.913,
    ) -> TemperatureSensorResult:
        """Evaluate the sensor at a distance from a router.

        The default occupancy is the §5.1 experiments' measured average
        cumulative occupancy (91.3 %).
        """
        rx_dbm = link.received_power_dbm_at_feet(distance_feet)
        power = self.harvested_power_w(rx_dbm, occupancy)
        return TemperatureSensorResult(
            distance_feet=distance_feet,
            received_power_dbm=rx_dbm,
            harvested_power_w=power,
            update_rate_hz=power / self.read_energy_j,
        )

    def range_feet(
        self,
        link: LinkBudget,
        occupancy: float = 0.913,
        max_feet: float = 60.0,
        step_feet: float = 0.5,
    ) -> float:
        """Largest distance at which the sensor still operates."""
        best = 0.0
        steps = int(max_feet / step_feet)
        for i in range(1, steps + 1):
            feet = i * step_feet
            if self.evaluate_at(link, feet, occupancy).operational:
                best = feet
            else:
                break
        return best
