"""Microcontroller and sensor energy models.

Both prototypes use the TI MSP430FR5969 [10]: at least 1.9 V to run at
1 MHz, sub-2 ms boot, 64 KB of non-volatile FRAM. The paper's firmware is
power-optimised to 2.77 µJ per temperature measurement-and-transmit and
10.4 mJ per image capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.energy import EnergyLedger

#: Energy for one temperature sample + UART transmission (§5.1).
TEMPERATURE_READ_ENERGY_J = 2.77e-6

#: Minimum supply for the MSP430FR5969 at 1 MHz.
MCU_MIN_VOLTAGE_V = 1.9

#: Boot time of the MSP430FR5969 (§5.1: "boots in less than 2 ms").
MCU_BOOT_TIME_S = 2e-3


@dataclass(frozen=True)
class Msp430Fr5969:
    """The MSP430FR5969 as an energy load.

    Attributes
    ----------
    min_voltage_v:
        Supply floor for 1 MHz operation.
    boot_time_s:
        Cold-boot latency.
    fram_bytes:
        Non-volatile storage available for sensor data (the camera stores a
        full QCIF frame here).
    """

    min_voltage_v: float = MCU_MIN_VOLTAGE_V
    boot_time_s: float = MCU_BOOT_TIME_S
    fram_bytes: int = 64 * 1024

    def can_run_at(self, supply_voltage_v: float) -> bool:
        """True when the supply can operate the MCU."""
        return supply_voltage_v >= self.min_voltage_v


@dataclass(frozen=True)
class SensorLoad:
    """A sensing operation as an energy/storage transaction.

    Attributes
    ----------
    name:
        Label ("temperature-read", "image-capture").
    energy_per_operation_j:
        Withdrawn from storage per operation.
    data_bytes:
        Data produced per operation (bounded by the MCU's FRAM).
    min_supply_voltage_v:
        Rail voltage the operation needs.
    """

    name: str
    energy_per_operation_j: float
    data_bytes: int = 2
    min_supply_voltage_v: float = MCU_MIN_VOLTAGE_V

    def __post_init__(self) -> None:
        if self.energy_per_operation_j <= 0:
            raise ConfigurationError("operation energy must be > 0")
        if self.data_bytes < 0:
            raise ConfigurationError("data size must be >= 0")

    def operations_per_second(self, available_power_w: float) -> float:
        """Sustainable operation rate from ``available_power_w``.

        The paper's energy-neutral metric: the ratio of incoming power to
        per-operation energy (§5.1, Experiments).
        """
        if available_power_w < 0:
            raise ConfigurationError("power must be >= 0")
        return available_power_w / self.energy_per_operation_j

    def consume(
        self, ledger: "EnergyLedger", time_s: float, operations: float = 1.0
    ) -> float:
        """Record ``operations`` executions of this load on an energy ledger.

        Returns the total energy withdrawn (joules). The dataclass stays
        frozen — all mutable accounting lives in the ledger.
        """
        if operations < 0:
            raise ConfigurationError("operations must be >= 0")
        energy = operations * self.energy_per_operation_j
        if operations > 0:
            ledger.withdraw(time_s, energy, operations=operations)
        return energy


#: The LMT84 temperature read + UART transmit load (§5.1).
TEMPERATURE_LOAD = SensorLoad(
    name="temperature-read",
    energy_per_operation_j=TEMPERATURE_READ_ENERGY_J,
    data_bytes=2,
)
