"""The Wi-Fi charging hotspot (§8(a), Fig 16).

A USB charger built from a 2 dBi antenna and a harvester optimised for
higher input powers, placed 5–7 cm from the PoWiFi router. The paper
measures 2.3 mA average charging current into a Jawbone UP24, taking its
battery from empty to 41 % in 2.5 hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.harvester.harvester import Harvester, battery_recharging_harvester
from repro.rf.link import LinkBudget, Transmitter
from repro.units import dbm_to_watts, watts_to_dbm

#: The Jawbone UP24's effective battery capacity at the charging voltage.
#: Teardowns report a ~38 mAh cell; the effective capacity the charge
#: controller exposes between empty-indication and full is smaller, and the
#: paper's own numbers (2.3 mA average, 0 -> 41 % in 2.5 h) imply ~14 mAh.
JAWBONE_UP24_CAPACITY_MAH = 14.0

#: USB-side charging voltage after the charger's regulator.
CHARGE_VOLTAGE_V = 3.8


@dataclass(frozen=True)
class ChargeResult:
    """Outcome of a charging session."""

    average_current_ma: float
    duration_hours: float
    charge_fraction_gained: float


class UsbWiFiCharger:
    """The §8(a) USB charger: a high-power-optimised harvester.

    At 5–7 cm from a 30 dBm router the incident power is in the milliwatt
    range, so the charger's rectifier is biased well into its efficient
    region; the model reuses the battery-recharging harvester chain but
    without the compression penalty re-tuned for far-field powers.

    Parameters
    ----------
    harvester:
        Override the default chain.
    regulator_efficiency:
        The USB output regulator's efficiency.
    """

    def __init__(
        self,
        harvester: Optional[Harvester] = None,
        regulator_efficiency: float = 0.90,
    ) -> None:
        if not (0.0 < regulator_efficiency <= 1.0):
            raise ConfigurationError("regulator efficiency must be in (0, 1]")
        self.harvester = harvester or battery_recharging_harvester()
        self.regulator_efficiency = regulator_efficiency

    def charging_current_ma(
        self, incident_power_dbm: float, frequency_hz: float = 2.437e9
    ) -> float:
        """Average charge current into the device at ``incident_power_dbm``.

        Near-field placement (5–7 cm) puts the incident power near the
        rectifier's compression region; the high-power-optimised charger
        trades sensitivity for current, modelled by evaluating the chain at
        its bulk operating point without the far-field compression (the
        charger uses larger diodes per §8(a)'s "optimized for higher input
        power values").
        """
        p_in = dbm_to_watts(incident_power_dbm)
        delivered, va, voc = self.harvester._regime(p_in, frequency_hz, loaded=True)
        eta = self.harvester.rectifier.conversion_efficiency(va)
        # High-power build: no breakdown compression (stacked diodes).
        p_rect = delivered * 0.75 * eta
        v_op = max(0.5 * voc, 0.2)
        p_dc = self.harvester.dcdc.transfer(p_rect, v_op) * self.regulator_efficiency
        return p_dc / CHARGE_VOLTAGE_V * 1e3

    def charge_session(
        self,
        incident_power_dbm: float,
        duration_hours: float,
        capacity_mah: float = JAWBONE_UP24_CAPACITY_MAH,
        initial_fraction: float = 0.0,
    ) -> ChargeResult:
        """Simulate a charging session (the Fig 16 experiment)."""
        if duration_hours <= 0:
            raise ConfigurationError("duration must be > 0")
        if not (0.0 <= initial_fraction <= 1.0):
            raise ConfigurationError("initial charge fraction must be in [0, 1]")
        current = self.charging_current_ma(incident_power_dbm)
        gained_mah = current * duration_hours
        fraction = min(1.0 - initial_fraction, gained_mah / capacity_mah)
        return ChargeResult(
            average_current_ma=current,
            duration_hours=duration_hours,
            charge_fraction_gained=fraction,
        )


def hotspot_incident_power_dbm(distance_cm: float = 6.0) -> float:
    """Incident power at the charger a few centimetres from the router.

    Free-space at such short range from a 30 dBm / 6 dBi transmit chain,
    with near-field aperture coupling losses folded into a flat 9 dB.
    """
    if distance_cm <= 0:
        raise ConfigurationError("distance must be > 0")
    link = LinkBudget(Transmitter(tx_power_dbm=30.0))
    return link.received_power_dbm(distance_cm / 100.0) - 9.0
