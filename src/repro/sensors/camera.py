"""The Wi-Fi-powered camera (§5.2, Figs 12 and 13).

An OV7670 VGA sensor in grey-scale QCIF (176×144) mode behind an
MSP430FR5969: 10.4 mJ per optimised image capture, frames stored in FRAM.

Battery-free build: AVX BestCap 6.8 mF super-capacitor; the bq25570's buck
activates at 3.1 V and runs the camera down to 2.4 V. Battery-recharging
build: the 1 mAh / 3.0 V Li-Ion coin cell, evaluated energy-neutrally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.harvester.harvester import (
    Harvester,
    battery_free_camera_harvester,
    battery_recharging_harvester,
)
from repro.harvester.storage import LiIonCoinCell, SuperCapacitor
from repro.rf.link import LinkBudget
from repro.rf.materials import WallMaterial
from repro.units import dbm_to_watts, watts_to_dbm

#: Energy per optimised QCIF grey-scale capture (§5.2).
IMAGE_CAPTURE_ENERGY_J = 10.4e-3

#: QCIF grey-scale frame size the MCU stores to FRAM.
QCIF_FRAME_BYTES = 176 * 144

#: Li-Ion charge/discharge round trip applied to energy-neutral operation.
LIION_ROUND_TRIP = 0.85


@dataclass(frozen=True)
class CameraResult:
    """Outcome of evaluating the camera at one placement."""

    distance_feet: float
    received_power_dbm: float
    harvested_power_w: float
    inter_frame_time_s: float

    @property
    def operational(self) -> bool:
        """True when frames are ever captured."""
        return not math.isinf(self.inter_frame_time_s)

    @property
    def inter_frame_minutes(self) -> float:
        """Fig 12/13 y-axis units."""
        return self.inter_frame_time_s / 60.0


class WiFiCamera:
    """A camera powered by a PoWiFi router.

    Parameters
    ----------
    battery_recharging:
        Choose between the super-capacitor build and the Li-Ion build.
    harvester:
        Override the default harvester chain.
    capture_energy_j:
        Energy per image capture.
    """

    def __init__(
        self,
        battery_recharging: bool = False,
        harvester: Optional[Harvester] = None,
        capture_energy_j: float = IMAGE_CAPTURE_ENERGY_J,
    ) -> None:
        if capture_energy_j <= 0:
            raise ConfigurationError("capture energy must be > 0")
        self.battery_recharging = battery_recharging
        if harvester is None:
            harvester = (
                battery_recharging_harvester()
                if battery_recharging
                else battery_free_camera_harvester()
            )
        self.harvester = harvester
        self.capture_energy_j = capture_energy_j
        self.storage = LiIonCoinCell() if battery_recharging else SuperCapacitor()

    def harvested_power_w(
        self,
        received_power_dbm: float,
        occupancy: float = 1.0,
        frequency_hz: float = 2.437e9,
    ) -> float:
        """DC power flowing into the camera's storage element."""
        if occupancy < 0:
            raise ConfigurationError(f"occupancy must be >= 0, got {occupancy}")
        incident_w = dbm_to_watts(received_power_dbm) * occupancy
        if incident_w <= 0:
            return 0.0
        dc = self.harvester.dc_output_power_w(watts_to_dbm(incident_w), frequency_hz)
        if self.battery_recharging:
            dc *= LIION_ROUND_TRIP
        return dc

    def inter_frame_time_s(
        self,
        received_power_dbm: float,
        occupancy: float = 1.0,
        frequency_hz: float = 2.437e9,
    ) -> float:
        """Seconds between captures (∞ when the harvester cannot run)."""
        power = self.harvested_power_w(received_power_dbm, occupancy, frequency_hz)
        if power <= 0:
            return float("inf")
        return self.capture_energy_j / power

    def evaluate_at(
        self,
        link: LinkBudget,
        distance_feet: float,
        occupancy: float = 0.909,
        wall: Optional[WallMaterial] = None,
    ) -> CameraResult:
        """Evaluate at a distance, optionally behind a wall (Fig 13).

        The default occupancy is the §5.2 experiments' measured average
        (90.9 %).
        """
        rx_dbm = link.received_power_dbm_at_feet(distance_feet)
        if wall is not None:
            rx_dbm -= wall.attenuation_db
        power = self.harvested_power_w(rx_dbm, occupancy)
        return CameraResult(
            distance_feet=distance_feet,
            received_power_dbm=rx_dbm,
            harvested_power_w=power,
            inter_frame_time_s=(
                self.capture_energy_j / power if power > 0 else float("inf")
            ),
        )

    def range_feet(
        self,
        link: LinkBudget,
        occupancy: float = 0.909,
        max_feet: float = 60.0,
        step_feet: float = 0.5,
    ) -> float:
        """Largest distance at which frames are still captured."""
        best = 0.0
        steps = int(max_feet / step_feet)
        for i in range(1, steps + 1):
            feet = i * step_feet
            if self.evaluate_at(link, feet, occupancy).operational:
                best = feet
            else:
                break
        return best
