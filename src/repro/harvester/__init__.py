"""The PoWiFi RF harvester: matching network, rectifier, DC–DC, storage.

Circuit-level models of the §3.1 hardware. The guiding constraint is the
paper's co-design insight: the DC–DC converter's input loading sets the
rectifier's RF input impedance, which is what lets a single-stage LC match
(6.8 nH + 1.5 pF / 1.3 pF) hold return loss below −10 dB across the whole
72 MHz Wi-Fi band (Fig 9). Component values and anchor points come from the
datasheets the paper cites (SMS7630 diodes, Seiko S-882Z, TI bq25570) and
from the measured curves in Figs 10–12.
"""

from repro.harvester.diode import SMS7630, DiodeParameters
from repro.harvester.matching import LMatchingNetwork, RectifierImpedanceModel
from repro.harvester.rectifier import VoltageDoubler
from repro.harvester.dcdc import (
    SeikoSz882,
    TiBq25570,
    TiBq25570Standalone,
    DcDcConverter,
)
from repro.harvester.harvester import (
    Harvester,
    HarvesterOperatingPoint,
    battery_free_harvester,
    battery_free_camera_harvester,
    battery_recharging_harvester,
)
from repro.harvester.storage import (
    Capacitor,
    SuperCapacitor,
    NiMHBattery,
    LiIonCoinCell,
)
from repro.harvester.waveform import RectifierWaveformSimulator, VoltageSample
from repro.harvester.multiband import (
    BandInput,
    MultiBandHarvester,
    band_900_harvester,
)

__all__ = [
    "SMS7630",
    "DiodeParameters",
    "LMatchingNetwork",
    "RectifierImpedanceModel",
    "VoltageDoubler",
    "SeikoSz882",
    "TiBq25570",
    "TiBq25570Standalone",
    "DcDcConverter",
    "Harvester",
    "HarvesterOperatingPoint",
    "battery_free_harvester",
    "battery_free_camera_harvester",
    "battery_recharging_harvester",
    "Capacitor",
    "SuperCapacitor",
    "NiMHBattery",
    "LiIonCoinCell",
    "RectifierWaveformSimulator",
    "VoltageSample",
    "BandInput",
    "MultiBandHarvester",
    "band_900_harvester",
]
