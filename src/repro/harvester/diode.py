"""Schottky diode model (Skyworks SMS7630-061, the paper's rectifier diode).

The SMS7630 is chosen in §3.1 for its low threshold voltage, low junction
capacitance and minimal package parasitics in the 0201 SMT package. SPICE
parameters below follow the Skyworks datasheet [16].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CircuitError

#: Thermal voltage kT/q at 300 K, volts.
THERMAL_VOLTAGE = 0.02585


@dataclass(frozen=True)
class DiodeParameters:
    """Shockley + parasitic parameters of a Schottky diode.

    Attributes
    ----------
    saturation_current_a:
        ``Is`` — a large saturation current is what gives zero-bias Schottky
        detectors their low effective threshold.
    ideality:
        Emission coefficient ``n``.
    series_resistance_ohm:
        ``Rs`` — ohmic loss in series with the junction.
    junction_capacitance_f:
        ``Cj0`` — shunts RF around the junction at 2.4 GHz, a dominant
        high-frequency loss term.
    breakdown_voltage_v:
        Reverse breakdown; bounds the rectifier's maximum output swing.
    """

    saturation_current_a: float = 5e-6
    ideality: float = 1.05
    series_resistance_ohm: float = 20.0
    junction_capacitance_f: float = 0.14e-12
    breakdown_voltage_v: float = 2.0

    def __post_init__(self) -> None:
        if self.saturation_current_a <= 0:
            raise CircuitError("saturation current must be > 0")
        if self.ideality < 1.0:
            raise CircuitError("ideality must be >= 1")
        if self.series_resistance_ohm < 0:
            raise CircuitError("series resistance must be >= 0")

    # ----------------------------------------------------------- DC behaviour

    def current(self, voltage_v: float) -> float:
        """Shockley junction current at forward ``voltage_v`` (Rs ignored).

        >>> d = DiodeParameters()
        >>> d.current(0.0)
        0.0
        >>> d.current(0.1) > 100 * d.current(0.01)
        False
        """
        x = voltage_v / (self.ideality * THERMAL_VOLTAGE)
        # Clamp to avoid overflow for voltages far beyond physical operation.
        x = min(x, 60.0)
        return self.saturation_current_a * (math.exp(x) - 1.0)

    def forward_drop(self, current_a: float) -> float:
        """Junction + series voltage at forward ``current_a``.

        The inverse of :meth:`current`, plus the IR term — the per-diode
        loss the voltage-doubler analysis charges against the output.
        """
        if current_a < 0:
            raise CircuitError(f"forward current must be >= 0, got {current_a}")
        junction = (
            self.ideality
            * THERMAL_VOLTAGE
            * math.log1p(current_a / self.saturation_current_a)
        )
        return junction + current_a * self.series_resistance_ohm

    def zero_bias_resistance(self) -> float:
        """Small-signal junction resistance at zero bias, ``nVT/Is``.

        Sets the unloaded rectifier's RF input impedance scale — the reason
        an *unloaded* rectifier is badly matched and the DC–DC co-design
        matters (§3.1).

        >>> round(DiodeParameters().zero_bias_resistance())
        5428
        """
        return self.ideality * THERMAL_VOLTAGE / self.saturation_current_a


#: The paper's diode.
SMS7630 = DiodeParameters()
