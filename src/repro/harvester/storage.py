"""Energy-storage elements: capacitors, super-capacitors, and the two
rechargeable chemistries the paper charges over Wi-Fi (§5, Fig 2).

All elements share an energy-bookkeeping interface used by the sensor
duty-cycle simulations: deposit harvested joules, withdraw per-operation
joules, and decay with leakage between.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import CircuitError


class Capacitor:
    """An ideal-ish capacitor with parallel leakage resistance.

    Parameters
    ----------
    capacitance_f:
        Capacitance in farads.
    leakage_resistance_ohm:
        Parallel self-discharge path; ``inf`` disables leakage.
    initial_voltage_v:
        Starting voltage.
    """

    def __init__(
        self,
        capacitance_f: float,
        leakage_resistance_ohm: float = float("inf"),
        initial_voltage_v: float = 0.0,
    ) -> None:
        if capacitance_f <= 0:
            raise CircuitError(f"capacitance must be > 0, got {capacitance_f}")
        if leakage_resistance_ohm <= 0:
            raise CircuitError("leakage resistance must be > 0")
        if initial_voltage_v < 0:
            raise CircuitError("initial voltage must be >= 0")
        self.capacitance_f = capacitance_f
        self.leakage_resistance_ohm = leakage_resistance_ohm
        self.voltage_v = initial_voltage_v

    @property
    def energy_j(self) -> float:
        """Stored energy ``C V² / 2``."""
        return 0.5 * self.capacitance_f * self.voltage_v ** 2

    def set_energy(self, energy_j: float) -> None:
        """Set the stored energy (voltage follows)."""
        if energy_j < 0:
            raise CircuitError(f"energy must be >= 0, got {energy_j}")
        self.voltage_v = math.sqrt(2.0 * energy_j / self.capacitance_f)

    def deposit(self, energy_j: float) -> None:
        """Add harvested energy."""
        if energy_j < 0:
            raise CircuitError(f"cannot deposit negative energy {energy_j}")
        self.set_energy(self.energy_j + energy_j)

    def withdraw(self, energy_j: float) -> bool:
        """Remove energy for an operation; False if not enough is stored."""
        if energy_j < 0:
            raise CircuitError(f"cannot withdraw negative energy {energy_j}")
        if energy_j > self.energy_j:
            return False
        self.set_energy(self.energy_j - energy_j)
        return True

    def brownout(self) -> float:
        """Collapse the stored charge to zero; returns the energy shed (J).

        The fault hook behind ``world.harvester.brownout``: a §7 deployment
        sensor whose storage is drained faster than the channel refills it
        (e.g. a camera frame landing during a lean occupancy stretch).
        """
        shed = self.energy_j
        self.voltage_v = 0.0
        return shed

    def leak(self, dt_s: float) -> None:
        """Exponential self-discharge over ``dt_s`` seconds."""
        if dt_s < 0:
            raise CircuitError(f"time step must be >= 0, got {dt_s}")
        if math.isinf(self.leakage_resistance_ohm):
            return
        tau = self.leakage_resistance_ohm * self.capacitance_f
        self.voltage_v *= math.exp(-dt_s / tau)


class SuperCapacitor(Capacitor):
    """The AVX BestCap 6.8 mF ultra-low-leakage super-capacitor [4].

    Used as the battery-free camera's storage element: the bq25570's buck
    activates at 3.1 V and runs the camera down to 2.4 V (§5.2).
    """

    def __init__(
        self,
        capacitance_f: float = 6.8e-3,
        leakage_resistance_ohm: float = 2.0e6,
        initial_voltage_v: float = 0.0,
    ) -> None:
        super().__init__(capacitance_f, leakage_resistance_ohm, initial_voltage_v)

    #: Buck-converter activation threshold (§5.2).
    activate_voltage_v = 3.1
    #: Discharge floor during camera operation (§5.2).
    floor_voltage_v = 2.4

    @property
    def usable_energy_j(self) -> float:
        """Energy between the activation threshold and the floor."""
        c = self.capacitance_f
        return 0.5 * c * (self.activate_voltage_v ** 2 - self.floor_voltage_v ** 2)


@dataclass
class _BatteryBase:
    """Shared charge bookkeeping for the rechargeable chemistries."""

    nominal_voltage_v: float
    capacity_mah: float
    charge_efficiency: float
    self_discharge_per_day: float
    stored_mah: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise CircuitError("capacity must be > 0 mAh")
        if not (0.0 < self.charge_efficiency <= 1.0):
            raise CircuitError("charge efficiency must be in (0, 1]")
        if not (0.0 <= self.self_discharge_per_day < 1.0):
            raise CircuitError("self-discharge must be in [0, 1)")
        if not (0.0 <= self.stored_mah <= self.capacity_mah):
            raise CircuitError("initial charge outside capacity")

    @property
    def state_of_charge(self) -> float:
        """Fraction of capacity currently stored."""
        return self.stored_mah / self.capacity_mah

    @property
    def stored_energy_j(self) -> float:
        """Stored energy at the nominal voltage."""
        return self.stored_mah * 3.6 * self.nominal_voltage_v

    def charge_with_power(self, power_w: float, dt_s: float) -> None:
        """Integrate charging power over ``dt_s`` (with coulombic loss)."""
        if power_w < 0 or dt_s < 0:
            raise CircuitError("power and time must be >= 0")
        current_ma = power_w / self.nominal_voltage_v * 1e3
        gained = current_ma * self.charge_efficiency * dt_s / 3600.0
        self.stored_mah = min(self.capacity_mah, self.stored_mah + gained)

    def discharge_energy(self, energy_j: float) -> bool:
        """Withdraw ``energy_j``; False when the battery cannot supply it."""
        if energy_j < 0:
            raise CircuitError("energy must be >= 0")
        needed_mah = energy_j / (3.6 * self.nominal_voltage_v)
        if needed_mah > self.stored_mah:
            return False
        self.stored_mah -= needed_mah
        return True

    def self_discharge(self, dt_s: float) -> None:
        """Apply calendar self-discharge over ``dt_s``."""
        if dt_s < 0:
            raise CircuitError("time step must be >= 0")
        days = dt_s / 86400.0
        self.stored_mah *= (1.0 - self.self_discharge_per_day) ** days


class NiMHBattery(_BatteryBase):
    """Two AAA 750 mAh low-self-discharge NiMH cells at 2.4 V [12] (§5.1)."""

    def __init__(self, stored_mah: float = 0.0) -> None:
        super().__init__(
            nominal_voltage_v=2.4,
            capacity_mah=750.0,
            charge_efficiency=0.70,
            self_discharge_per_day=0.0005,
            stored_mah=stored_mah,
        )


class LiIonCoinCell(_BatteryBase):
    """The Seiko MS412FE 1 mAh lithium-ion coin cell at 3.0 V [9] (§5.2)."""

    def __init__(self, stored_mah: float = 0.0) -> None:
        super().__init__(
            nominal_voltage_v=3.0,
            capacity_mah=1.0,
            charge_efficiency=0.85,
            self_discharge_per_day=0.0002,
            stored_mah=stored_mah,
        )
