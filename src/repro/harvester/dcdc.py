"""DC–DC converter models: Seiko S-882Z and TI bq25570 (§3.1).

The battery-free harvester uses the Seiko SZ882 charge pump — best-in-class
cold start from 300 mV, boosting a storage capacitor to 2.4 V. The
battery-recharging harvester uses the TI bq25570 energy-harvesting chip: no
cold-start problem (the battery provides a rail), maximum-power-point
tracking with the paper's 200 mV reference setting, and a buck regulator for
the sensor load.

Efficiency curves are datasheet-style lookup tables (linear interpolation in
input voltage); charge pumps are markedly less efficient than inductive
boost converters, and both sag near their minimum input.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import CircuitError


def _interp(points: Sequence[Tuple[float, float]], x: float) -> float:
    """Piecewise-linear interpolation with flat extrapolation."""
    if not points:
        raise CircuitError("empty interpolation table")
    xs = [p[0] for p in points]
    if x <= xs[0]:
        return points[0][1]
    if x >= xs[-1]:
        return points[-1][1]
    i = bisect.bisect_right(xs, x)
    x0, y0 = points[i - 1]
    x1, y1 = points[i]
    return y0 + (y1 - y0) * (x - x0) / (x1 - x0)


class DcDcConverter(ABC):
    """Interface shared by both converter models."""

    @property
    @abstractmethod
    def cold_start_voltage_v(self) -> float:
        """Minimum rectifier voltage required to begin operating from 0 V
        stored energy (``inf`` when the converter cannot cold start)."""

    @property
    @abstractmethod
    def operating_input_voltage_fraction(self) -> float:
        """Where on the rectifier's load line the converter holds its input,
        as a fraction of the open-circuit voltage."""

    @property
    @abstractmethod
    def minimum_operating_voltage_v(self) -> float:
        """Input voltage floor below which the running converter stalls."""

    @abstractmethod
    def efficiency(self, input_voltage_v: float) -> float:
        """Transfer efficiency at ``input_voltage_v``."""

    def transfer(self, input_power_w: float, input_voltage_v: float) -> float:
        """Output power for ``input_power_w`` at ``input_voltage_v``."""
        if input_power_w < 0:
            raise CircuitError(f"input power must be >= 0, got {input_power_w}")
        if input_voltage_v < self.minimum_operating_voltage_v:
            return 0.0
        return input_power_w * self.efficiency(input_voltage_v)


@dataclass(frozen=True)
class SeikoSz882(DcDcConverter):
    """The S-882Z charge pump: 300 mV cold start, 2.4 V storage target [15].

    Once the storage capacitor reaches 2.4 V the internal switch connects it
    to the output, powering the microcontroller and sensors.
    """

    cold_start_v: float = 0.30
    storage_target_v: float = 2.4
    #: Charge-pump efficiency vs input voltage: poor near the cold-start
    #: floor, peaking mid-range, sagging when the pump's fixed multiplication
    #: ratio overshoots the storage voltage.
    efficiency_table: Tuple[Tuple[float, float], ...] = (
        (0.30, 0.27),
        (0.40, 0.45),
        (0.60, 0.54),
        (0.90, 0.50),
        (1.20, 0.39),
        (1.80, 0.27),
        (2.40, 0.18),
    )

    @property
    def cold_start_voltage_v(self) -> float:
        return self.cold_start_v

    @property
    def operating_input_voltage_fraction(self) -> float:
        # The charge pump loads the rectifier close to its maximum power
        # point but must never let the input sag below the cold-start floor.
        return 0.5

    @property
    def minimum_operating_voltage_v(self) -> float:
        return self.cold_start_v

    def efficiency(self, input_voltage_v: float) -> float:
        """Datasheet-style interpolated charge-pump efficiency."""
        if input_voltage_v < self.cold_start_v:
            return 0.0
        return _interp(self.efficiency_table, input_voltage_v)


@dataclass(frozen=True)
class TiBq25570(DcDcConverter):
    """The bq25570 boost charger + buck regulator [5].

    With a battery on ``Vbat`` there is no cold-start problem: the chip's
    boost converter harvests from inputs down to ~100 mV and its MPPT
    periodically samples the rectifier's open-circuit voltage, then holds
    the input at a programmed fraction of it. The paper programs the
    reference to 200 mV, which both tracks the maximum power point and
    stabilises the rectifier's RF input impedance across channels.
    """

    minimum_input_v: float = 0.10
    #: The paper's MPPT reference setting.
    mppt_reference_v: float = 0.20
    #: The MPPT fraction: bq25570's resistor-programmable Voc fraction.
    mppt_fraction: float = 0.5
    #: Boost-converter efficiency vs input voltage (datasheet Fig: ~60 % at
    #: 100 mV rising above 80 % past 0.5 V, sagging slightly at high Vin).
    efficiency_table: Tuple[Tuple[float, float], ...] = (
        (0.10, 0.38),
        (0.20, 0.53),
        (0.40, 0.63),
        (0.80, 0.68),
        (1.50, 0.66),
        (2.50, 0.61),
    )

    @property
    def cold_start_voltage_v(self) -> float:
        # Stand-alone cold start needs 600 mV; with a battery attached (the
        # paper's configuration) the converter is never cold.
        return float("inf")

    @property
    def operating_input_voltage_fraction(self) -> float:
        return self.mppt_fraction

    @property
    def minimum_operating_voltage_v(self) -> float:
        return self.minimum_input_v

    def efficiency(self, input_voltage_v: float) -> float:
        """Interpolated boost efficiency."""
        if input_voltage_v < self.minimum_input_v:
            return 0.0
        return _interp(self.efficiency_table, input_voltage_v)

    def mppt_operating_voltage(self, open_circuit_v: float) -> float:
        """Input voltage the MPPT regulates to, floored at the reference."""
        if open_circuit_v < 0:
            raise CircuitError("open-circuit voltage must be >= 0")
        return max(self.mppt_reference_v, self.mppt_fraction * open_circuit_v)


@dataclass(frozen=True)
class TiBq25570Standalone(TiBq25570):
    """The bq25570 without a battery, cold-starting from a super-capacitor.

    The battery-free *camera* (§5.2) uses this configuration: the chip's
    internal cold-start circuit needs ~330-400 mV at the input (datasheet VIN(CS) plus the supercap path drop)
    before the main boost takes over — slightly above the Seiko's 300 mV,
    which is why the camera's battery-free range (17 ft) is shorter than the
    temperature sensor's (20 ft).
    """

    cold_start_v: float = 0.38

    @property
    def cold_start_voltage_v(self) -> float:
        return self.cold_start_v
