"""The assembled multi-channel harvester (§3.1).

Chains the matching network, voltage-doubler rectifier and DC–DC converter
into the two prototypes the paper builds:

* **battery-free** — Seiko S-882Z charge pump, 300 mV cold start;
* **battery-recharging** — TI bq25570 with MPPT, battery-backed.

Two operating regimes matter and the model evaluates both, taking whichever
yields more power:

* **trickle** (near threshold): the DC–DC draws almost nothing, the
  rectifier is effectively unloaded — high input impedance, poor match, but
  maximal voltage doubling. This regime sets the *sensitivity*: the
  battery-free variant needs the unloaded open-circuit voltage to exceed the
  300 mV cold start; the battery-backed bq25570 only needs ~200 mV, which is
  exactly why the paper measures −19.3 dBm versus −17.8 dBm (§4.2(b)).
* **bulk** (well above threshold): the DC–DC loads the rectifier at its
  operating point, the input impedance drops into the 300–500 Ω range the
  LC network matches (< −10 dB across the band), and power transfer follows
  the load line.

High-power compression: beyond a few hundred microwatts the doubler output
compresses (diode breakdown clamps the swing and the excess is re-radiated),
reproducing the measured flattening of Fig 10 toward ~150 µW at +4 dBm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import CircuitError
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.harvester.dcdc import (
    DcDcConverter,
    SeikoSz882,
    TiBq25570,
    TiBq25570Standalone,
)
from repro.harvester.matching import (
    LMatchingNetwork,
    battery_free_matching,
    battery_recharging_matching,
)
from repro.harvester.rectifier import VoltageDoubler
from repro.units import dbm_to_watts, watts_to_dbm

#: RF parasitic power-loss factor at 2.4 GHz (junction-capacitance bypass,
#: substrate and capacitor losses) applied to the conversion path.
RF_PARASITIC_FACTOR = 0.75

#: Doubler output compression scale: the measured Fig 10 curves flatten as
#: the diodes approach breakdown. Delivered powers near this value halve the
#: marginal conversion.
COMPRESSION_POWER_W = 350e-6


@dataclass
class HarvesterOperatingPoint:
    """Diagnostic snapshot of the harvester at one input power."""

    incident_power_w: float
    regime: str  # "off", "trickle" or "bulk"
    delivered_power_w: float
    rf_amplitude_v: float
    open_circuit_v: float
    operating_voltage_v: float
    rectifier_output_w: float
    dc_output_w: float


class Harvester:
    """One harvester prototype: matching + doubler + DC–DC.

    Parameters
    ----------
    matching:
        The LC network with its rectifier impedance model.
    rectifier:
        The voltage-doubler model.
    dcdc:
        The DC–DC converter (Seiko or TI).
    name:
        Label used in reports.
    metrics:
        Telemetry destination; defaults to the process-wide registry, which
        is a no-op under ``--no-obs``.
    """

    def __init__(
        self,
        matching: LMatchingNetwork,
        rectifier: VoltageDoubler,
        dcdc: DcDcConverter,
        name: str = "harvester",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.matching = matching
        self.rectifier = rectifier
        self.dcdc = dcdc
        self.name = name
        registry = metrics if metrics is not None else obs_runtime.get_registry()
        self._m_regimes = {
            regime: registry.counter(
                "harvester.chain.evaluations", chain=name, regime=regime
            )
            for regime in ("off", "trickle", "bulk")
        }
        self._m_dc_out = registry.gauge("harvester.chain.dc_output_uw", chain=name)

    # --------------------------------------------------------------- internals

    def _threshold_voltage(self) -> float:
        """Voltage the unloaded rectifier must reach for the chain to run.

        The Seiko's 300 mV cold start for the battery-free build; the
        bq25570's MPPT reference (200 mV) for the battery-backed build.
        """
        cold = self.dcdc.cold_start_voltage_v
        if math.isinf(cold):
            if isinstance(self.dcdc, TiBq25570):
                return self.dcdc.mppt_reference_v
            return self.dcdc.minimum_operating_voltage_v
        return cold

    def _regime(
        self, incident_power_w: float, frequency_hz: float, loaded: bool
    ) -> Tuple[float, float, float]:
        """(delivered, amplitude, open-circuit voltage) for one regime."""
        df = self.matching.delivered_fraction(frequency_hz, loaded=loaded)
        delivered = incident_power_w * df
        r_in = (
            self.matching.rectifier.loaded_resistance_ohm
            if loaded
            else self.matching.rectifier.unloaded_resistance_ohm
        )
        va = self.rectifier.amplitude_at_rectifier(delivered, r_in)
        voc = self.rectifier.open_circuit_voltage(va)
        return delivered, va, voc

    def _rectifier_power(
        self, delivered_w: float, va: float, voc: float, v_op: float
    ) -> float:
        """Load-line power with parasitic and compression factors applied."""
        if voc <= v_op or voc <= 0:
            return 0.0
        shape = 4.0 * v_op * (voc - v_op) / (voc * voc)
        eta = self.rectifier.conversion_efficiency(va)
        compression = 1.0 / (1.0 + delivered_w / COMPRESSION_POWER_W)
        return delivered_w * RF_PARASITIC_FACTOR * eta * compression * shape

    # ------------------------------------------------------------- public API

    def operating_point(
        self, incident_power_dbm: float, frequency_hz: float = 2.437e9
    ) -> HarvesterOperatingPoint:
        """Full chain evaluation at one incident RF power."""
        p_in = dbm_to_watts(incident_power_dbm)
        v_need = self._threshold_voltage()

        # Trickle regime: unloaded rectifier. Once past the cold-start
        # threshold the converter regulates its input to its preferred
        # fraction of Voc (floored at its minimum operating voltage).
        d_t, va_t, voc_t = self._regime(p_in, frequency_hz, loaded=False)
        frac = self.dcdc.operating_input_voltage_fraction
        v_trickle = max(frac * voc_t, self.dcdc.minimum_operating_voltage_v)
        p_trickle = self._rectifier_power(d_t, va_t, voc_t, v_trickle)

        # Bulk regime: DC-DC loads the rectifier at its preferred fraction
        # of Voc, floored at the converter's minimum input.
        d_b, va_b, voc_b = self._regime(p_in, frequency_hz, loaded=True)
        v_bulk = max(frac * voc_b, self.dcdc.minimum_operating_voltage_v)
        p_bulk = self._rectifier_power(d_b, va_b, voc_b, v_bulk)

        # The chain runs only if the unloaded doubler can reach threshold
        # (cold start for Seiko; MPPT reference for the battery build).
        if voc_t < v_need:
            self._m_regimes["off"].inc()
            self._m_dc_out.set(0.0)
            return HarvesterOperatingPoint(
                incident_power_w=p_in,
                regime="off",
                delivered_power_w=0.0,
                rf_amplitude_v=va_t,
                open_circuit_v=voc_t,
                operating_voltage_v=0.0,
                rectifier_output_w=0.0,
                dc_output_w=0.0,
            )
        if p_bulk >= p_trickle:
            regime, delivered, va, voc, v_op, p_rect = (
                "bulk", d_b, va_b, voc_b, v_bulk, p_bulk,
            )
        else:
            regime, delivered, va, voc, v_op, p_rect = (
                "trickle", d_t, va_t, voc_t, v_trickle, p_trickle,
            )
        dc_out = self.dcdc.transfer(p_rect, v_op)
        self._m_regimes[regime].inc()
        self._m_dc_out.set(dc_out * 1e6)
        return HarvesterOperatingPoint(
            incident_power_w=p_in,
            regime=regime,
            delivered_power_w=delivered,
            rf_amplitude_v=va,
            open_circuit_v=voc,
            operating_voltage_v=v_op,
            rectifier_output_w=p_rect,
            dc_output_w=dc_out,
        )

    def rectifier_output_power_w(
        self, incident_power_dbm: float, frequency_hz: float = 2.437e9
    ) -> float:
        """Available power at the rectifier output — Fig 10's y-axis."""
        return self.operating_point(incident_power_dbm, frequency_hz).rectifier_output_w

    def dc_output_power_w(
        self, incident_power_dbm: float, frequency_hz: float = 2.437e9
    ) -> float:
        """Regulated DC power after the DC–DC converter (the sensor budget)."""
        return self.operating_point(incident_power_dbm, frequency_hz).dc_output_w

    def is_operational(
        self, incident_power_dbm: float, frequency_hz: float = 2.437e9
    ) -> bool:
        """True when the chain produces any DC output at this input power."""
        return self.operating_point(incident_power_dbm, frequency_hz).regime != "off"

    def sensitivity_dbm(
        self,
        frequency_hz: float = 2.437e9,
        floor_dbm: float = -30.0,
        ceiling_dbm: float = 0.0,
        resolution_db: float = 0.05,
    ) -> float:
        """Lowest incident power at which the harvester operates.

        The §4.2(b) metric: −17.8 dBm (battery-free), −19.3 dBm
        (battery-recharging) in the paper's measurements.
        """
        steps = int((ceiling_dbm - floor_dbm) / resolution_db)
        for i in range(steps + 1):
            dbm = floor_dbm + i * resolution_db
            if self.is_operational(dbm, frequency_hz):
                return dbm
        raise CircuitError(
            f"harvester never operates below {ceiling_dbm} dBm at "
            f"{frequency_hz / 1e9:.3f} GHz"
        )


def battery_free_harvester() -> Harvester:
    """The battery-free prototype: LC match + doubler + Seiko S-882Z."""
    return Harvester(
        matching=battery_free_matching(),
        rectifier=VoltageDoubler(knee_voltage_v=0.080, loss_voltage_v=0.10),
        dcdc=SeikoSz882(),
        name="battery-free",
    )


def battery_recharging_harvester() -> Harvester:
    """The battery-recharging prototype: retuned match + doubler + bq25570."""
    return Harvester(
        matching=battery_recharging_matching(),
        rectifier=VoltageDoubler(knee_voltage_v=0.080, loss_voltage_v=0.10),
        dcdc=TiBq25570(),
        name="battery-recharging",
    )


def battery_free_camera_harvester() -> Harvester:
    """The battery-free camera's chain: bq25570 cold-started from a supercap.

    §5.2: the camera's image sensor and MCU are powered by the bq25570's
    buck converter even in the battery-free build; the chip's ~330 mV
    cold start is what limits the camera to 17 feet versus the temperature
    sensor's 20 feet.
    """
    return Harvester(
        matching=battery_free_matching(),
        rectifier=VoltageDoubler(knee_voltage_v=0.080, loss_voltage_v=0.10),
        dcdc=TiBq25570Standalone(),
        name="battery-free-camera",
    )
