"""The voltage-doubler rectifier (§3.1, "Rectifier Design").

The rectifier "tracks twice the envelope of the incoming signal": D1 charges
the input capacitor on negative half-cycles, D2 conducts on positive ones, so
the open-circuit DC output approaches twice the RF amplitude minus two diode
drops. Under load the output follows a power-conserving load line whose peak
is set by the diode conversion efficiency.

Model summary
-------------
* RF amplitude at the rectifier: ``Va = sqrt(2 · P_delivered · R_in)`` where
  ``R_in`` is the (loading-dependent) rectifier input resistance and
  ``P_delivered`` is the incident power times the matching network's
  ``1 − |Γ|²``.
* Open-circuit voltage: ``Voc = 2 (Va − V_knee)`` with a soft knee from the
  diode exponential, clamped at the diode breakdown.
* Loaded: a power-conserving parabolic load line
  ``P(V) = η(Va) · P_delivered · 4 V (Voc − V) / Voc²`` whose peak at
  ``V = Voc/2`` carries the diode efficiency
  ``η(Va) = Va / (Va + 4 V_loss)`` — the fraction of each cycle's energy not
  burned in the two diode drops and the RF parasitics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CircuitError
from repro.harvester.diode import SMS7630, THERMAL_VOLTAGE, DiodeParameters


@dataclass(frozen=True)
class VoltageDoubler:
    """Envelope-model voltage doubler built from two Schottky diodes.

    Attributes
    ----------
    diode:
        The diode model (SMS7630 in the paper).
    knee_voltage_v:
        Soft turn-on scale for the open-circuit curve. Zero-bias Schottky
        detectors rectify below the classical 0.15–0.3 V drop, but the
        transition is gradual; this scale captures it.
    loss_voltage_v:
        Effective per-diode loss voltage charged against the output under
        load (junction drop at operating current plus the RF loss the
        junction capacitance causes at 2.4 GHz).
    """

    diode: DiodeParameters = SMS7630
    knee_voltage_v: float = 0.16
    loss_voltage_v: float = 0.35

    def __post_init__(self) -> None:
        if self.knee_voltage_v <= 0:
            raise CircuitError("knee voltage must be > 0")
        if self.loss_voltage_v <= 0:
            raise CircuitError("loss voltage must be > 0")

    # ------------------------------------------------------------- open circuit

    def amplitude_at_rectifier(
        self, delivered_power_w: float, input_resistance_ohm: float
    ) -> float:
        """RF voltage amplitude across the rectifier input.

        >>> d = VoltageDoubler()
        >>> round(d.amplitude_at_rectifier(16.6e-6, 1000.0), 3)
        0.182
        """
        if delivered_power_w < 0:
            raise CircuitError(f"power must be >= 0, got {delivered_power_w}")
        if input_resistance_ohm <= 0:
            raise CircuitError("input resistance must be > 0")
        return math.sqrt(2.0 * delivered_power_w * input_resistance_ohm)

    def open_circuit_voltage(self, amplitude_v: float) -> float:
        """DC output with no load: ``2 Va · tanh(Va / knee)``, clamped.

        The tanh knee reproduces the gradual turn-on of a zero-bias
        Schottky doubler: at amplitudes well below the knee the diodes
        barely rectify; well above it Voc → 2·Va minus nothing (the
        unloaded diode drop is negligible at µA leakage currents).
        """
        if amplitude_v < 0:
            raise CircuitError(f"amplitude must be >= 0, got {amplitude_v}")
        voc = 2.0 * amplitude_v * math.tanh(amplitude_v / self.knee_voltage_v)
        # Reverse breakdown bounds the doubler swing.
        return min(voc, 2.0 * self.diode.breakdown_voltage_v)

    # ------------------------------------------------------------------ loaded

    def conversion_efficiency(self, amplitude_v: float) -> float:
        """Peak RF→DC efficiency at RF amplitude ``amplitude_v``.

        The voltage-drop argument: of each half-cycle's ``Va``, an
        effective ``2·V_loss`` is dropped across the conducting diode and
        its 2.4 GHz parasitics, so the best-case efficiency is
        ``Va / (Va + 4·V_loss)`` for the doubler. Matches the measured
        single-digit-to-tens-of-percent efficiencies of 2.4 GHz rectifiers
        at microwatt inputs.
        """
        if amplitude_v <= 0:
            return 0.0
        return amplitude_v / (amplitude_v + 4.0 * self.loss_voltage_v)

    def output_power(
        self,
        delivered_power_w: float,
        input_resistance_ohm: float,
        load_voltage_v: float,
    ) -> float:
        """DC power into a load held at ``load_voltage_v``.

        Power-conserving load line: zero at V=0 and V=Voc, peaking at
        ``η·P_delivered`` when the load sits at Voc/2 (the maximum power
        point the bq25570's MPPT seeks).
        """
        if load_voltage_v < 0:
            raise CircuitError(f"load voltage must be >= 0, got {load_voltage_v}")
        va = self.amplitude_at_rectifier(delivered_power_w, input_resistance_ohm)
        voc = self.open_circuit_voltage(va)
        if voc <= 0 or load_voltage_v >= voc:
            return 0.0
        eta = self.conversion_efficiency(va)
        shape = 4.0 * load_voltage_v * (voc - load_voltage_v) / (voc * voc)
        return eta * delivered_power_w * shape

    def maximum_power_point(
        self, delivered_power_w: float, input_resistance_ohm: float
    ) -> float:
        """The load voltage maximising output power (Voc/2)."""
        va = self.amplitude_at_rectifier(delivered_power_w, input_resistance_ohm)
        return self.open_circuit_voltage(va) / 2.0
