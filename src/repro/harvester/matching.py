"""Impedance matching: the single-stage LC network of §3.1.

The network topology is: 50 Ω antenna → shunt capacitor → series inductor →
rectifier. The rectifier presents a parallel-RC input impedance whose
resistive part depends on how hard the DC–DC converter loads it — the
co-design lever of the paper. With the DC–DC holding the rectifier near its
operating point, R_in sits in the 300–500 Ω range and the paper's component
values (6.8 nH with 1.5 pF battery-free / 1.3 pF battery-charging) hold the
return loss below −10 dB across 2.401–2.473 GHz (Fig 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import CircuitError
from repro.harvester.diode import SMS7630, DiodeParameters

#: Reference (antenna) impedance, ohms.
ANTENNA_IMPEDANCE_OHM = 50.0

#: Matching inductor quality factor at 2.45 GHz (Coilcraft 0402HP [1]).
INDUCTOR_Q = 100.0


@dataclass(frozen=True)
class RectifierImpedanceModel:
    """The rectifier's RF input impedance as a parallel RC.

    Attributes
    ----------
    loaded_resistance_ohm:
        R_in with the DC–DC converter loading the rectifier at its
        operating point — what the VNA of Fig 9 measures.
    unloaded_resistance_ohm:
        R_in with the output essentially open (cold start): approaches the
        diode's zero-bias resistance scale, so it is much larger. The
        mismatch at this impedance is priced into the cold-start threshold.
    capacitance_f:
        Effective shunt capacitance: two junction capacitances plus pad and
        layout parasitics.
    """

    loaded_resistance_ohm: float = 360.0
    unloaded_resistance_ohm: float = 1500.0
    capacitance_f: float = 0.79e-12

    def __post_init__(self) -> None:
        if self.loaded_resistance_ohm <= 0 or self.unloaded_resistance_ohm <= 0:
            raise CircuitError("rectifier resistances must be > 0")
        if self.capacitance_f <= 0:
            raise CircuitError("rectifier capacitance must be > 0")

    def impedance(self, frequency_hz: float, loaded: bool = True) -> complex:
        """Complex input impedance at ``frequency_hz``."""
        r = self.loaded_resistance_ohm if loaded else self.unloaded_resistance_ohm
        w = 2.0 * math.pi * frequency_hz
        return r / (1.0 + 1j * w * r * self.capacitance_f)


class LMatchingNetwork:
    """Shunt-C / series-L match between a 50 Ω antenna and the rectifier.

    Parameters
    ----------
    inductance_h, capacitance_f:
        The LC values; the paper uses 6.8 nH and 1.5 pF (battery-free) or
        1.3 pF (battery-recharging).
    rectifier:
        The rectifier input-impedance model being matched.
    inductor_q:
        Finite inductor Q adds a small series loss resistance — §3.1 notes
        inductors are the primary loss source in LC matches.
    """

    def __init__(
        self,
        inductance_h: float = 6.8e-9,
        capacitance_f: float = 1.5e-12,
        rectifier: RectifierImpedanceModel = RectifierImpedanceModel(),
        inductor_q: float = INDUCTOR_Q,
    ) -> None:
        if inductance_h <= 0 or capacitance_f <= 0:
            raise CircuitError("matching L and C must be > 0")
        if inductor_q <= 0:
            raise CircuitError("inductor Q must be > 0")
        self.inductance_h = inductance_h
        self.capacitance_f = capacitance_f
        self.rectifier = rectifier
        self.inductor_q = inductor_q

    # ---------------------------------------------------------------- network

    def input_impedance(self, frequency_hz: float, loaded: bool = True) -> complex:
        """Impedance seen from the antenna port."""
        if frequency_hz <= 0:
            raise CircuitError(f"frequency must be > 0, got {frequency_hz}")
        w = 2.0 * math.pi * frequency_hz
        z_rect = self.rectifier.impedance(frequency_hz, loaded=loaded)
        x_l = w * self.inductance_h
        r_loss = x_l / self.inductor_q
        z_series = z_rect + complex(r_loss, x_l)
        y = 1j * w * self.capacitance_f + 1.0 / z_series
        return 1.0 / y

    def reflection_coefficient(
        self, frequency_hz: float, loaded: bool = True
    ) -> complex:
        """S11 at the antenna port."""
        z = self.input_impedance(frequency_hz, loaded=loaded)
        return (z - ANTENNA_IMPEDANCE_OHM) / (z + ANTENNA_IMPEDANCE_OHM)

    def return_loss_db(self, frequency_hz: float, loaded: bool = True) -> float:
        """Return loss 20·log10|Γ| in dB (negative is good, Fig 9's y-axis)."""
        gamma = abs(self.reflection_coefficient(frequency_hz, loaded=loaded))
        if gamma <= 0:
            return -math.inf
        return 20.0 * math.log10(gamma)

    def delivered_fraction(self, frequency_hz: float, loaded: bool = True) -> float:
        """Fraction of incident power delivered past the port: 1 − |Γ|²."""
        gamma = abs(self.reflection_coefficient(frequency_hz, loaded=loaded))
        return max(0.0, 1.0 - gamma * gamma)

    def sweep_return_loss(
        self,
        start_hz: float = 2.400e9,
        stop_hz: float = 2.480e9,
        points: int = 161,
        loaded: bool = True,
    ) -> List[Tuple[float, float]]:
        """(frequency, return loss dB) pairs — the Fig 9 VNA sweep."""
        if points < 2:
            raise CircuitError("sweep needs at least 2 points")
        step = (stop_hz - start_hz) / (points - 1)
        return [
            (start_hz + i * step, self.return_loss_db(start_hz + i * step, loaded))
            for i in range(points)
        ]

    def worst_return_loss_db(
        self, band: Tuple[float, float] = (2.401e9, 2.473e9), points: int = 145
    ) -> float:
        """Worst (largest) in-band return loss — the Fig 9 acceptance metric."""
        sweep = self.sweep_return_loss(band[0], band[1], points)
        return max(rl for _f, rl in sweep)


def battery_free_matching() -> LMatchingNetwork:
    """The battery-free harvester's network: 6.8 nH + 1.5 pF (§3.1)."""
    return LMatchingNetwork(
        inductance_h=6.8e-9,
        capacitance_f=1.5e-12,
        rectifier=RectifierImpedanceModel(
            loaded_resistance_ohm=360.0,
            unloaded_resistance_ohm=900.0,
            capacitance_f=0.79e-12,
        ),
    )


def battery_recharging_matching() -> LMatchingNetwork:
    """The battery-recharging network: 6.8 nH + 1.3 pF (§3.1).

    The bq25570's MPPT loading (200 mV reference) presents a slightly
    different operating-point resistance, hence the retuned capacitor.
    """
    return LMatchingNetwork(
        inductance_h=6.8e-9,
        capacitance_f=1.3e-12,
        rectifier=RectifierImpedanceModel(
            loaded_resistance_ohm=275.0,
            unloaded_resistance_ohm=750.0,
            capacitance_f=0.75e-12,
        ),
    )
