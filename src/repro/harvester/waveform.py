"""Time-domain rectifier-voltage simulation — the Fig 1 experiment.

Fig 1 is the paper's motivating observation: with normal router traffic
(10–40 % occupancy) the harvester's reservoir capacitor charges during each
Wi-Fi burst but leaks back down during the silent periods, never reaching
the DC–DC converter's 300 mV minimum. This module integrates the reservoir
voltage over an on/off transmission schedule:

* during a burst the rectifier charges the capacitor along its load line
  (a first-order approach toward the open-circuit voltage);
* during silence the capacitor discharges through the hardware leakage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.mac80211.medium import TransmissionRecord

from repro.errors import CircuitError
from repro.harvester.harvester import Harvester, RF_PARASITIC_FACTOR
from repro.harvester.storage import Capacitor
from repro.units import dbm_to_watts


@dataclass(frozen=True)
class VoltageSample:
    """One point of the simulated rectifier-output waveform."""

    time_s: float
    voltage_v: float
    transmitting: bool


@dataclass(frozen=True)
class Burst:
    """One on-air transmission interval."""

    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise CircuitError("burst duration must be >= 0")


class RectifierWaveformSimulator:
    """Integrates reservoir-capacitor voltage over a burst schedule.

    Parameters
    ----------
    harvester:
        Supplies the open-circuit voltage and charging conductance per the
        incident power.
    reservoir:
        The rectifier's output reservoir capacitor; leakage models both the
        capacitor's own leakage and the idle DC–DC input.
    incident_power_dbm:
        RF power at the harvester while a burst is on the air.
    """

    def __init__(
        self,
        harvester: Harvester,
        reservoir: Optional[Capacitor] = None,
        incident_power_dbm: float = -20.0,
        frequency_hz: float = 2.437e9,
    ) -> None:
        self.harvester = harvester
        self.reservoir = reservoir or Capacitor(
            capacitance_f=1.0e-6, leakage_resistance_ohm=1.0e6
        )
        self.incident_power_dbm = incident_power_dbm
        self.frequency_hz = frequency_hz
        # During a burst the unloaded doubler drives the reservoir toward
        # Voc through an effective source resistance from the load line.
        d, va, voc = harvester._regime(
            dbm_to_watts(incident_power_dbm), frequency_hz, loaded=False
        )
        self._voc = voc
        eta = harvester.rectifier.conversion_efficiency(va)
        peak_power = d * RF_PARASITIC_FACTOR * eta
        if voc > 0 and peak_power > 0:
            # Load line peaks at Voc/2 with P_peak; the equivalent Thevenin
            # source resistance is Voc^2 / (4 P_peak).
            self._source_resistance = voc * voc / (4.0 * peak_power)
        else:
            self._source_resistance = float("inf")

    @property
    def steady_state_voltage(self) -> float:
        """Voltage a continuous transmission would converge to."""
        if math.isinf(self._source_resistance):
            return 0.0
        r_leak = self.reservoir.leakage_resistance_ohm
        if math.isinf(r_leak):
            return self._voc
        return self._voc * r_leak / (r_leak + self._source_resistance)

    def _charge(self, dt_s: float) -> None:
        """First-order RC approach toward the (leak-divided) steady state."""
        if math.isinf(self._source_resistance):
            self.reservoir.leak(dt_s)
            return
        r_src = self._source_resistance
        r_leak = self.reservoir.leakage_resistance_ohm
        if math.isinf(r_leak):
            r_eff = r_src
            v_inf = self._voc
        else:
            r_eff = r_src * r_leak / (r_src + r_leak)
            v_inf = self.steady_state_voltage
        tau = r_eff * self.reservoir.capacitance_f
        v0 = self.reservoir.voltage_v
        self.reservoir.voltage_v = v_inf + (v0 - v_inf) * math.exp(-dt_s / tau)

    def run(
        self,
        bursts: Sequence[Burst],
        duration_s: float,
        sample_interval_s: float = 20e-6,
    ) -> List[VoltageSample]:
        """Simulate over ``duration_s`` seconds of the burst schedule.

        Bursts must be sorted and non-overlapping (as transmissions from a
        single capture are).
        """
        if duration_s <= 0:
            raise CircuitError("duration must be > 0")
        if sample_interval_s <= 0:
            raise CircuitError("sample interval must be > 0")
        samples: List[VoltageSample] = []
        ordered = sorted(bursts, key=lambda b: b.start_s)
        t = 0.0
        burst_index = 0
        while t < duration_s:
            # Is a burst active at time t?
            while (
                burst_index < len(ordered)
                and ordered[burst_index].start_s + ordered[burst_index].duration_s <= t
            ):
                burst_index += 1
            active = (
                burst_index < len(ordered)
                and ordered[burst_index].start_s <= t
            )
            step = sample_interval_s
            if active:
                self._charge(step)
            else:
                self.reservoir.leak(step)
            t += step
            samples.append(VoltageSample(t, self.reservoir.voltage_v, active))
        return samples

    def peak_voltage(self, samples: Iterable[VoltageSample]) -> float:
        """Convenience: the maximum voltage in a run."""
        return max(s.voltage_v for s in samples)


def bursts_from_records(records: Sequence["TransmissionRecord"]) -> List[Burst]:
    """Convert MAC-simulator transmission records into a burst schedule.

    Couples the discrete-event MAC directly into the analog waveform
    simulation: every busy period the medium records becomes an RF burst at
    the harvester (the harvester cannot decode frames, so collisions and
    retransmissions all count — §3.2's key observation).
    """
    return [Burst(start_s=r.start, duration_s=r.duration) for r in records]
