"""Multi-band harvesting — the §8(e) future direction, implemented.

The paper closes with: "Future designs would generalize our multi-channel
approach to operate across multiple ISM bands (e.g., 900 MHz, 2.4 GHz and
5 GHz)." This module builds that generalisation for the two bands with
commodity source hardware: a 900 MHz branch (UHF RFID readers, LoRa
gateways, 915 MHz ISM transmitters) alongside the paper's 2.4 GHz Wi-Fi
branch. Each branch is a full matching+doubler chain co-designed for its
band; a lossless-ish diplexer model splits the antenna signal, and the DC
outputs sum at the converter input (the standard RF-combining architecture
of multiband rectennas, cf. the paper's reference [43]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CircuitError, ConfigurationError
from repro.harvester.dcdc import DcDcConverter, SeikoSz882
from repro.harvester.harvester import Harvester
from repro.harvester.matching import (
    LMatchingNetwork,
    RectifierImpedanceModel,
    battery_free_matching,
)
from repro.harvester.rectifier import VoltageDoubler

#: The 900 MHz ISM band (US allocation).
BAND_900_START_HZ = 902e6
BAND_900_STOP_HZ = 928e6

#: The 2.4 GHz Wi-Fi band (the paper's 72 MHz span).
BAND_2400_START_HZ = 2.401e9
BAND_2400_STOP_HZ = 2.473e9

#: Diplexer insertion loss per branch (dB -> linear), typical SAW diplexer.
DIPLEXER_LOSS_FRACTION = 0.93


def band_900_matching() -> LMatchingNetwork:
    """An L-match co-designed for the 900 MHz branch.

    Numerically fitted the same way as the paper's 2.4 GHz values: with the
    DC-DC holding the rectifier at a 600 Ω operating point, 36 nH + 0.5 pF
    keeps return loss below -10 dB across 902-928 MHz.
    """
    return LMatchingNetwork(
        inductance_h=36e-9,
        capacitance_f=0.5e-12,
        rectifier=RectifierImpedanceModel(
            loaded_resistance_ohm=600.0,
            unloaded_resistance_ohm=1600.0,
            capacitance_f=0.79e-12,
        ),
    )


def band_900_harvester() -> Harvester:
    """The 900 MHz branch as a standalone chain (for per-band analysis)."""
    return Harvester(
        matching=band_900_matching(),
        rectifier=VoltageDoubler(knee_voltage_v=0.080, loss_voltage_v=0.10),
        dcdc=SeikoSz882(),
        name="band-900",
    )


@dataclass(frozen=True)
class BandInput:
    """Incident RF on one band."""

    frequency_hz: float
    power_dbm: float


class MultiBandHarvester:
    """Two harvesting branches behind a diplexer, DC-combined.

    Parameters
    ----------
    branches:
        Mapping band label -> (harvester chain, band start Hz, band stop Hz).
        Defaults to the paper's 2.4 GHz battery-free chain plus the 900 MHz
        branch above.
    dcdc:
        The shared converter the branches' DC outputs feed. Branch chains
        still model their own converters' loading for impedance purposes;
        the shared converter only sets thresholds for the combined budget.
    """

    def __init__(
        self,
        branches: Optional[Dict[str, Tuple[Harvester, float, float]]] = None,
    ) -> None:
        if branches is None:
            branches = {
                "2.4GHz": (
                    Harvester(
                        matching=battery_free_matching(),
                        rectifier=VoltageDoubler(
                            knee_voltage_v=0.080, loss_voltage_v=0.10
                        ),
                        dcdc=SeikoSz882(),
                        name="band-2400",
                    ),
                    BAND_2400_START_HZ,
                    BAND_2400_STOP_HZ,
                ),
                "900MHz": (band_900_harvester(), BAND_900_START_HZ, BAND_900_STOP_HZ),
            }
        if not branches:
            raise ConfigurationError("need at least one branch")
        self.branches = branches

    # ---------------------------------------------------------------- routing

    def branch_for(self, frequency_hz: float) -> Optional[str]:
        """Which branch's band contains ``frequency_hz`` (None if no one's)."""
        for label, (_chain, start, stop) in self.branches.items():
            if start <= frequency_hz <= stop:
                return label
        return None

    # --------------------------------------------------------------- harvest

    def dc_output_power_w(self, inputs: Sequence[BandInput]) -> float:
        """Combined DC output for simultaneous incident signals.

        Each input routes through the diplexer to its band's branch; inputs
        outside every band are absorbed by the diplexer's stopbands and
        contribute nothing. Per-branch DC outputs add.
        """
        import math

        from repro.units import dbm_to_watts, watts_to_dbm

        per_branch_watts: Dict[str, float] = {label: 0.0 for label in self.branches}
        per_branch_freq: Dict[str, float] = {}
        for rf in inputs:
            label = self.branch_for(rf.frequency_hz)
            if label is None:
                continue
            per_branch_watts[label] += (
                dbm_to_watts(rf.power_dbm) * DIPLEXER_LOSS_FRACTION
            )
            per_branch_freq[label] = rf.frequency_hz
        total = 0.0
        for label, watts in per_branch_watts.items():
            if watts <= 0.0:
                continue
            chain, _start, _stop = self.branches[label]
            total += chain.dc_output_power_w(
                watts_to_dbm(watts), per_branch_freq[label]
            )
        return total

    def sensitivity_dbm(self, frequency_hz: float) -> float:
        """Single-tone sensitivity at ``frequency_hz`` (diplexer included)."""
        label = self.branch_for(frequency_hz)
        if label is None:
            raise CircuitError(
                f"{frequency_hz / 1e9:.3f} GHz is outside every branch's band"
            )
        chain, _start, _stop = self.branches[label]
        import math

        raw = chain.sensitivity_dbm(frequency_hz)
        # The diplexer's insertion loss shifts the threshold up.
        return raw - 10.0 * math.log10(DIPLEXER_LOSS_FRACTION)
