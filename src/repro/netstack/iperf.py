"""iperf-style measurement clients.

§4.1 runs "five sequential copies of iperf, three seconds apart" and reports
throughput over 500 ms intervals. These helpers reproduce that methodology on
top of :class:`repro.netstack.udp.UdpFlow` and
:class:`repro.netstack.tcp.TcpFlow`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.mac80211.station import Station
from repro.netstack.tcp import TcpFlow, TcpParameters
from repro.netstack.udp import UdpFlow
from repro.sim.engine import Simulator


@dataclass
class IperfResult:
    """Outcome of one iperf campaign."""

    #: Mean goodput across all measurement intervals, Mb/s.
    mean_throughput_mbps: float
    #: Goodput per 500 ms interval, Mb/s.
    interval_throughputs_mbps: List[float] = field(default_factory=list)


class IperfUdpClient:
    """Runs sequential UDP iperf copies against a wireless hop.

    Parameters
    ----------
    sim, sender:
        Kernel and the AP-side station carrying the download traffic.
    target_rate_mbps:
        Offered UDP load per copy.
    copies, run_seconds, gap_seconds:
        Campaign shape; the paper uses 5 copies, 3 s apart.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: "Station",
        target_rate_mbps: float,
        copies: int = 5,
        run_seconds: float = 3.0,
        gap_seconds: float = 3.0,
        wifi_rate_mbps: float = 54.0,
    ) -> None:
        if copies <= 0:
            raise ConfigurationError(f"copies must be > 0, got {copies}")
        self.sim = sim
        self.sender = sender
        self.target_rate_mbps = target_rate_mbps
        self.copies = copies
        self.run_seconds = run_seconds
        self.gap_seconds = gap_seconds
        self.wifi_rate_mbps = wifi_rate_mbps
        self._flows: List[UdpFlow] = []
        self._windows: List[tuple] = []

    def start(self) -> None:
        """Schedule all copies."""
        t = 0.0
        for i in range(self.copies):
            self.sim.schedule(t, self._start_copy, i)
            t += self.run_seconds + self.gap_seconds

    def _start_copy(self, index: int) -> None:
        flow = UdpFlow(
            self.sim,
            self.sender,
            target_rate_mbps=self.target_rate_mbps,
            rate_mbps=self.wifi_rate_mbps,
            flow_label=f"iperf-udp-{index}",
        )
        self._flows.append(flow)
        start = self.sim.now
        self._windows.append((start, start + self.run_seconds))
        flow.start()
        self.sim.schedule(self.run_seconds, flow.stop)

    def result(self, interval_s: float = 0.5) -> IperfResult:
        """Aggregate the campaign into the paper's 500 ms interval metric."""
        if not self._flows:
            raise ConfigurationError("campaign has not run")
        intervals: List[float] = []
        for flow, (start, end) in zip(self._flows, self._windows):
            intervals.extend(flow.interval_throughputs_mbps(start, end, interval_s))
        mean = sum(intervals) / len(intervals) if intervals else 0.0
        return IperfResult(mean, intervals)


class IperfTcpClient:
    """Runs sequential TCP iperf copies (the §4.1(b) workload)."""

    def __init__(
        self,
        sim: Simulator,
        sender: "Station",
        receiver: "Station",
        copies: int = 5,
        run_seconds: float = 3.0,
        gap_seconds: float = 3.0,
        rate_provider: Optional[Callable[[], float]] = None,
        rate_reporter: Optional[Callable[[float, bool], None]] = None,
        tcp_params: Optional[TcpParameters] = None,
    ) -> None:
        if copies <= 0:
            raise ConfigurationError(f"copies must be > 0, got {copies}")
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.copies = copies
        self.run_seconds = run_seconds
        self.gap_seconds = gap_seconds
        self.rate_provider = rate_provider
        self.rate_reporter = rate_reporter
        self.tcp_params = tcp_params
        self._flows: List[TcpFlow] = []
        self._windows: List[tuple] = []

    def start(self) -> None:
        """Schedule all copies."""
        t = 0.0
        for i in range(self.copies):
            self.sim.schedule(t, self._start_copy, i)
            t += self.run_seconds + self.gap_seconds

    def _start_copy(self, index: int) -> None:
        flow = TcpFlow(
            self.sim,
            sender=self.sender,
            receiver=self.receiver,
            rate_provider=self.rate_provider,
            rate_reporter=self.rate_reporter,
            params=self.tcp_params,
            flow_label=f"iperf-tcp-{index}",
        )
        self._flows.append(flow)
        start = self.sim.now
        self._windows.append((start, start + self.run_seconds))
        flow.start()
        self.sim.schedule(self.run_seconds, flow.stop)

    def result(self, interval_s: float = 0.5) -> IperfResult:
        """Aggregate the campaign into 500 ms interval throughputs."""
        if not self._flows:
            raise ConfigurationError("campaign has not run")
        intervals: List[float] = []
        for flow, (start, end) in zip(self._flows, self._windows):
            intervals.extend(flow.interval_throughputs_mbps(start, end, interval_s))
        mean = sum(intervals) / len(intervals) if intervals else 0.0
        return IperfResult(mean, intervals)
