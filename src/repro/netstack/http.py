"""Page-load harness (the PhantomJS experiment of §4.1(c)).

A :class:`WebPage` is a set of objects (HTML, scripts, images) fetched over
up to six parallel TCP connections — the browser behaviour PhantomJS
exhibits. Page-load time is the interval from navigation start to the last
object's completion, including per-object server think time and connection
setup, with the downloads riding the simulated MAC so power traffic and
kernel overhead perturb them exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.mac80211.station import Station
from repro.netstack.tcp import TcpFlow, TcpParameters
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class WebObject:
    """One HTTP resource on a page."""

    size_bytes: int
    #: Server processing + origin RTT before the first byte, in seconds.
    server_latency_s: float = 0.04

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"object size must be > 0, got {self.size_bytes}")
        if self.server_latency_s < 0:
            raise ConfigurationError("server latency must be >= 0")


@dataclass(frozen=True)
class WebPage:
    """A front page: an ordered list of objects.

    The first object is the root HTML; the remainder become fetchable once
    it completes (a one-level dependency model, adequate because the paper's
    deltas come from the wireless hop, not from object scheduling).
    """

    name: str
    objects: List[WebObject]

    def __post_init__(self) -> None:
        if not self.objects:
            raise ConfigurationError(f"page {self.name!r} has no objects")

    @property
    def total_bytes(self) -> int:
        """Sum of all object sizes."""
        return sum(obj.size_bytes for obj in self.objects)


class PageLoad:
    """State machine for one load of one page."""

    def __init__(
        self,
        sim: Simulator,
        page: WebPage,
        ap: "Station",
        client: "Station",
        parallelism: int,
        tcp_params: TcpParameters,
        per_load_overhead_s: float,
        on_done: Callable[[float], None],
    ) -> None:
        self.sim = sim
        self.page = page
        self.ap = ap
        self.client = client
        self.parallelism = parallelism
        self.tcp_params = tcp_params
        self.per_load_overhead_s = per_load_overhead_s
        self.on_done = on_done
        self.start_time = sim.now
        self._queue: List[WebObject] = []
        self._active = 0
        self._completed = 0

    def start(self) -> None:
        """Fetch the root object, then fan out."""
        root, *rest = self.page.objects
        self._queue = list(rest)
        self._fetch(root, is_root=True)

    def _fetch(self, obj: WebObject, is_root: bool = False) -> None:
        self._active += 1
        # Server think time before bytes start flowing.
        self.sim.schedule(
            obj.server_latency_s + self.per_load_overhead_s,
            self._start_transfer,
            obj,
            is_root,
            name="http_server_latency",
        )

    def _start_transfer(self, obj: WebObject, is_root: bool) -> None:
        flow = TcpFlow(
            self.sim,
            sender=self.ap,
            receiver=self.client,
            params=self.tcp_params,
            total_bytes=obj.size_bytes,
            flow_label=f"http:{self.page.name}",
            on_finished=lambda _flow, t, root=is_root: self._object_done(root),
        )
        flow.start()

    def _object_done(self, was_root: bool) -> None:
        self._active -= 1
        self._completed += 1
        self._pump()
        if self._active == 0 and not self._queue:
            self.on_done(self.sim.now - self.start_time)

    def _pump(self) -> None:
        while self._queue and self._active < self.parallelism:
            self._fetch(self._queue.pop(0))


class PageLoadHarness:
    """Loads pages repeatedly and records page-load times.

    Parameters
    ----------
    sim, ap, client:
        Simulation kernel and the two stations of the wireless hop.
    parallelism:
        Concurrent connections per page (browsers use 6 per host).
    pause_between_loads_s:
        The paper pauses one second between loads with caches cleared.
    per_load_overhead_s:
        Extra fixed latency per object modelling OS/kernel overhead — this
        is the knob the NoQueue/PoWiFi per-packet-check overhead maps onto
        (§4.1(c) attributes the residual 101 ms delay to kernel checks).
    """

    def __init__(
        self,
        sim: Simulator,
        ap: "Station",
        client: "Station",
        parallelism: int = 6,
        pause_between_loads_s: float = 1.0,
        per_load_overhead_s: float = 0.0,
        tcp_params: Optional[TcpParameters] = None,
    ) -> None:
        self.sim = sim
        self.ap = ap
        self.client = client
        self.parallelism = parallelism
        self.pause_between_loads_s = pause_between_loads_s
        self.per_load_overhead_s = per_load_overhead_s
        self.tcp_params = tcp_params or TcpParameters()
        self.load_times: List[float] = []
        self._done_callback: Optional[Callable[[], None]] = None

    def run_loads(
        self,
        page: WebPage,
        count: int,
        on_all_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Schedule ``count`` sequential loads of ``page``."""
        if count <= 0:
            raise ConfigurationError(f"count must be > 0, got {count}")
        self._remaining = count
        self._page = page
        self._done_callback = on_all_done
        self._start_next()

    def _start_next(self) -> None:
        load = PageLoad(
            self.sim,
            self._page,
            self.ap,
            self.client,
            self.parallelism,
            self.tcp_params,
            self.per_load_overhead_s,
            self._load_finished,
        )
        load.start()

    def _load_finished(self, plt_seconds: float) -> None:
        self.load_times.append(plt_seconds)
        self._remaining -= 1
        if self._remaining > 0:
            self.sim.schedule(self.pause_between_loads_s, self._start_next)
        elif self._done_callback is not None:
            self._done_callback()

    @property
    def mean_plt(self) -> float:
        """Mean page-load time across completed loads, in seconds."""
        if not self.load_times:
            raise ConfigurationError("no loads have completed")
        return sum(self.load_times) / len(self.load_times)
