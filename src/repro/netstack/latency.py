"""Per-frame latency accounting.

§3.2's design goal is to "minimize the effect on the client delay and
throughput"; Figs 6a-6c measure the throughput half. This module measures
the delay half directly: it wraps a flow's frames and records the
enqueue-to-completion latency of each, giving per-scheme client-latency
distributions (used by the latency ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob


@dataclass
class LatencySample:
    """One frame's MAC-level sojourn."""

    enqueued_at: float
    completed_at: float
    success: bool

    @property
    def latency_s(self) -> float:
        """Queueing + contention + transmission time."""
        return self.completed_at - self.enqueued_at


class LatencyTracker:
    """Collects per-frame latency for frames it instruments.

    Usage: call :meth:`instrument` on each frame before enqueueing it; the
    tracker chains any existing completion callback.
    """

    def __init__(self) -> None:
        self.samples: List[LatencySample] = []

    def instrument(self, frame: FrameJob) -> FrameJob:
        """Attach latency recording to ``frame`` (returns the same frame)."""
        previous: Optional[Callable[[FrameJob, bool, float], None]] = frame.on_complete

        def on_complete(completed: FrameJob, success: bool, time: float) -> None:
            self.samples.append(
                LatencySample(
                    enqueued_at=completed.enqueued_at,
                    completed_at=time,
                    success=success,
                )
            )
            if previous is not None:
                previous(completed, success, time)

        frame.on_complete = on_complete
        return frame

    # --------------------------------------------------------------- metrics

    @property
    def count(self) -> int:
        """Number of completed, instrumented frames."""
        return len(self.samples)

    def latencies_s(self, successful_only: bool = True) -> List[float]:
        """All recorded latencies in seconds."""
        return [
            s.latency_s
            for s in self.samples
            if s.success or not successful_only
        ]

    def mean_latency_s(self) -> float:
        """Mean frame latency."""
        values = self.latencies_s()
        if not values:
            raise ConfigurationError("no latency samples recorded")
        return sum(values) / len(values)

    def percentile_s(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 100]."""
        from repro.analysis import percentile

        values = self.latencies_s()
        if not values:
            raise ConfigurationError("no latency samples recorded")
        return percentile(values, q)
