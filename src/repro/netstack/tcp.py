"""An event-driven TCP Reno model running over the simulated MAC.

Used for the iperf TCP experiments (§4.1(b)) and as the transport under the
page-load harness (§4.1(c)). The model captures the mechanisms that matter
for those results: window-limited sending, slow start and congestion
avoidance, multiplicative decrease on loss, delayed ACKs that themselves
contend for the medium, and queue tail-drop as the loss signal.

Deliberately out of scope: byte-exact sequence numbers and SACK — the paper's
results depend on airtime sharing, not on TCP minutiae.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob, FrameKind
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.mac80211.station import Station
from repro.sim.engine import Event, Simulator

#: Standard Ethernet-ish MSS carried in each data segment.
DEFAULT_MSS_BYTES = 1460

#: On-air overhead for a data segment (MAC + LLC + IP + TCP + FCS).
TCP_DATA_OVERHEAD_BYTES = 24 + 8 + 20 + 20 + 4

#: On-air size of a (delayed) TCP ACK frame.
TCP_ACK_ON_AIR_BYTES = 24 + 8 + 20 + 20 + 4


@dataclass
class TcpParameters:
    """Tunables for the Reno model."""

    mss_bytes: int = DEFAULT_MSS_BYTES
    initial_cwnd_segments: float = 2.0
    initial_ssthresh_segments: float = 64.0
    max_cwnd_segments: float = 256.0
    #: ACK every this many segments (delayed ACK).
    ack_every: int = 2
    #: Retransmission-timeout floor; fires when the pipe fully stalls.
    rto_seconds: float = 0.2

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0:
            raise ConfigurationError("MSS must be positive")
        if self.ack_every < 1:
            raise ConfigurationError("ack_every must be >= 1")


@dataclass
class AckSample:
    """Cumulative-acked-bytes observation, for throughput time series."""

    time: float
    acked_bytes: int


class TcpFlow:
    """One TCP Reno download from ``sender`` (AP) to ``receiver`` (client).

    Parameters
    ----------
    sim:
        Simulation kernel.
    sender:
        Station whose queue carries data segments (the AP side).
    receiver:
        Station whose queue carries the ACKs back over the air.
    rate_provider:
        Callable returning the Wi-Fi bit rate for the next data frame —
        hook for rate adaptation (the paper runs the default rate-control
        algorithm in the TCP/PLT experiments). It is invoked per segment and
        told about successes/failures via ``report(success)``.
    total_bytes:
        Finite transfer size, or None for an unbounded (iperf-style) flow.
    on_finished:
        Called once a finite transfer completes.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: "Station",
        receiver: "Station",
        rate_provider: Optional[Callable[[], float]] = None,
        rate_reporter: Optional[Callable[[float, bool], None]] = None,
        params: Optional[TcpParameters] = None,
        total_bytes: Optional[int] = None,
        flow_label: str = "tcp",
        on_finished: Optional[Callable[["TcpFlow", float], None]] = None,
    ) -> None:
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.params = params or TcpParameters()
        self.rate_provider = rate_provider or (lambda: 54.0)
        self.rate_reporter = rate_reporter or (lambda rate, ok: None)
        self.total_bytes = total_bytes
        self.flow_label = flow_label
        self.on_finished = on_finished

        self.cwnd = self.params.initial_cwnd_segments
        self.ssthresh = self.params.initial_ssthresh_segments
        self.in_flight = 0
        self.sent_segments = 0
        self.acked_segments = 0
        self.acked_bytes = 0
        self.lost_segments = 0
        self.finished = False
        self.finish_time: Optional[float] = None
        self.ack_samples: List[AckSample] = []
        self._pending_ack_segments = 0
        self._running = False
        self._rto_event: Optional[Event] = None
        self._filling = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Open the flow and start pushing segments."""
        if self._running:
            return
        self._running = True
        self._fill_window()
        self._arm_rto()

    def stop(self) -> None:
        """Abort the flow (used when an experiment window closes)."""
        self._running = False
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    # -------------------------------------------------------------- sending

    @property
    def _segments_total(self) -> Optional[int]:
        if self.total_bytes is None:
            return None
        mss = self.params.mss_bytes
        return (self.total_bytes + mss - 1) // mss

    def _more_to_send(self) -> bool:
        total = self._segments_total
        if total is None:
            return True
        return self.sent_segments < total

    def _fill_window(self) -> None:
        if not self._running or self.finished or self._filling:
            return
        self._filling = True
        try:
            while self.in_flight < int(self.cwnd) and self._more_to_send():
                rate = self.rate_provider()
                frame = FrameJob(
                    mac_bytes=self.params.mss_bytes + TCP_DATA_OVERHEAD_BYTES,
                    rate_mbps=rate,
                    kind=FrameKind.DATA,
                    broadcast=False,
                    flow=self.flow_label,
                    on_complete=self._on_data_complete,
                    meta={"rate": rate},
                )
                self.sent_segments += 1
                self.in_flight += 1
                if not self.sender.enqueue(frame):
                    # Tail drop: the completion callback already recorded the
                    # loss; in-queue completions or the RTO resume sending.
                    break
        finally:
            self._filling = False

    def _on_data_complete(self, frame: FrameJob, success: bool, time: float) -> None:
        self.rate_reporter(frame.meta.get("rate", 54.0), success)
        if success:
            self._pending_ack_segments += 1
            if self._pending_ack_segments >= self.params.ack_every:
                self._send_ack(self._pending_ack_segments)
                self._pending_ack_segments = 0
            return
        # Loss: fast-retransmit-style reaction (multiplicative decrease).
        self.in_flight = max(0, self.in_flight - 1)
        self.lost_segments += 1
        self.sent_segments -= 1  # the segment must be sent again
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self.ssthresh
        self._fill_window()

    def _send_ack(self, n_segments: int) -> None:
        ack = FrameJob(
            mac_bytes=TCP_ACK_ON_AIR_BYTES,
            rate_mbps=24.0,  # ACKs ride a robust mid-tier rate
            kind=FrameKind.TCP_ACK,
            broadcast=False,
            flow=f"{self.flow_label}-ack",
            on_complete=lambda f, ok, t, n=n_segments: self._on_ack_complete(n, ok, t),
        )
        self.receiver.enqueue(ack)

    def _on_ack_complete(self, n_segments: int, success: bool, time: float) -> None:
        if not success:
            # The cumulative ACK is lost; the next one covers these segments.
            self._pending_ack_segments += n_segments
            return
        self._handle_ack(n_segments, time)

    def _handle_ack(self, n_segments: int, time: float) -> None:
        if self.finished:
            return
        self.acked_segments += n_segments
        self.acked_bytes += n_segments * self.params.mss_bytes
        self.in_flight = max(0, self.in_flight - n_segments)
        for _ in range(n_segments):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        self.cwnd = min(self.cwnd, self.params.max_cwnd_segments)
        self.ack_samples.append(AckSample(time, self.acked_bytes))
        total = self._segments_total
        if total is not None and self.acked_segments >= total:
            self.finished = True
            self.finish_time = time
            self._running = False
            if self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None
            if self.on_finished is not None:
                self.on_finished(self, time)
            return
        self._fill_window()
        self._arm_rto()

    # ----------------------------------------------------------------- RTO

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        if not self._running:
            return
        self._rto_event = self.sim.schedule(
            self.params.rto_seconds, self._on_rto, name=f"{self.flow_label}_rto"
        )

    def _on_rto(self) -> None:
        self._rto_event = None
        if not self._running or self.finished:
            return
        if self.in_flight == 0 and self._pending_ack_segments == 0:
            # Full stall: classic timeout response, restart from slow start.
            self.ssthresh = max(2.0, self.cwnd / 2.0)
            self.cwnd = self.params.initial_cwnd_segments
            self._fill_window()
        elif self._pending_ack_segments > 0:
            # Delayed-ACK timer: flush the partial ACK.
            self._send_ack(self._pending_ack_segments)
            self._pending_ack_segments = 0
        self._arm_rto()

    # --------------------------------------------------------------- metrics

    def throughput_mbps(self, start: float, end: float) -> float:
        """Acked goodput over ``[start, end)`` in Mb/s."""
        if end <= start:
            raise ConfigurationError("window must have positive length")
        acked = 0
        for sample in self.ack_samples:
            if sample.time < start:
                continue
            if sample.time >= end:
                break
            acked = max(acked, sample.acked_bytes)
        base = 0
        for sample in self.ack_samples:
            if sample.time < start:
                base = sample.acked_bytes
            else:
                break
        return max(0, acked - base) * 8 / (end - start) / 1e6

    def interval_throughputs_mbps(
        self, start: float, end: float, window: float = 0.5
    ) -> List[float]:
        """Goodput per ``window``-second interval (paper: 500 ms bins)."""
        out = []
        t = start
        while t + window <= end + 1e-12:
            out.append(self.throughput_mbps(t, t + window))
            t += window
        return out
