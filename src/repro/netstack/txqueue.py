"""The per-interface device transmit queue.

This queue is the hinge of the whole PoWiFi design: ``IP_Power`` drops a
power datagram whenever the depth of the wireless interface's queue is at or
above a threshold (five frames, after the tuning in §3.2(i)), which is what
keeps client traffic unharmed while the channel stays full.

The queue supports two service disciplines:

* plain FIFO — a classic driver ring;
* class-based round robin — mac80211's software queues serve broadcast and
  per-station unicast queues in turn, which is why the paper's *NoQueue*
  scheme "roughly halves" client throughput rather than starving it (§4.1(a)).
  The classifier maps each frame to a service class; classes with backlog are
  served round-robin.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY

#: Depth-at-push histogram buckets (frames); the interesting edges sit
#: around the IP_Power thresholds (1-5) and the txqueuelen default (1000).
_DEPTH_BUCKETS = (0, 1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1000)

Classifier = Callable[[FrameJob], str]


def single_class(_frame: FrameJob) -> str:
    """Default classifier: everything shares one FIFO."""
    return "all"


def power_vs_client(frame: FrameJob) -> str:
    """Classifier mirroring mac80211: broadcast power traffic is a distinct
    software queue from unicast client traffic."""
    return "power" if frame.is_power else "client"


class DeviceQueue:
    """A bounded frame queue with optional class-based round-robin service.

    Parameters
    ----------
    capacity:
        Bound *per class*; ``push`` beyond it tail-drops. Per-class bounding
        mirrors mac80211's per-software-queue limits: a backlogged broadcast
        (power) queue cannot starve the unicast client queue of buffer
        space, only of airtime.
    classifier:
        Maps frames to class names. With the default single class the queue
        degenerates to a bounded FIFO.
    metrics:
        Destination registry for depth/drop telemetry; ``None`` (the
        default) wires the shared no-op registry, so bare queues cost
        nothing. Stations pass their simulator's registry.
    name:
        Label for this queue's metrics (typically the owning station name).
    """

    def __init__(
        self,
        capacity: int = 1000,
        classifier: Classifier = single_class,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "queue",
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"queue capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self.classifier = classifier
        self.name = name
        self._classes: "OrderedDict[str, Deque[FrameJob]]" = OrderedDict()
        self._size = 0
        self._next_index = 0
        #: Queued frames with a non-zero attempt count (MAC retries put back
        #: via push_front). While zero — the overwhelmingly common state —
        #: the head frame's attempt count is known to be 0 without a peek,
        #: which keeps the backoff-draw hot path off the round-robin scan.
        self._retry_pending = 0
        self.total_enqueued = 0
        self.total_tail_dropped = 0
        self.total_forced_dropped = 0
        self.forced_overflow = False
        self.high_watermark = 0
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._m_enqueued = registry.counter("net.txqueue.enqueued", queue=name)
        self._m_dropped = registry.counter("net.txqueue.tail_dropped", queue=name)
        self._m_depth = registry.gauge("net.txqueue.depth", queue=name)
        self._m_high_watermark = registry.gauge(
            "net.txqueue.high_watermark", queue=name
        )
        self._m_depth_on_push = registry.histogram(
            "net.txqueue.depth_on_push", buckets=_DEPTH_BUCKETS, queue=name
        )
        self._m_forced_dropped = registry.counter(
            "net.txqueue.forced_dropped", queue=name
        )
        #: Optional observer invoked (with no arguments) after any change to
        #: queue contents or admission state — push success, pop, push_front,
        #: clear, forced-overflow begin/end. The injector's idle-tick
        #: fast-forward subscribes to know when a dormancy precondition
        #: (depth, class fill, overflow window) may have shifted. Must not
        #: mutate the queue re-entrantly.
        self.on_change: Optional[Callable[[], None]] = None

    # ---------------------------------------------------------------- mutation

    def push(self, frame: FrameJob) -> bool:
        """Append ``frame`` to its class; returns False (tail drop) when its
        class is full."""
        if self.forced_overflow:
            # Injected overflow window (world.txqueue.overflow): every push
            # tail-drops exactly as a saturated driver ring would, which is
            # the condition the IP_Power qdepth gate exists to absorb.
            self.total_tail_dropped += 1
            self.total_forced_dropped += 1
            self._m_dropped.inc()
            self._m_forced_dropped.inc()
            return False
        classes = self._classes
        name = self.classifier(frame)
        queue = classes.get(name)
        if queue is None:
            queue = classes[name] = deque()
        if len(queue) >= self.capacity:
            self.total_tail_dropped += 1
            self._m_dropped.inc()
            return False
        queue.append(frame)
        size = self._size + 1
        self._size = size
        # getattr, not attribute access: the queue is payload-agnostic by
        # contract (fault tests push opaque sentinels), so a payload without
        # an attempt counter simply never marks a retry pending.
        if getattr(frame, "attempts", 0):
            self._retry_pending += 1
        self.total_enqueued += 1
        self._m_enqueued.inc()
        self._m_depth.set(size)
        self._m_depth_on_push.observe(size)
        if size > self.high_watermark:
            self.high_watermark = size
            self._m_high_watermark.set(size)
        if self.on_change is not None:
            self.on_change()
        return True

    def begin_forced_overflow(self) -> None:
        """Open an injected overflow window: every ``push`` tail-drops."""
        self.forced_overflow = True
        if self.on_change is not None:
            self.on_change()

    def end_forced_overflow(self) -> None:
        """Close the injected overflow window (normal admission resumes)."""
        self.forced_overflow = False
        if self.on_change is not None:
            self.on_change()

    def push_front(self, frame: FrameJob) -> None:
        """Return a frame to the head of its class (MAC retry path).

        Always succeeds: a frame being retried was already admitted, so
        re-insertion must not be droppable.
        """
        classes = self._classes
        name = self.classifier(frame)
        queue = classes.get(name)
        if queue is None:
            queue = classes[name] = deque()
        queue.appendleft(frame)
        self._size += 1
        if getattr(frame, "attempts", 0):
            self._retry_pending += 1
        self._m_depth.set(self._size)
        if self.on_change is not None:
            self.on_change()

    def _serving_class(self) -> Optional[str]:
        """The class the next ``pop`` serves (round robin over backlogged)."""
        classes = self._classes
        if len(classes) == 1:
            for name, q in classes.items():
                return name if q else None
        backlogged = [name for name, q in classes.items() if q]
        if not backlogged:
            return None
        return backlogged[self._next_index % len(backlogged)]

    def peek(self) -> Optional[FrameJob]:
        """The frame the next ``pop`` would return, or None when empty."""
        name = self._serving_class()
        if name is None:
            return None
        return self._classes[name][0]

    def pop(self) -> Optional[FrameJob]:
        """Remove and return the next frame per the service discipline."""
        name = self._serving_class()
        if name is None:
            return None
        frame = self._classes[name].popleft()
        self._size -= 1
        if getattr(frame, "attempts", 0):
            self._retry_pending -= 1
        self._next_index += 1
        self._m_depth.set(self._size)
        if self.on_change is not None:
            self.on_change()
        return frame

    def clear(self) -> None:
        """Drop everything (interface reset)."""
        self._classes.clear()
        self._size = 0
        self._next_index = 0
        self._retry_pending = 0
        self._m_depth.set(0)
        if self.on_change is not None:
            self.on_change()

    # ----------------------------------------------------------------- queries

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[FrameJob]:
        for q in self._classes.values():
            yield from q

    @property
    def depth(self) -> int:
        """Current number of queued frames (the IP_Power signal)."""
        return self._size

    def depth_of(self, class_name: str) -> int:
        """Backlog of one service class."""
        q = self._classes.get(class_name)
        return len(q) if q else 0

    @property
    def class_names(self) -> List[str]:
        """Names of classes that have ever held a frame."""
        return list(self._classes.keys())
