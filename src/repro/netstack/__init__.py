"""IP and transport-layer substrate.

Models the pieces of the Linux network stack the PoWiFi kernel patch touches
(the per-interface device transmit queue whose depth gates power packets) and
the traffic sources the evaluation uses: iperf-style UDP and TCP flows and a
PhantomJS-style page-load harness.
"""

from repro.netstack.txqueue import DeviceQueue
from repro.netstack.udp import UdpFlow
from repro.netstack.tcp import TcpFlow, TcpParameters
from repro.netstack.iperf import IperfUdpClient, IperfResult
from repro.netstack.http import PageLoadHarness, WebPage, WebObject
from repro.netstack.latency import LatencyTracker, LatencySample

__all__ = [
    "DeviceQueue",
    "UdpFlow",
    "TcpFlow",
    "TcpParameters",
    "IperfUdpClient",
    "IperfResult",
    "PageLoadHarness",
    "WebPage",
    "WebObject",
    "LatencyTracker",
    "LatencySample",
]
