"""Constant-bit-rate UDP flows (the iperf UDP workload of §4.1(a)).

A :class:`UdpFlow` generates datagrams at a target rate into a transmitting
station's device queue and counts what the receiver actually gets — exactly
what ``iperf -u`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob, FrameKind
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.mac80211.station import Station
from repro.sim.engine import Event, Simulator

#: iperf's default UDP payload (bytes).
DEFAULT_UDP_PAYLOAD_BYTES = 1470

#: MAC+LLC+IP+UDP overhead added to the application payload on the air.
UDP_ON_AIR_OVERHEAD_BYTES = 24 + 8 + 20 + 8 + 4  # dot11 + LLC + IP + UDP + FCS


@dataclass
class DeliveryRecord:
    """One datagram that reached the receiver."""

    time: float
    payload_bytes: int


class UdpFlow:
    """A CBR UDP flow from a station to a (modelled) receiver.

    Parameters
    ----------
    sim:
        Simulation kernel.
    sender:
        Station whose device queue carries the datagrams (the AP for
        download traffic).
    target_rate_mbps:
        Application-layer offered load.
    rate_mbps:
        Wi-Fi bit rate for the data frames (the §4.1(a) client pins 54 Mb/s).
    payload_bytes:
        UDP payload per datagram.
    flow_label:
        Statistic-grouping label.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: "Station",
        target_rate_mbps: float,
        rate_mbps: float = 54.0,
        payload_bytes: int = DEFAULT_UDP_PAYLOAD_BYTES,
        flow_label: str = "udp",
    ) -> None:
        if target_rate_mbps <= 0:
            raise ConfigurationError(
                f"target rate must be > 0 Mb/s, got {target_rate_mbps}"
            )
        if payload_bytes <= 0:
            raise ConfigurationError(f"payload must be > 0 bytes, got {payload_bytes}")
        self.sim = sim
        self.sender = sender
        self.target_rate_mbps = target_rate_mbps
        self.rate_mbps = rate_mbps
        self.payload_bytes = payload_bytes
        self.flow_label = flow_label
        self.deliveries: List[DeliveryRecord] = []
        self.offered = 0
        self.delivered = 0
        self.lost = 0
        self._timer: Optional[Event] = None
        self._running = False
        #: Seconds between datagrams at the target rate.
        self.interval = (8 * payload_bytes) / (target_rate_mbps * 1e6)

    def start(self) -> None:
        """Begin generating datagrams."""
        if self._running:
            return
        self._running = True
        self._timer = self.sim.schedule(0.0, self._emit, name=f"{self.flow_label}_emit")

    def stop(self) -> None:
        """Stop the generator (in-queue datagrams still drain)."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _emit(self) -> None:
        if not self._running:
            return
        frame = FrameJob(
            mac_bytes=self.payload_bytes + UDP_ON_AIR_OVERHEAD_BYTES,
            rate_mbps=self.rate_mbps,
            kind=FrameKind.DATA,
            broadcast=False,
            flow=self.flow_label,
            on_complete=self._on_complete,
        )
        self.offered += 1
        self.sender.enqueue(frame)
        self._timer = self.sim.schedule(
            self.interval, self._emit, name=f"{self.flow_label}_emit"
        )

    def _on_complete(self, frame: FrameJob, success: bool, time: float) -> None:
        if success:
            self.delivered += 1
            self.deliveries.append(DeliveryRecord(time, self.payload_bytes))
        else:
            self.lost += 1

    # --------------------------------------------------------------- metrics

    def delivered_mbps(self, start: float, end: float) -> float:
        """Goodput over the window ``[start, end)`` in Mb/s."""
        if end <= start:
            raise ConfigurationError("window must have positive length")
        payload_bits = sum(
            8 * d.payload_bytes for d in self.deliveries if start <= d.time < end
        )
        return payload_bits / (end - start) / 1e6

    def interval_throughputs_mbps(
        self, start: float, end: float, window: float = 0.5
    ) -> List[float]:
        """Goodput per ``window``-second interval (the paper uses 500 ms)."""
        out = []
        t = start
        while t + window <= end + 1e-12:
            out.append(self.delivered_mbps(t, t + window))
            t += window
        return out
