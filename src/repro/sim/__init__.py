"""Discrete-event simulation engine.

The engine is deliberately small: an event heap with deterministic
tie-breaking, named pseudo-random streams for reproducibility, and a trace
recorder. Everything in the MAC, network-stack and harvester simulators is
built on these primitives.
"""

from repro.sim.engine import Event, Simulator, SimulatorStats
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "Simulator",
    "SimulatorStats",
    "RandomStreams",
    "TraceRecord",
    "TraceRecorder",
]
