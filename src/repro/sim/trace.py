"""Lightweight structured tracing for simulation runs.

The MAC layer, the router and the harvester all emit :class:`TraceRecord`
entries into a shared :class:`TraceRecorder`. Experiment drivers filter the
records afterwards (e.g. "all frames transmitted by the router on channel 6")
— the same post-processing role tcpdump/tshark played in the paper.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    TextIO,
    Union,
)


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    source:
        Name of the component that emitted the record.
    kind:
        Short machine-readable event type, e.g. ``"tx_start"``.
    fields:
        Free-form payload describing the occurrence.
    """

    time: float
    source: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into :attr:`fields`."""
        return self.fields.get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form (the JSONL trace schema)."""
        return {
            "time": self.time,
            "source": self.source,
            "kind": self.kind,
            "fields": dict(self.fields),
        }


class TraceRecorder:
    """Collects :class:`TraceRecord` entries during a run.

    Recording can be limited to certain kinds to keep long runs cheap. A
    per-kind index is maintained at emit time so ``filter(kind=...)`` never
    scans the whole log.
    """

    def __init__(self, enabled_kinds: Optional[List[str]] = None) -> None:
        self._records: List[TraceRecord] = []
        self._by_kind: Dict[str, List[TraceRecord]] = {}
        self._enabled_kinds = set(enabled_kinds) if enabled_kinds is not None else None

    def wants(self, kind: str) -> bool:
        """Whether :meth:`emit` would keep a record of this kind.

        Hot paths check this before building an expensive fields payload.
        """
        return self._enabled_kinds is None or kind in self._enabled_kinds

    def emit(
        self,
        time: float,
        source: str,
        kind: str,
        fields: Optional[Mapping[str, Any]] = None,
        **extra: Any,
    ) -> None:
        """Record one occurrence (no-op if ``kind`` is filtered out).

        ``fields`` (a mapping) and keyword extras are merged into the
        record's payload. The payload is copied at emit time, so a caller
        mutating its dict afterwards cannot retroactively corrupt the
        record.
        """
        if not self.wants(kind):
            return
        payload: Dict[str, Any] = dict(fields) if fields else {}
        if extra:
            payload.update(extra)
        record = TraceRecord(time, source, kind, payload)
        self._records.append(record)
        self._by_kind.setdefault(kind, []).append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """All records in emission order."""
        return list(self._records)

    def kinds(self) -> List[str]:
        """Kinds recorded so far, in first-seen order."""
        return list(self._by_kind.keys())

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all provided criteria.

        When ``kind`` is given the per-kind index is consulted, so the cost
        is proportional to that kind's record count, not the whole log.
        Emission order is preserved either way (the index lists append in
        the same order as the main log).
        """
        if kind is not None:
            candidates: List[TraceRecord] = self._by_kind.get(kind, [])
        else:
            candidates = self._records
        out = []
        for record in candidates:
            if source is not None and record.source != source:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def to_jsonl(self, target: Union[str, TextIO]) -> int:
        """Write one JSON line per record; returns the line count."""
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                for record in self._records:
                    handle.write(json.dumps(record.to_dict()) + "\n")
        else:
            for record in self._records:
                target.write(json.dumps(record.to_dict()) + "\n")
        return len(self._records)

    def clear(self) -> None:
        """Drop all recorded entries."""
        self._records.clear()
        self._by_kind.clear()
