"""Lightweight structured tracing for simulation runs.

The MAC layer, the router and the harvester all emit :class:`TraceRecord`
entries into a shared :class:`TraceRecorder`. Experiment drivers filter the
records afterwards (e.g. "all frames transmitted by the router on channel 6")
— the same post-processing role tcpdump/tshark played in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    source:
        Name of the component that emitted the record.
    kind:
        Short machine-readable event type, e.g. ``"tx_start"``.
    fields:
        Free-form payload describing the occurrence.
    """

    time: float
    source: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor into :attr:`fields`."""
        return self.fields.get(key, default)


class TraceRecorder:
    """Collects :class:`TraceRecord` entries during a run.

    Recording can be limited to certain kinds to keep long runs cheap.
    """

    def __init__(self, enabled_kinds: Optional[List[str]] = None) -> None:
        self._records: List[TraceRecord] = []
        self._enabled_kinds = set(enabled_kinds) if enabled_kinds is not None else None

    def emit(self, time: float, source: str, kind: str, **fields: Any) -> None:
        """Record one occurrence (no-op if ``kind`` is filtered out)."""
        if self._enabled_kinds is not None and kind not in self._enabled_kinds:
            return
        self._records.append(TraceRecord(time, source, kind, fields))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[TraceRecord]:
        """All records in emission order."""
        return list(self._records)

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching all provided criteria."""
        out = []
        for record in self._records:
            if kind is not None and record.kind != kind:
                continue
            if source is not None and record.source != source:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def clear(self) -> None:
        """Drop all recorded entries."""
        self._records.clear()
