"""Core discrete-event simulator.

A :class:`Simulator` owns a priority queue of timestamped events. Components
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the main loop dispatches
them in time order. Ties are broken by insertion order so runs are fully
deterministic for a given seed.

The engine is synchronous and single-threaded; "processes" in the MAC layer
are small state machines that re-schedule themselves.

Heap layout: the queue is an array of ``(time, seq, event)`` tuples, so
``heapq`` sift comparisons resolve on the float/int pair at C speed without
ever calling back into Python (:class:`Event` keeps ``__lt__`` only for
explicit comparisons). Cancellation is tombstone-based — ``Event.cancel``
flips a flag and the dispatcher discards the entry when it surfaces — and
:meth:`Simulator.schedule_at` compacts the array when tombstones outnumber
live entries, so cancel-heavy workloads stay O(live) in memory.

Periodic sources (beacons, injector ticks) use
:meth:`Simulator.schedule_periodic`: the engine re-arms the *same*
:class:`Event` object after each callback return, exactly as if the callback
had rescheduled itself as its last statement (same sequence-number order,
same times via the ``t += period`` float recurrence), but without a fresh
allocation per tick.

Self-profiling: when observability is on (the default), the dispatcher
tallies per-callback-name dispatch counts and cumulative wall-clock time,
the heap high-water mark, and cancelled events into :attr:`Simulator.stats`,
so the hot callbacks of a long ``fig14``/``table1`` run are visible without
an external profiler. Dispatch counts are exact; wall-clock is
stride-sampled (every :data:`TIMING_STRIDE`-th occurrence of each callback
name is timed with ``perf_counter`` and scaled), which keeps the profiled
dispatch loop within a few percent of the unobserved one. Profiling never
touches simulation time or any random stream, so observed and unobserved
runs produce identical results.

Each event kind is additionally attributed to a *component* — the class (or
module) that owns its callback, resolved once on the kind's first dispatch —
and to the sim-time window it was active in (first/last dispatch time).
Counts, components and sim-time bounds are exactly reproducible at equal
seed; only the sampled wall-clock varies between hosts. The attribution
profiler (:mod:`repro.obs.profile`) turns these into hot-spot tables and
collapsed-stack flame output.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs import runtime as obs_runtime

#: Wall-clock sampling stride (power of two): every Nth dispatch of each
#: callback name is timed and the elapsed time scaled by N. Counts stay
#: exact; only the timing is sampled.
TIMING_STRIDE = 4
_TIMING_MASK = TIMING_STRIDE - 1

#: Tombstone-compaction floor: the heap is rebuilt (dropping cancelled
#: entries) only when at least this many tombstones are present *and* they
#: outnumber live entries, amortising the O(n) rebuild against the cancels
#: that earned it.
COMPACT_MIN_TOMBSTONES = 64


def _component_of(callback: Callable[..., Any]) -> str:
    """Dotted owner of a callback, resolved once per event kind.

    Bound methods attribute to their class (``repro.core.injector.PowerInjector``),
    plain functions to their defining module (plus the enclosing scope for
    nested functions), ``functools.partial`` unwraps to its target. The
    result is a pure function of the code object, so attribution is
    identical across runs and hosts.
    """
    func = getattr(callback, "func", None)  # functools.partial
    if func is not None and callable(func):
        return _component_of(func)
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        cls = owner if isinstance(owner, type) else type(owner)
        module = getattr(cls, "__module__", "") or "builtins"
        return f"{module}.{cls.__qualname__}"
    module = getattr(callback, "__module__", None) or "unknown"
    qualname = (getattr(callback, "__qualname__", "") or "").replace(
        ".<locals>", ""
    )
    if "." in qualname:
        return f"{module}.{qualname.rsplit('.', 1)[0]}"
    return module


class SimulatorStats:
    """Self-profiling counters for one :class:`Simulator`.

    Attributes
    ----------
    dispatched:
        Total events dispatched.
    cancelled:
        Total events cancelled via :meth:`Event.cancel`.
    heap_high_watermark:
        Largest number of heap entries ever pending at once (cancelled
        entries included — they occupy heap slots until popped).
    heap_tombstones:
        Cancelled entries currently occupying heap slots (drives the
        compaction heuristic; bookkeeping only).
    compactions:
        Times the heap was rebuilt to shed tombstones.
    callback_counts:
        Dispatch count per event name (exact).
    callback_wall_s:
        Cumulative host wall-clock seconds per event name, estimated by
        timing every :data:`TIMING_STRIDE`-th occurrence (only populated
        when profiling is on).
    callback_components:
        Owning component per event name (class or module of the callback),
        resolved on the kind's first dispatch.
    callback_sim_bounds:
        ``name -> [first, last]`` simulation times the kind dispatched at.
    """

    __slots__ = (
        "profiling",
        "dispatched",
        "cancelled",
        "heap_high_watermark",
        "heap_tombstones",
        "compactions",
        "_profile",
        "_components",
    )

    def __init__(self, profiling: bool = True) -> None:
        self.profiling = profiling
        self.dispatched = 0
        self.cancelled = 0
        self.heap_high_watermark = 0
        self.heap_tombstones = 0
        self.compactions = 0
        # name -> [count, wall_s, sim_first_s, sim_last_s]; one dict lookup
        # per dispatch keeps the profiled run loop tight.
        self._profile: Dict[str, List[float]] = {}
        self._components: Dict[str, str] = {}

    @property
    def callback_counts(self) -> Dict[str, int]:
        """Dispatch count per event name."""
        return {name: int(entry[0]) for name, entry in self._profile.items()}

    @property
    def callback_wall_s(self) -> Dict[str, float]:
        """Cumulative wall-clock seconds per event name."""
        return {name: entry[1] for name, entry in self._profile.items()}

    @property
    def callback_components(self) -> Dict[str, str]:
        """Owning component per event name."""
        return dict(self._components)

    @property
    def callback_sim_bounds(self) -> Dict[str, List[float]]:
        """``[first, last]`` dispatch sim-times per event name."""
        return {
            name: [entry[2], entry[3]] for name, entry in self._profile.items()
        }

    @property
    def total_wall_s(self) -> float:
        """Wall-clock seconds spent inside callbacks."""
        return sum(entry[1] for entry in self._profile.values())

    def hot_callbacks(self, limit: int = 10) -> List[Tuple[str, int, float]]:
        """``(name, count, wall_s)`` rows, costliest first."""
        rows = [
            (name, int(entry[0]), entry[1])
            for name, entry in self._profile.items()
        ]
        rows.sort(key=lambda row: row[2], reverse=True)
        return rows[:limit]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe export of the whole profile."""
        return {
            "type": "engine",
            "dispatched": self.dispatched,
            "cancelled": self.cancelled,
            "heap_high_watermark": self.heap_high_watermark,
            "callback_counts": self.callback_counts,
            "callback_wall_s": self.callback_wall_s,
            "callback_components": self.callback_components,
            "callback_sim_bounds": self.callback_sim_bounds,
        }

    def report(self, limit: int = 10) -> str:
        """Human-readable profile summary."""
        lines = [
            f"events: {self.dispatched} dispatched, {self.cancelled} cancelled, "
            f"heap high-water {self.heap_high_watermark}",
        ]
        for name, count, wall in self.hot_callbacks(limit):
            lines.append(f"  {name:<24} {count:>9} calls  {wall:9.4f} s")
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line profile digest (span labels, progress lines).

        >>> stats = SimulatorStats()
        >>> stats.dispatched, stats.cancelled = 120, 3
        >>> stats.heap_high_watermark = 17
        >>> stats.summary()
        'dispatched=120 cancelled=3 heap_high=17 callbacks=0 wall=0.0000s'
        """
        return (
            f"dispatched={self.dispatched} cancelled={self.cancelled} "
            f"heap_high={self.heap_high_watermark} "
            f"callbacks={len(self._profile)} wall={self.total_wall_s:.4f}s"
        )


class Event:
    """A scheduled callback.

    Events are returned by the ``schedule*`` methods and may be cancelled.
    Cancellation is lazy: the heap entry stays in place as a tombstone and
    is skipped when popped, which keeps cancellation O(1); the simulator
    compacts the heap when tombstones pile up.

    Periodic events (:meth:`Simulator.schedule_periodic`) carry a non-None
    ``period`` and are re-armed by the dispatcher after each callback return
    — the same object cycles through the heap for the life of the source.
    """

    __slots__ = (
        "time", "seq", "callback", "args", "cancelled", "name", "stats",
        "period", "heaped",
    )

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        name: str = "",
        stats: Optional[SimulatorStats] = None,
        period: Optional[float] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.name = name or getattr(callback, "__name__", "event")
        self.stats = stats
        self.period = period
        self.heaped = False

    def cancel(self) -> None:
        """Mark the event so the dispatcher skips it."""
        if not self.cancelled:
            self.cancelled = True
            stats = self.stats
            if stats is not None:
                stats.cancelled += 1
                if self.heaped:
                    stats.heap_tombstones += 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event {self.name!r} t={self.time:.9f} {state}>"


class Simulator:
    """Single-threaded discrete-event simulation kernel.

    Parameters
    ----------
    start_time:
        Initial simulation clock value in seconds.
    observe:
        Whether this simulator profiles itself and exposes the process-wide
        metrics registry/trace recorder/span recorder to components (via
        :attr:`metrics`/:attr:`trace`/:attr:`spans`). ``None`` (default) follows the
        global observability mode (see :mod:`repro.obs.runtime`); False is
        the per-simulator ``--no-obs`` escape hatch.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> fired
    ['hello']
    >>> sim.now
    1.5
    """

    def __init__(self, start_time: float = 0.0, observe: Optional[bool] = None) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._dispatched = 0
        self._run_end_hooks: List[Callable[[], None]] = []
        if observe is None:
            observe = obs_runtime.enabled()
        self.observe = bool(observe)
        self.stats = SimulatorStats(profiling=self.observe)
        if self.observe:
            self.metrics = obs_runtime.get_registry()
            self.trace = obs_runtime.get_trace()
            self.spans = obs_runtime.get_spans()
            obs_runtime.track_simulator(self.stats)
        else:
            self.metrics = obs_runtime.null_registry()
            self.spans = obs_runtime.null_spans()
            from repro.sim.trace import TraceRecorder

            self.trace = TraceRecorder(enabled_kinds=[])
        #: Optional hook invoked with each :class:`Event` just before its
        #: callback runs (tracing/debugging; must not mutate the event).
        self.on_event: Optional[Callable[[Event], None]] = None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-dispatched, not-cancelled events."""
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)

    @property
    def dispatched_events(self) -> int:
        """Total number of events dispatched so far."""
        return self._dispatched

    def add_run_end_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook()`` to run every time :meth:`run` returns cleanly.

        Hooks fire after the clock has settled on its final value (including
        the advance-to-``until`` on queue drain) and may not schedule past
        state: they exist so lazily-settled components (the injector's
        idle-tick fast-forward, see :mod:`repro.core.injector`) can
        materialise their bulk state before the driver reads it.
        """
        self._run_end_hooks.append(hook)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Body duplicates :meth:`schedule_at` rather than forwarding to it:
        this is the hottest scheduling entry point (one call per DCF round
        and per transmission completion), and the extra call frame is
        measurable at millions of events.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay!r}")
        time = self._now + delay
        stats = self.stats
        event = Event(time, next(self._seq), callback, args, name=name, stats=stats)
        event.heaped = True
        heap = self._heap
        if (
            stats.heap_tombstones >= COMPACT_MIN_TOMBSTONES
            and stats.heap_tombstones * 2 >= len(heap)
        ):
            self._compact()
            heap = self._heap
        heapq.heappush(heap, (time, event.seq, event))
        if len(heap) > stats.heap_high_watermark:
            stats.heap_high_watermark = len(heap)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time!r} < now={self._now!r}"
            )
        stats = self.stats
        event = Event(time, next(self._seq), callback, args, name=name, stats=stats)
        event.heaped = True
        heap = self._heap
        if (
            stats.heap_tombstones >= COMPACT_MIN_TOMBSTONES
            and stats.heap_tombstones * 2 >= len(heap)
        ):
            self._compact()
            heap = self._heap
        heapq.heappush(heap, (time, event.seq, event))
        if len(heap) > stats.heap_high_watermark:
            stats.heap_high_watermark = len(heap)
        return event

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
        first_delay: float = 0.0,
    ) -> Event:
        """Schedule ``callback(*args)`` every ``period`` seconds.

        The first firing happens ``first_delay`` seconds from now; after each
        callback return the dispatcher re-arms the same :class:`Event` at
        ``time + period`` (the exact float recurrence a self-rescheduling
        callback would produce), unless the event was cancelled. Mutating
        :attr:`Event.period` retunes the cadence from the next re-arm on.
        """
        if period <= 0:
            raise SimulationError(f"period must be > 0, got {period!r}")
        event = self.schedule(first_delay, callback, *args, name=name)
        event.period = float(period)
        return event

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (amortised O(n))."""
        live = [entry for entry in self._heap if not entry[2].cancelled]
        for entry in self._heap:
            ev = entry[2]
            if ev.cancelled:
                ev.heaped = False
        heapq.heapify(live)
        self._heap = live
        self.stats.heap_tombstones = 0
        self.stats.compactions += 1

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time. Events at exactly
            ``until`` are dispatched. When the queue drains earlier, the
            clock is advanced to ``until`` so periodic samplers observe a
            well-defined end time.
        max_events:
            Safety valve against runaway self-rescheduling loops.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        dispatched_this_run = 0
        stats = self.stats
        profiling = stats.profiling
        profile = stats._profile
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        seq_counter = self._seq
        clock = perf_counter
        # Hoisted per-dispatch conditionals: comparing against +inf is the
        # same branch as a bound but drops the per-event None checks.
        limit = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        run_span = self.spans.begin("sim.engine.run", sim_start_s=self._now)
        status = "ok"
        try:
            while heap:
                time, _, event = heap[0]
                if event.cancelled:
                    pop(heap)
                    event.heaped = False
                    stats.heap_tombstones -= 1
                    continue
                if time > limit:
                    break
                pop(heap)
                event.heaped = False
                self._now = time
                if self.on_event is not None:
                    self.on_event(event)
                if profiling:
                    entry = profile.get(event.name)
                    if entry is None:
                        entry = profile[event.name] = [
                            0, 0.0, time, time,
                        ]
                        stats._components[event.name] = _component_of(
                            event.callback
                        )
                    if entry[0] & _TIMING_MASK:
                        event.callback(*event.args)
                    else:
                        started = clock()
                        event.callback(*event.args)
                        entry[1] += (clock() - started) * TIMING_STRIDE
                    entry[0] += 1
                    entry[3] = time
                else:
                    event.callback(*event.args)
                period = event.period
                if period is not None and not event.cancelled:
                    # Re-arm in place: same order a callback rescheduling
                    # itself as its last statement would produce.
                    time += period
                    event.time = time
                    event.seq = next(seq_counter)
                    event.heaped = True
                    heap = self._heap  # the callback may have compacted
                    push(heap, (time, event.seq, event))
                    if len(heap) > stats.heap_high_watermark:
                        stats.heap_high_watermark = len(heap)
                else:
                    heap = self._heap
                dispatched_this_run += 1
                if dispatched_this_run >= budget:
                    break
        except BaseException:
            status = "error"
            raise
        finally:
            self._running = False
            self._dispatched += dispatched_this_run
            stats.dispatched += dispatched_this_run
            if until is not None and self._now < until and status == "ok":
                self._now = until
            if status == "ok":
                for hook in self._run_end_hooks:
                    hook()
            self.spans.end(
                run_span,
                sim_end_s=self._now,
                status=status,
                dispatched=dispatched_this_run,
            )

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(max_events=max_events)
        if self.pending_events:
            raise SimulationError(
                f"event budget of {max_events} exhausted with "
                f"{self.pending_events} events still pending"
            )
