"""Core discrete-event simulator.

A :class:`Simulator` owns a priority queue of timestamped events. Components
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the main loop dispatches
them in time order. Ties are broken by insertion order so runs are fully
deterministic for a given seed.

The engine is synchronous and single-threaded; "processes" in the MAC layer
are small state machines that re-schedule themselves.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class Event:
    """A scheduled callback.

    Events are returned by the ``schedule*`` methods and may be cancelled.
    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped, which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "name")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...],
        name: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.name = name or getattr(callback, "__name__", "event")

    def cancel(self) -> None:
        """Mark the event so the dispatcher skips it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event {self.name!r} t={self.time:.9f} {state}>"


class Simulator:
    """Single-threaded discrete-event simulation kernel.

    Parameters
    ----------
    start_time:
        Initial simulation clock value in seconds.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "hello")
    >>> sim.run()
    >>> fired
    ['hello']
    >>> sim.now
    1.5
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._dispatched = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-dispatched, not-cancelled events."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    @property
    def dispatched_events(self) -> int:
        """Total number of events dispatched so far."""
        return self._dispatched

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay!r}")
        return self.schedule_at(self._now + delay, callback, *args, name=name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time!r} < now={self._now!r}"
            )
        event = Event(time, next(self._seq), callback, args, name=name)
        heapq.heappush(self._heap, event)
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Dispatch events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time. Events at exactly
            ``until`` are dispatched. When the queue drains earlier, the
            clock is advanced to ``until`` so periodic samplers observe a
            well-defined end time.
        max_events:
            Safety valve against runaway self-rescheduling loops.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        dispatched_this_run = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.callback(*event.args)
                self._dispatched += 1
                dispatched_this_run += 1
                if max_events is not None and dispatched_this_run >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(max_events=max_events)
        if self.pending_events:
            raise SimulationError(
                f"event budget of {max_events} exhausted with "
                f"{self.pending_events} events still pending"
            )
