"""Named deterministic random streams.

Every stochastic component (backoff draws, traffic arrivals, channel fading,
home activity) pulls from its own named stream so that adding a new component
never perturbs the draws seen by existing ones — runs stay comparable across
library versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent, reproducibly seeded ``random.Random`` streams.

    Parameters
    ----------
    seed:
        Master seed. Two :class:`RandomStreams` built with the same seed
        hand out identical streams for identical names.

    Examples
    --------
    >>> a = RandomStreams(7).stream("backoff").random()
    >>> b = RandomStreams(7).stream("backoff").random()
    >>> a == b
    True
    >>> RandomStreams(7).stream("arrivals").random() == a
    False
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was built with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, label: str) -> "RandomStreams":
        """Derive a child factory, e.g. one per simulated home."""
        return RandomStreams(self._derive_seed(f"fork:{label}"))
