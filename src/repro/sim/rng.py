"""Named deterministic random streams.

Every stochastic component (backoff draws, traffic arrivals, channel fading,
home activity) pulls from its own named stream so that adding a new component
never perturbs the draws seen by existing ones — runs stay comparable across
library versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent, reproducibly seeded ``random.Random`` streams.

    Parameters
    ----------
    seed:
        Master seed. Two :class:`RandomStreams` built with the same seed
        hand out identical streams for identical names.

    Examples
    --------
    >>> a = RandomStreams(7).stream("backoff").random()
    >>> b = RandomStreams(7).stream("backoff").random()
    >>> a == b
    True
    >>> RandomStreams(7).stream("arrivals").random() == a
    False
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory was built with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def _derive_seed(self, name: str) -> int:
        return derive_seed(self._seed, name)

    def fork(self, label: str) -> "RandomStreams":
        """Derive a child factory, e.g. one per simulated home."""
        return RandomStreams(self._derive_seed(f"fork:{label}"))


def derive_seed(seed: int, label: str) -> int:
    """Derive a stable sub-seed from a master seed and a label.

    The SHA-256 construction behind every named stream and
    :meth:`RandomStreams.fork`, exposed for orchestration code (the
    parallel runner's sweep decompositions) that needs per-label seeds
    reproducible across processes and library versions without threading a
    :class:`RandomStreams` instance through.

    >>> derive_seed(0, "fig5") == derive_seed(0, "fig5")
    True
    >>> derive_seed(0, "fig5") == derive_seed(1, "fig5")
    False
    >>> RandomStreams(derive_seed(7, "fork:a")).stream("x").random() == \\
    ...     RandomStreams(7).fork("a").stream("x").random()
    True
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
