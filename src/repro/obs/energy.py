"""The harvested-energy ledger.

Tracks every microjoule flowing into and out of a sensor's storage element,
plus a capacitor-voltage timeseries — the simulation-side equivalent of the
oscilloscope-on-the-storage-cap measurements behind Figs 1 and 11/12. The
ledger is a thin facade over registry instruments so its data exports through
the same ``metrics``/JSONL pipeline as everything else.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry

#: Round-off tolerance for energy flows: fixed-step integrators produce
#: tiny negative drains (order 1e-18 J) when power crosses zero within a
#: step; magnitudes inside this band clamp to zero, anything larger is a
#: genuine sign error and still raises.
NEGATIVE_FLOW_CLAMP_J = 1e-12


class EnergyLedger:
    """µJ-in / µJ-out bookkeeping plus a storage-voltage timeseries.

    Parameters
    ----------
    registry:
        Destination registry; a disabled registry makes the ledger free.
    chain:
        Label identifying the harvester chain (e.g. ``"battery-free"``).
    voltage_stride:
        Record every ``stride``-th voltage sample — duty-cycle runs integrate
        at 10 ms steps over hours, so unthinned sampling would be unbounded.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        chain: str = "harvester",
        voltage_stride: int = 1,
    ) -> None:
        if voltage_stride < 1:
            raise ObservabilityError(
                f"voltage stride must be >= 1, got {voltage_stride}"
            )
        self.chain = chain
        self._in = registry.counter("harvester.energy.in_uj", chain=chain)
        self._out = registry.counter("harvester.energy.out_uj", chain=chain)
        self._operations = registry.counter("harvester.energy.operations", chain=chain)
        self._voltage = registry.timeseries("harvester.storage.voltage_v", chain=chain)
        self._stride = voltage_stride
        self._voltage_calls = 0

    # ---------------------------------------------------------------- flows

    @staticmethod
    def _clamp_flow(joules: float, direction: str) -> float:
        """Clamp round-off-scale negative flows to zero; reject real ones.

        A zero-duration integration step legitimately contributes 0 J, and
        floating-point drain arithmetic can land a hair below zero; both
        become exact zeros. Negative flows beyond
        :data:`NEGATIVE_FLOW_CLAMP_J` indicate a wiring bug and raise.
        """
        if joules >= 0:
            return joules
        if joules >= -NEGATIVE_FLOW_CLAMP_J:
            return 0.0
        raise ObservabilityError(f"cannot {direction} negative energy {joules}")

    def deposit(self, time_s: float, joules: float) -> None:
        """Record harvested energy entering storage."""
        self._in.inc(1e6 * self._clamp_flow(joules, "deposit"))

    def withdraw(
        self,
        time_s: float,
        joules: float,
        operation: bool = True,
        operations: float = 1.0,
    ) -> None:
        """Record energy leaving storage (``operations`` operations by default)."""
        self._out.inc(1e6 * self._clamp_flow(joules, "withdraw"))
        if operation:
            self._operations.inc(operations)

    def sample_voltage(self, time_s: float, volts: float) -> None:
        """Record one storage-voltage sample (thinned by the stride)."""
        if self._voltage_calls % self._stride == 0:
            self._voltage.sample(time_s, volts)
        self._voltage_calls += 1

    # -------------------------------------------------------------- queries

    @property
    def deposited_uj(self) -> float:
        """Total energy deposited, in microjoules."""
        return self._in.value

    @property
    def withdrawn_uj(self) -> float:
        """Total energy withdrawn, in microjoules."""
        return self._out.value

    @property
    def net_uj(self) -> float:
        """Deposited minus withdrawn, in microjoules."""
        return self._in.value - self._out.value

    @property
    def operations(self) -> float:
        """Number of operation-tagged withdrawals."""
        return self._operations.value

    @property
    def voltage_samples(self) -> int:
        """Number of retained voltage samples."""
        return len(self._voltage)

    def last_voltage(self) -> Optional[float]:
        """Most recent sampled voltage, or None."""
        last = self._voltage.last
        return None if last is None else last[1]

    def voltage_rate_v_per_s(self) -> float:
        """Average storage-voltage ramp over the sampled window (V/s).

        Delegates to :meth:`repro.obs.metrics.Timeseries.rate`: 0.0 with
        fewer than two retained samples or a zero-duration window.
        """
        return self._voltage.rate()
