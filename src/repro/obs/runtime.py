"""Process-wide observability state.

Experiment drivers build their own simulators internally (often several per
figure), so the telemetry for one CLI invocation is aggregated here: one
shared :class:`~repro.obs.metrics.MetricsRegistry`, one shared
:class:`~repro.sim.trace.TraceRecorder`, and the
:class:`~repro.sim.engine.SimulatorStats` of every simulator created while
observability is on. ``python -m repro metrics <exp>`` resets this state,
runs the experiment, and exports whatever accumulated.

The state is intentionally *not* thread-local: the simulator is
single-threaded by design and the registry never feeds back into simulation
behaviour, so a plain module-global keeps the hot-path lookup trivial.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional, Sequence

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_SPANS, Span, SpanRecorder

#: Engine-stats retention bound: long pytest sessions create thousands of
#: simulators; only the most recent window is kept for aggregation.
MAX_TRACKED_SIMULATORS = 256

_enabled: bool = True
_registry: MetricsRegistry = MetricsRegistry(enabled=True)
_trace = None  # created lazily to avoid an import cycle with repro.sim
_trace_kinds: Optional[Sequence[str]] = ()
_spans: SpanRecorder = SpanRecorder(enabled=True)
_sim_stats: Deque[Any] = deque(maxlen=MAX_TRACKED_SIMULATORS)


def enabled() -> bool:
    """Whether newly built simulators observe by default."""
    return _enabled


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry (no-op registry when disabled)."""
    return _registry


def null_registry() -> MetricsRegistry:
    """A shared always-disabled registry for explicitly unobserved components."""
    return NULL_REGISTRY


def get_trace():
    """The process-wide trace recorder.

    By default it records *no* kinds (``enabled_kinds=()``): traces are an
    opt-in firehose, enabled per-run via :func:`configure` (the CLI's
    ``trace --kinds`` path) or by tests.
    """
    global _trace
    if _trace is None:
        from repro.sim.trace import TraceRecorder

        _trace = TraceRecorder(enabled_kinds=list(_trace_kinds or []))
    return _trace


def get_spans() -> SpanRecorder:
    """The process-wide span recorder (no-op recorder when disabled)."""
    return _spans


def null_spans() -> SpanRecorder:
    """A shared always-disabled recorder for explicitly unobserved components."""
    return NULL_SPANS


@contextmanager
def span(name: str, sim_start_s: Optional[float] = None, **labels) -> Iterator[Span]:
    """Open a span on the process-wide recorder (see ``repro.obs.spans``).

    The convenience entry point experiment drivers use::

        with runtime.span("experiments.fig5.point", threshold=5):
            ...
    """
    with _spans.span(name, sim_start_s=sim_start_s, **labels) as opened:
        yield opened


def configure(
    enabled: bool = True,
    trace_kinds: Optional[Sequence[str]] = (),
    span_prefix: str = "s",
    span_detail: bool = False,
) -> None:
    """Reset the observability state for a fresh run.

    Parameters
    ----------
    enabled:
        False is the ``--no-obs`` escape hatch: the registry becomes a no-op
        and simulators skip profiling.
    trace_kinds:
        Kinds the shared trace recorder keeps. ``()`` (the default) records
        nothing; ``None`` records every kind.
    span_prefix:
        Id prefix for spans recorded in this process. The parallel runner
        hands each worker task a unique prefix so merged span ids never
        collide.
    span_detail:
        Whether hot-path span sites (per-transmission mac80211 spans)
        record; coarse spans always do.
    """
    global _enabled, _registry, _trace, _trace_kinds, _spans
    from repro.sim.trace import TraceRecorder

    _enabled = bool(enabled)
    _registry = MetricsRegistry(enabled=_enabled)
    _trace_kinds = trace_kinds
    _trace = TraceRecorder(
        enabled_kinds=None if trace_kinds is None else list(trace_kinds)
    )
    _spans = SpanRecorder(
        id_prefix=span_prefix, detail=span_detail, enabled=_enabled
    )
    _sim_stats.clear()


def reset() -> None:
    """Fresh registry/trace/spans/engine-stats keeping the current mode."""
    configure(enabled=_enabled, trace_kinds=_trace_kinds)


def track_simulator(stats: Any) -> None:
    """Register one simulator's stats object for later aggregation."""
    _sim_stats.append(stats)


def simulator_stats() -> List[Any]:
    """Stats of the (most recent) simulators created while observing."""
    return list(_sim_stats)


def aggregate_engine_stats(stats_list: Optional[Sequence[Any]] = None) -> Dict[str, Any]:
    """Merge tracked simulators' profiles into one engine report.

    Aggregates every tracked simulator by default; pass ``stats_list`` to
    aggregate a slice (the runner uses this to attribute engine work to one
    in-process task). Returns a JSON-safe dict with total
    dispatched/cancelled event counts, the worst heap high-water mark, and
    per-callback-name dispatch counts, cumulative wall-clock seconds,
    owning components and sim-time bounds merged across simulators.
    """
    if stats_list is None:
        stats_list = list(_sim_stats)
    dispatched = 0
    cancelled = 0
    heap_high_watermark = 0
    counts: Dict[str, int] = {}
    seconds: Dict[str, float] = {}
    components: Dict[str, str] = {}
    sim_bounds: Dict[str, List[float]] = {}
    for stats in stats_list:
        dispatched += stats.dispatched
        cancelled += stats.cancelled
        heap_high_watermark = max(heap_high_watermark, stats.heap_high_watermark)
        for name, count in stats.callback_counts.items():
            counts[name] = counts.get(name, 0) + count
        for name, wall in stats.callback_wall_s.items():
            seconds[name] = seconds.get(name, 0.0) + wall
        for name, component in stats.callback_components.items():
            components.setdefault(name, component)
        for name, (first, last) in stats.callback_sim_bounds.items():
            bounds = sim_bounds.get(name)
            if bounds is None:
                sim_bounds[name] = [first, last]
            else:
                bounds[0] = min(bounds[0], first)
                bounds[1] = max(bounds[1], last)
    return {
        "type": "engine",
        "simulators": len(stats_list),
        "dispatched": dispatched,
        "cancelled": cancelled,
        "heap_high_watermark": heap_high_watermark,
        "callback_counts": counts,
        "callback_wall_s": seconds,
        "callback_components": components,
        "callback_sim_bounds": sim_bounds,
    }


def hot_callbacks(limit: int = 10) -> List[Dict[str, Any]]:
    """The costliest callbacks across tracked simulators, by wall-clock."""
    merged = aggregate_engine_stats()
    rows = [
        {
            "name": name,
            "count": merged["callback_counts"].get(name, 0),
            "wall_s": wall,
        }
        for name, wall in merged["callback_wall_s"].items()
    ]
    rows.sort(key=lambda row: row["wall_s"], reverse=True)
    return rows[:limit]
