"""The run observatory: one self-contained HTML page per run.

``repro dash`` folds a run's artifacts — ``run_manifest.json`` (v5: SLO
section + domain metrics), ``perf_history.jsonl``, ``run_metrics.jsonl``
— into a single static HTML file with inline SVG sparklines and CSS
bars: no external scripts, stylesheets, fonts, or network fetches, so
the file renders identically from a CI artifact store, an email
attachment, or ``file://``. Sections:

* run header (stat tiles + SLO hero count),
* SLO scorecard (per-objective status, margin meter, worst window),
* domain metric sparklines (the streams the SLOs are judged on),
* per-experiment wall/events trend from perf history,
* span flame summary and per-kind attribution table,
* fault/retry timeline,
* per-chain energy ledger.

Every value shown in a chart is also present as text in the same card
(the charts decorate tables, not the other way around), and the page
carries light and dark palettes selected per the reader's scheme. The
builder is a pure function of its inputs: equal artifacts produce
byte-identical HTML.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Default output filename, next to the manifest.
DASH_FILENAME = "dash.html"

# Palette: validated reference instance (see docs/observability.md).
# Categorical slot 1 carries every single-series chart; status colors are
# reserved for SLO/fault state and always ride with a text label.
_CSS = """
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --plane: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s1-track: #cde2fb;
  --good: #0ca30c; --warn: #fab219; --crit: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --plane: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
    --s1: #3987e5; --s1-track: #184f95;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--plane); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 0 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.card {
  background: var(--surface); border: 1px solid var(--ring);
  border-radius: 10px; padding: 16px 18px; margin: 0 0 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 16px; }
.tile { min-width: 120px; }
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .hero { font-size: 48px; font-weight: 600; }
table { border-collapse: collapse; width: 100%; }
th {
  text-align: left; color: var(--muted); font-weight: 500; font-size: 12px;
  border-bottom: 1px solid var(--grid); padding: 4px 10px 4px 0;
}
td {
  padding: 5px 10px 5px 0; border-bottom: 1px solid var(--grid);
  vertical-align: middle;
}
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
tr:last-child td { border-bottom: none; }
.chip { font-weight: 600; font-size: 12px; white-space: nowrap; }
.chip.ok { color: var(--good); }
.chip.viol { color: var(--crit); }
.chip.skip { color: var(--muted); }
.meter {
  display: inline-block; width: 120px; height: 6px; border-radius: 3px;
  background: var(--s1-track); overflow: hidden; vertical-align: middle;
}
.meter > span { display: block; height: 100%; background: var(--s1); }
.bar {
  display: inline-block; height: 10px; border-radius: 0 4px 4px 0;
  background: var(--s1); vertical-align: middle;
}
.mono { font-variant-numeric: tabular-nums; }
.dim { color: var(--ink-2); }
svg text { fill: var(--muted); font-size: 10px; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any, digits: int = 3) -> str:
    """Compact numeric formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, float)):
        if float(value) == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{digits}g}" if abs(value) < 1e-2 else f"{value:,.{digits}f}"
    return str(value)


def sparkline(
    values: Sequence[float],
    width: int = 180,
    height: int = 36,
    title: str = "",
) -> str:
    """Inline SVG sparkline: 2px line, ring-carried end dot, native tooltip.

    Values are text elsewhere in the card; the sparkline is shape, so it
    needs no axes. A flat or single-point series renders as a midline.
    """
    if not values:
        return ""
    pad = 5.0
    low, high = min(values), max(values)
    span = high - low
    inner_w, inner_h = width - 2 * pad, height - 2 * pad

    def point(index: int, value: float) -> Tuple[float, float]:
        x = pad + (inner_w * index / max(1, len(values) - 1))
        if span <= 0:
            return x, height / 2
        return x, pad + inner_h * (1 - (value - low) / span)

    coords = [point(index, value) for index, value in enumerate(values)]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    end_x, end_y = coords[-1]
    label = title or f"{len(values)} samples, min {_fmt(low)}, max {_fmt(high)}"
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img" aria-label="{_esc(label)}">'
        f"<title>{_esc(label)}</title>"
        f'<polyline points="{path}" fill="none" stroke="var(--s1)" '
        'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{end_x:.1f}" cy="{end_y:.1f}" r="4" fill="var(--s1)" '
        'stroke="var(--surface)" stroke-width="2"/>'
        "</svg>"
    )


def _meter(fraction: float, title: str = "") -> str:
    """A thin track+fill meter; the track is a lighter step of the same hue."""
    clamped = max(0.0, min(1.0, fraction))
    return (
        f'<span class="meter" title="{_esc(title)}">'
        f'<span style="width:{100 * clamped:.0f}%"></span></span>'
    )


def _hbar(fraction: float, max_px: int = 160, title: str = "") -> str:
    clamped = max(0.0, min(1.0, fraction))
    return (
        f'<span class="bar" style="width:{max(2, int(max_px * clamped))}px" '
        f'title="{_esc(title)}"></span>'
    )


# ---------------------------------------------------------------------------
# Sections


def _section_header(manifest: Dict[str, Any]) -> str:
    totals = manifest.get("totals", {})
    slo = manifest.get("slo", {})
    counts = slo.get("counts", {})
    evaluated = counts.get("ok", 0) + counts.get("violated", 0)
    if evaluated:
        hero = f"{counts.get('ok', 0)}/{evaluated}"
        hero_label = "SLO objectives met"
    else:
        hero = f"{totals.get('ok', 0)}/{totals.get('experiments', 0)}"
        hero_label = "experiments ok"
    tiles = [
        ("", hero_label, hero, True),
        ("", "experiments ok", f"{totals.get('ok', 0)}/{totals.get('experiments', 0)}", False),
        ("", "wall clock", f"{_fmt(totals.get('wall_s', 0.0))} s", False),
        ("", "cache hits", _fmt(totals.get("cache_hits", 0)), False),
        ("", "events dispatched", _fmt(totals.get("events_dispatched", 0)), False),
        ("", "retried parts", _fmt(totals.get("retried_parts", 0)), False),
    ]
    cells = "".join(
        '<div class="tile">'
        f'<div class="label">{_esc(label)}</div>'
        f'<div class="{"hero" if hero_flag else "value"}">{_esc(value)}</div>'
        "</div>"
        for _, label, value, hero_flag in tiles
    )
    meta = (
        f"schema v{manifest.get('schema', '?')} · seed {manifest.get('seed', '?')} · "
        f"jobs {manifest.get('jobs', '?')} · fingerprint "
        f"{str(manifest.get('code_fingerprint', ''))[:12]}"
    )
    if manifest.get("interrupted"):
        meta += " · INTERRUPTED"
    return (
        "<h1>repro run observatory</h1>"
        f'<p class="sub">{_esc(meta)}</p>'
        f'<div class="card"><div class="tiles">{cells}</div></div>'
    )


_STATUS_CHIP = {
    "ok": ('<span class="chip ok">&#10003; PASS</span>'),
    "violated": ('<span class="chip viol">&#10007; VIOLATED</span>'),
    "skipped": ('<span class="chip skip">&#8212; SKIPPED</span>'),
}


def _section_slo(manifest: Dict[str, Any]) -> str:
    slo = manifest.get("slo") or {}
    rows = slo.get("objectives") or []
    if not rows:
        return (
            '<div class="card"><h2>SLO scorecard</h2>'
            '<p class="dim">No SLO specs were evaluated for this run '
            "(pre-v5 manifest, or no registry defaults for the selected "
            "experiments).</p></div>"
        )
    body: List[str] = []
    for row in rows:
        status = row.get("status", "skipped")
        margin = row.get("margin")
        bound = row.get("value", 0.0)
        # Meter: headroom relative to the bound (capped at 100 %); a
        # violated objective shows an empty track.
        meter = ""
        if isinstance(margin, (int, float)) and status != "skipped":
            scale = abs(bound) if bound else 1.0
            meter = _meter(
                max(0.0, margin) / scale if scale else 0.0,
                title=f"margin {margin:+g}",
            )
        worst = row.get("worst_window")
        if worst and "value" in worst:
            window = f"{_fmt(worst['start_s'])}-{_fmt(worst['end_s'])} s → {_fmt(worst['value'])}"
        elif worst:
            window = (
                f"{_fmt(worst['start_s'])}-{_fmt(worst['end_s'])} s "
                f"({worst.get('samples', '?')} bad)"
            )
        elif status == "skipped":
            window = _esc(row.get("reason", ""))
        else:
            window = "-"
        body.append(
            "<tr>"
            f"<td>{_STATUS_CHIP.get(status, status)}</td>"
            f"<td>{_esc(row.get('experiment', ''))}</td>"
            f'<td title="{_esc(row.get("description", ""))}">{_esc(row.get("id", ""))}</td>'
            f'<td class="num">{_fmt(row.get("actual"))}</td>'
            f'<td class="num dim">{_esc(row.get("op", ""))} {_fmt(bound)}</td>'
            f'<td class="num">{_fmt(margin)} {meter}</td>'
            f'<td class="dim">{window}</td>'
            "</tr>"
        )
    counts = slo.get("counts", {})
    return (
        '<div class="card"><h2>SLO scorecard</h2>'
        f'<p class="dim">{counts.get("ok", 0)} ok · {counts.get("violated", 0)} violated · '
        f'{counts.get("skipped", 0)} skipped · specs: '
        f'{_esc(", ".join(slo.get("specs", [])) or "none")}</p>'
        "<table><thead><tr><th>status</th><th>experiment</th><th>objective</th>"
        '<th class="num">actual</th><th class="num">bound</th>'
        '<th class="num">margin</th><th>worst window / reason</th></tr></thead>'
        f'<tbody>{"".join(body)}</tbody></table></div>'
    )


def _section_domain(manifest: Dict[str, Any]) -> str:
    cards: List[str] = []
    for entry in manifest.get("experiments", []):
        domain = entry.get("domain") or {}
        for name in sorted(domain):
            value = domain[name]
            if not (isinstance(value, dict) and isinstance(value.get("samples"), list)):
                continue
            samples = [float(sample) for sample in value["samples"]]
            if not samples:
                continue
            mean = sum(samples) / len(samples)
            spark_title = (
                f"{name}: {len(samples)} windows of {value.get('window_s')} s"
            )
            cards.append(
                '<div class="tile">'
                f'<div class="label">{_esc(entry["id"])} · {_esc(name)}</div>'
                f"<div>{sparkline(samples, title=spark_title)}</div>"
                f'<div class="dim mono">mean {_fmt(mean)} · min {_fmt(min(samples))} · '
                f"max {_fmt(max(samples))} · {len(samples)} × {_fmt(value.get('window_s'))} s</div>"
                "</div>"
            )
    if not cards:
        return ""
    return (
        '<div class="card"><h2>Domain metric streams</h2>'
        f'<div class="tiles">{"".join(cards)}</div></div>'
    )


def _section_trend(history: List[Dict[str, Any]]) -> str:
    if not history:
        return (
            '<div class="card"><h2>Perf history trend</h2>'
            '<p class="dim">No perf_history.jsonl found — run '
            "<code>repro run-all</code> without --no-history to start one.</p></div>"
        )
    walls: Dict[str, List[float]] = {}
    events: Dict[str, List[float]] = {}
    totals: List[float] = []
    for record in history:
        total = record.get("totals", {}).get("wall_s")
        if isinstance(total, (int, float)):
            totals.append(float(total))
        experiments = record.get("experiments") or {}
        for exp_id, entry in sorted(experiments.items()):
            if not isinstance(entry, dict) or entry.get("cache_hit"):
                continue
            wall = entry.get("wall_s")
            if isinstance(wall, (int, float)):
                walls.setdefault(exp_id, []).append(float(wall))
            count = entry.get("events")
            if isinstance(count, (int, float)):
                events.setdefault(exp_id, []).append(float(count))
    rows: List[str] = []
    for exp_id in sorted(walls):
        series = walls[exp_id]
        delta = series[-1] - series[-2] if len(series) > 1 else 0.0
        event_series = events.get(exp_id) or []
        rows.append(
            "<tr>"
            f"<td>{_esc(exp_id)}</td>"
            f"<td>{sparkline(series, title=f'{exp_id} wall_s over {len(series)} run(s)')}</td>"
            f'<td class="num">{_fmt(series[-1])} s</td>'
            f'<td class="num dim">{delta:+.3f} s</td>'
            f'<td class="num dim">{_fmt(event_series[-1]) if event_series else "-"}</td>'
            "</tr>"
        )
    total_block = ""
    if totals:
        total_block = (
            f'<p class="dim">total wall over {len(totals)} recorded run(s): '
            f"{sparkline(totals, title='total wall_s')} "
            f'<span class="mono">last {_fmt(totals[-1])} s</span></p>'
        )
    return (
        '<div class="card"><h2>Perf history trend</h2>'
        f"{total_block}"
        "<table><thead><tr><th>experiment</th><th>wall trend (executed runs)</th>"
        '<th class="num">last wall</th><th class="num">Δ prev</th>'
        '<th class="num">events</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table></div>'
    )


def _section_spans(manifest: Dict[str, Any], top: int = 12) -> str:
    records = (manifest.get("spans") or {}).get("records") or []
    closed = [
        record
        for record in records
        if isinstance(record.get("wall_s"), (int, float))
    ]
    if not closed:
        return ""
    closed.sort(key=lambda record: (-record["wall_s"], record.get("name", "")))
    shown = closed[:top]
    max_wall = shown[0]["wall_s"] or 1.0
    rows = []
    for record in shown:
        name = record.get("name", "?")
        attrs = record.get("attrs") or {}
        label = name
        if attrs.get("experiment"):
            label = f"{name} [{attrs['experiment']}]"
        wall = record["wall_s"]
        rows.append(
            "<tr>"
            f"<td>{_esc(label)}</td>"
            f"<td>{_hbar(wall / max_wall, title=f'{wall:.4f} s')}</td>"
            f'<td class="num">{wall:.4f} s</td>'
            "</tr>"
        )
    return (
        '<div class="card"><h2>Span flame summary</h2>'
        f'<p class="dim">{len(closed)} closed span(s); top {len(shown)} by wall clock</p>'
        '<table><thead><tr><th>span</th><th>wall</th><th class="num">s</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table></div>'
    )


def _section_attribution(manifest: Dict[str, Any], top: int = 15) -> str:
    kinds: Dict[str, Dict[str, Any]] = {}
    for entry in manifest.get("experiments", []):
        for part in entry.get("parts", []):
            profile = (part.get("engine") or {}).get("profile") or {}
            for kind, row in profile.items():
                bucket = kinds.setdefault(
                    kind, {"component": row.get("component", ""), "count": 0, "wall_s": 0.0}
                )
                bucket["count"] += int(row.get("count", 0))
                bucket["wall_s"] += float(row.get("wall_s", 0.0))
    if not kinds:
        return ""
    ordered = sorted(kinds.items(), key=lambda item: (-item[1]["wall_s"], item[0]))
    shown = ordered[:top]
    total_wall = sum(bucket["wall_s"] for _, bucket in ordered) or 1.0
    rows = []
    for kind, bucket in shown:
        share = bucket["wall_s"] / total_wall
        rows.append(
            "<tr>"
            f"<td>{_esc(kind)}</td>"
            f'<td class="dim">{_esc(bucket["component"])}</td>'
            f'<td class="num">{bucket["count"]:,}</td>'
            f"<td>{_hbar(share, title=f'{100 * share:.1f} % of sampled wall')}</td>"
            f'<td class="num">{bucket["wall_s"]:.4f} s</td>'
            "</tr>"
        )
    return (
        '<div class="card"><h2>Per-kind attribution</h2>'
        f'<p class="dim">{len(ordered)} event kind(s); top {len(shown)} by sampled wall</p>'
        "<table><thead><tr><th>kind</th><th>component</th>"
        '<th class="num">dispatches</th><th>share</th><th class="num">wall</th>'
        f'</tr></thead><tbody>{"".join(rows)}</tbody></table></div>'
    )


def _section_faults(manifest: Dict[str, Any]) -> str:
    fault_events = (manifest.get("faults") or {}).get("events") or []
    retry_rows: List[Tuple[str, str, int, Optional[str], Optional[str]]] = []
    for entry in manifest.get("experiments", []):
        for part in entry.get("parts", []):
            if part.get("attempts", 0) > 1 or part.get("failure_kind"):
                retry_rows.append(
                    (
                        entry["id"],
                        part.get("part", "?"),
                        part.get("attempts", 0),
                        part.get("failure_kind"),
                        part.get("error"),
                    )
                )
    if not fault_events and not retry_rows:
        return ""
    blocks: List[str] = ['<div class="card"><h2>Fault &amp; retry timeline</h2>']
    if fault_events:
        items = "".join(
            f'<tr><td>{_esc(event.get("point", "?"))}</td>'
            f'<td class="dim">{_esc(event.get("task", ""))}</td>'
            f'<td class="dim">{_esc(event.get("param", event.get("fired", "")))}</td></tr>'
            for event in fault_events
        )
        blocks.append(
            f'<p class="dim">{len(fault_events)} injected fault binding(s)</p>'
            "<table><thead><tr><th>point</th><th>task</th><th>param</th></tr></thead>"
            f"<tbody>{items}</tbody></table>"
        )
    if retry_rows:
        items = "".join(
            f"<tr><td>{_esc(exp)}:{_esc(part)}</td>"
            f'<td class="num">{attempts}</td>'
            f'<td><span class="chip {"viol" if kind else "ok"}">'
            f'{_esc(kind) if kind else "&#10003; recovered"}</span></td>'
            f'<td class="dim">{_esc((error or "")[:80])}</td></tr>'
            for exp, part, attempts, kind, error in retry_rows
        )
        blocks.append(
            "<table><thead><tr><th>part</th>"
            '<th class="num">attempts</th><th>outcome</th><th>error</th></tr></thead>'
            f"<tbody>{items}</tbody></table>"
        )
    blocks.append("</div>")
    return "".join(blocks)


def _section_energy(metrics: List[Dict[str, Any]]) -> str:
    chains: Dict[str, Dict[str, Any]] = {}
    for record in metrics:
        name = record.get("name", "")
        if not name.startswith("harvester."):
            continue
        chain = (record.get("labels") or {}).get("chain", "default")
        bucket = chains.setdefault(
            chain, {"in_uj": 0.0, "out_uj": 0.0, "operations": 0.0, "voltage": []}
        )
        if name == "harvester.energy.in_uj":
            bucket["in_uj"] += float(record.get("value", 0.0))
        elif name == "harvester.energy.out_uj":
            bucket["out_uj"] += float(record.get("value", 0.0))
        elif name == "harvester.energy.operations":
            bucket["operations"] += float(record.get("value", 0.0))
        elif name == "harvester.storage.voltage_v":
            bucket["voltage"] = [
                float(pair[1]) for pair in record.get("samples") or []
            ]
    if not chains:
        return ""
    rows = []
    for chain in sorted(chains):
        bucket = chains[chain]
        spark = (
            sparkline(bucket["voltage"], title=f"{chain} storage voltage")
            if bucket["voltage"]
            else '<span class="dim">-</span>'
        )
        rows.append(
            "<tr>"
            f"<td>{_esc(chain)}</td>"
            f'<td class="num">{_fmt(bucket["in_uj"])}</td>'
            f'<td class="num">{_fmt(bucket["out_uj"])}</td>'
            f'<td class="num">{_fmt(bucket["operations"])}</td>'
            f"<td>{spark}</td>"
            "</tr>"
        )
    return (
        '<div class="card"><h2>Energy ledger</h2>'
        "<table><thead><tr><th>chain</th>"
        '<th class="num">in (µJ)</th><th class="num">out (µJ)</th>'
        '<th class="num">operations</th><th>storage voltage</th></tr></thead>'
        f'<tbody>{"".join(rows)}</tbody></table></div>'
    )


# ---------------------------------------------------------------------------
# Assembly


def build_dash(
    manifest: Dict[str, Any],
    history: Optional[List[Dict[str, Any]]] = None,
    metrics: Optional[List[Dict[str, Any]]] = None,
) -> str:
    """Render the full observatory page as one HTML string (pure)."""
    sections = [
        _section_header(manifest),
        _section_slo(manifest),
        _section_domain(manifest),
        _section_trend(history or []),
        _section_spans(manifest),
        _section_attribution(manifest),
        _section_faults(manifest),
        _section_energy(metrics or []),
    ]
    body = "".join(section for section in sections if section)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        "<title>repro run observatory</title>"
        f"<style>{_CSS}</style></head>"
        f"<body>{body}</body></html>\n"
    )


def _read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        return []
    return records


def write_dash(
    manifest_path: Union[str, Path],
    out_path: Union[str, Path] = DASH_FILENAME,
    history_path: Optional[Union[str, Path]] = None,
    metrics_path: Optional[Union[str, Path]] = None,
) -> str:
    """Load artifacts, render, and write the page; returns the output path.

    ``history_path`` defaults to the repo's perf-history file and
    ``metrics_path`` to ``run_metrics.jsonl`` next to the manifest; both
    degrade to empty sections when absent — only the manifest is required.
    """
    from repro.obs.history import DEFAULT_HISTORY_DIR, HISTORY_FILENAME

    manifest_path = Path(manifest_path)
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    if history_path is None:
        history_path = Path(DEFAULT_HISTORY_DIR) / HISTORY_FILENAME
    if metrics_path is None:
        metrics_path = manifest_path.parent / "run_metrics.jsonl"
    history = _read_jsonl(history_path)
    metrics = _read_jsonl(metrics_path)
    page = build_dash(manifest, history=history, metrics=metrics)
    out_path = Path(out_path)
    out_path.write_text(page, encoding="utf-8")
    return str(out_path)
