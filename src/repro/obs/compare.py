"""Regression diffing between two runs: ``python -m repro compare``.

Consumes any pair of run manifests (:mod:`repro.runner.manifest`) and/or
perf-history records (:mod:`repro.obs.history`) and reports three things:

* **wall-clock deltas** per experiment, flagging regressions beyond a
  configurable relative threshold (slowdowns only — speedups are reported
  but never fail the diff) with an absolute floor so sub-second noise on
  fast analytic experiments cannot trip CI;
* **metric deltas** — events dispatched and heap high-water per experiment;
* **per-kind attribution deltas** — when both runs carry profiler ``kinds``
  baselines (profiler PR, v4 manifests), the diff names *which event kind*
  moved: dispatch-count deltas and the kinds whose sampled wall grew past
  the threshold. Attribution is advisory — sampled per-kind walls are
  noisier than whole-run walls, so kind rows annotate a verdict but never
  flip ``regressed`` on their own;
* **determinism drift** — ``result_sha256`` mismatches at equal seed *and*
  equal code fingerprint, which by the runner's contract should be
  impossible and therefore always fails the diff.

Exit-code contract (the CI gate): 0 clean, 1 regression/drift found,
2 usage or input error.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.history import build_history_record, load_history

#: Relative wall-clock slowdown beyond which an experiment is a regression.
DEFAULT_WALL_THRESHOLD = 0.25

#: Experiments faster than this (in *both* runs) are never wall-flagged:
#: interpreter jitter dominates below it.
DEFAULT_MIN_WALL_S = 0.5


def load_run(path: Union[str, Path]) -> Dict[str, Any]:
    """Load one run record from a manifest, BENCH snapshot, or history file.

    * ``*.jsonl`` — a perf-history stream; the **latest** record is used.
    * JSON with ``kind == "perf_history"`` — a BENCH snapshot, used as-is.
    * JSON with ``experiments: []`` — a run manifest, converted via
      :func:`~repro.obs.history.build_history_record`.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        records = load_history(path)
        if not records:
            raise ObservabilityError(f"{path}: history stream is empty")
        return records[-1]
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("kind") == "perf_history":
        return data
    if isinstance(data.get("experiments"), list):
        return build_history_record(data)
    raise ObservabilityError(
        f"{path}: neither a run manifest nor a perf-history record"
    )


def compare_runs(
    base: Dict[str, Any],
    new: Dict[str, Any],
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    min_wall_s: float = DEFAULT_MIN_WALL_S,
) -> Dict[str, Any]:
    """Diff two history records (see :func:`load_run` for accepted inputs).

    Returns a JSON-safe report dict whose ``"regressed"`` flag drives the
    CLI exit code. Cache-hit entries are excluded from wall comparisons on
    either side (a hit measures the cache, not the experiment) but still
    participate in drift checks — a cached result hash is still the result.
    """
    if wall_threshold < 0:
        raise ObservabilityError(
            f"wall threshold must be >= 0, got {wall_threshold}"
        )
    base_exps: Dict[str, Dict[str, Any]] = base.get("experiments", {})
    new_exps: Dict[str, Dict[str, Any]] = new.get("experiments", {})
    shared = sorted(set(base_exps) & set(new_exps))

    comparable_seed = (
        base.get("seed") is not None and base.get("seed") == new.get("seed")
    )
    comparable_code = bool(base.get("code_fingerprint")) and base.get(
        "code_fingerprint"
    ) == new.get("code_fingerprint")

    wall_rows: List[Dict[str, Any]] = []
    drift_rows: List[Dict[str, Any]] = []
    metric_rows: List[Dict[str, Any]] = []

    for exp_id in shared:
        a, b = base_exps[exp_id], new_exps[exp_id]
        wall_a, wall_b = float(a.get("wall_s", 0.0)), float(b.get("wall_s", 0.0))
        timed = not (a.get("cache_hit") or b.get("cache_hit"))
        ratio = (wall_b - wall_a) / wall_a if wall_a > 0 else 0.0
        regressed = (
            timed
            and max(wall_a, wall_b) >= min_wall_s
            and wall_a > 0
            and ratio > wall_threshold
        )
        wall_rows.append(
            {
                "id": exp_id,
                "base_wall_s": wall_a,
                "new_wall_s": wall_b,
                "delta_s": round(wall_b - wall_a, 6),
                "ratio": round(ratio, 4),
                "timed": timed,
                "regressed": regressed,
            }
        )

        sha_a, sha_b = a.get("result_sha256", ""), b.get("result_sha256", "")
        if comparable_seed and comparable_code and sha_a and sha_b and sha_a != sha_b:
            drift_rows.append(
                {"id": exp_id, "base_sha256": sha_a, "new_sha256": sha_b}
            )

        delta_events = int(b.get("events_dispatched", 0)) - int(
            a.get("events_dispatched", 0)
        )
        delta_heap = int(b.get("heap_high_watermark", 0)) - int(
            a.get("heap_high_watermark", 0)
        )
        if delta_events or delta_heap:
            metric_rows.append(
                {
                    "id": exp_id,
                    "delta_events_dispatched": delta_events,
                    "delta_heap_high_watermark": delta_heap,
                }
            )

    kind_rows: List[Dict[str, Any]] = []
    base_kinds: Dict[str, Dict[str, Any]] = base.get("kinds") or {}
    new_kinds: Dict[str, Dict[str, Any]] = new.get("kinds") or {}
    for kind in sorted(set(base_kinds) & set(new_kinds)):
        a, b = base_kinds[kind], new_kinds[kind]
        wall_a = float(a.get("wall_s", 0.0))
        wall_b = float(b.get("wall_s", 0.0))
        delta_count = int(b.get("count", 0)) - int(a.get("count", 0))
        ratio = (wall_b - wall_a) / wall_a if wall_a > 0 else 0.0
        flagged = (
            wall_a > 0
            and max(wall_a, wall_b) >= min_wall_s
            and ratio > wall_threshold
        )
        if delta_count or flagged:
            kind_rows.append(
                {
                    "kind": kind,
                    "component": b.get("component", a.get("component", "")),
                    "base_wall_s": wall_a,
                    "new_wall_s": wall_b,
                    "ratio": round(ratio, 4),
                    "delta_count": delta_count,
                    "flagged": flagged,
                }
            )

    # SLO deltas (v5+ history records carry an ``slo`` summary): any
    # objective whose status changed between the runs, plus its margin
    # movement. Advisory like the kind rows — an SLO flip never flips
    # ``regressed`` on its own; ``repro slo --strict`` is the SLO gate, and
    # compare only points at what moved.
    slo_rows: List[Dict[str, Any]] = []
    base_slo: Dict[str, Dict[str, Any]] = (base.get("slo") or {}).get(
        "objectives"
    ) or {}
    new_slo: Dict[str, Dict[str, Any]] = (new.get("slo") or {}).get(
        "objectives"
    ) or {}
    for key in sorted(set(base_slo) & set(new_slo)):
        a, b = base_slo[key], new_slo[key]
        status_a, status_b = a.get("status"), b.get("status")
        margin_a, margin_b = a.get("margin"), b.get("margin")
        delta_margin = None
        if isinstance(margin_a, (int, float)) and isinstance(margin_b, (int, float)):
            delta_margin = round(float(margin_b) - float(margin_a), 9)
        if status_a != status_b or delta_margin:
            slo_rows.append(
                {
                    "objective": key,
                    "base_status": status_a,
                    "new_status": status_b,
                    "delta_margin": delta_margin,
                    "flipped": status_a != status_b,
                }
            )

    wall_regressions = [row for row in wall_rows if row["regressed"]]
    return {
        "type": "compare",
        "base_seed": base.get("seed"),
        "new_seed": new.get("seed"),
        "seeds_match": comparable_seed,
        "code_match": comparable_code,
        "wall_threshold": wall_threshold,
        "min_wall_s": min_wall_s,
        "shared_experiments": len(shared),
        "only_in_base": sorted(set(base_exps) - set(new_exps)),
        "only_in_new": sorted(set(new_exps) - set(base_exps)),
        "wall": wall_rows,
        "wall_regressions": [row["id"] for row in wall_regressions],
        "metric_deltas": metric_rows,
        "kind_deltas": kind_rows,
        "kind_regressions": [row["kind"] for row in kind_rows if row["flagged"]],
        "slo_deltas": slo_rows,
        "slo_flips": [row["objective"] for row in slo_rows if row["flipped"]],
        "determinism_drift": drift_rows,
        "regressed": bool(wall_regressions or drift_rows),
    }


def render_compare(report: Dict[str, Any]) -> str:
    """Human-readable form of a :func:`compare_runs` report."""
    lines: List[str] = []
    lines.append(
        f"compare: {report['shared_experiments']} shared experiments "
        f"(threshold {report['wall_threshold']:.0%}, "
        f"floor {report['min_wall_s']:g}s)"
    )
    if report["only_in_base"] or report["only_in_new"]:
        lines.append(
            f"  unmatched: base-only {report['only_in_base'] or '[]'} "
            f"new-only {report['only_in_new'] or '[]'}"
        )
    for row in report["wall"]:
        flag = " <-- REGRESSION" if row["regressed"] else ""
        note = "" if row["timed"] else " (cache hit, untimed)"
        lines.append(
            f"  {row['id']:<8} {row['base_wall_s']:9.3f}s -> "
            f"{row['new_wall_s']:9.3f}s  ({row['ratio']:+8.1%})"
            f"{note}{flag}"
        )
    for row in report["metric_deltas"]:
        lines.append(
            f"  {row['id']:<8} events {row['delta_events_dispatched']:+d}  "
            f"heap-high-water {row['delta_heap_high_watermark']:+d}"
        )
    for row in report.get("kind_deltas", []):
        flag = " <-- kind hot-spot" if row["flagged"] else ""
        lines.append(
            f"  kind {row['kind']:<22} {row['base_wall_s']:7.3f}s -> "
            f"{row['new_wall_s']:7.3f}s ({row['ratio']:+7.1%}) "
            f"count {row['delta_count']:+d}  [{row['component']}]{flag}"
        )
    for row in report.get("slo_deltas", []):
        flag = " <-- SLO flip (advisory; gate with 'repro slo')" if row["flipped"] else ""
        margin = (
            f" margin {row['delta_margin']:+g}"
            if row["delta_margin"] is not None
            else ""
        )
        lines.append(
            f"  slo {row['objective']:<44} {row['base_status']} -> "
            f"{row['new_status']}{margin}{flag}"
        )
    if report["seeds_match"] and report["code_match"]:
        if report["determinism_drift"]:
            for row in report["determinism_drift"]:
                lines.append(
                    f"  {row['id']:<8} DETERMINISM DRIFT: "
                    f"{row['base_sha256'][:12]} != {row['new_sha256'][:12]} "
                    "at equal seed+code"
                )
        else:
            lines.append("  determinism: 0 drifting results at equal seed+code")
    else:
        lines.append(
            "  determinism: not comparable "
            f"(seeds_match={report['seeds_match']}, "
            f"code_match={report['code_match']})"
        )
    verdict = "REGRESSED" if report["regressed"] else "OK"
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)
