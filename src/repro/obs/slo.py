"""Domain SLOs: machine-checked statements about the *simulated system*.

Everything else in ``repro.obs`` observes the simulator — dispatch
counts, spans, per-kind wall attribution. This module observes what the
paper actually promises: "PoWiFi minimally impacts client TCP/web
performance while keeping the channel occupied and delivering usable
power" (Talla et al., CoNEXT 2015, §4–§6). An SLO spec turns one such
promise into data: a JSON file declaring objectives over *domain metric
streams* (TCP throughput ratio vs. the no-injection baseline, page-load
delta, per-channel occupancy share, camera inter-frame cadence, sensor
read rate), each checked by one of three evaluators:

* ``threshold`` — a scalar compared against a bound;
* ``window`` — the worst sliding window of a series compared against a
  bound (catches transient starvation that a run-wide mean hides);
* ``burn_rate`` — the fraction of samples violating a per-sample bound,
  compared against an error budget (SRE-style: "home 5 may read below
  0.5 reads/s in at most 15 % of minutes").

Evaluation is pure and deterministic: domain metrics are extracted from
merged experiment results at run time (:func:`domain_metrics`), land in
the manifest's per-experiment ``domain`` sections, and the ``slo``
section is a fold over those numbers — equal seeds produce byte-identical
sections. The same fold runs post-hoc (``repro slo --input
run_manifest.json``) and online (``run-all`` emits ``experiment.slo``
events into the live stream as each experiment merges, which ``repro
watch`` folds into its board).

Objective ids follow the metric naming convention (dotted lowercase,
enforced here *and* by lint rule PW006, which also checks literal ids at
:func:`objective` call sites and in ``slos/*.json`` spec files).
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError

#: Bump on any breaking change to spec files or the manifest ``slo`` section.
SLO_SCHEMA_VERSION = 1

#: Default directory holding per-experiment spec files (repo-relative).
DEFAULT_SPEC_DIR = "slos"

#: Objective ids and domain metric names share the instrument-name
#: convention: dotted lowercase, at least two segments.
OBJECTIVE_ID_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Evaluator kinds, documented above.
KINDS = ("threshold", "window", "burn_rate")

#: Comparison directions. ``>=`` reads "must stay at or above", ``<=``
#: "must stay at or below"; margins are signed so positive = headroom.
OPS = (">=", "<=")

#: Reductions applicable to a window of samples.
REDUCES = ("mean", "min", "max")

#: ``registry:`` metric references may end in one of these reductions.
_REGISTRY_REDUCES = ("p50", "p90", "p99", "mean", "min", "max", "count", "rate", "last")

_REGISTRY_RE = re.compile(
    r"^registry:(?P<name>[a-z0-9_]+(\.[a-z0-9_]+)+)"
    r"(\{(?P<labels>[^}]*)\})?"
    r"(#(?P<reduce>[a-z0-9]+))?$"
)


@dataclass(frozen=True)
class Objective:
    """One declarative objective over a domain metric stream."""

    id: str
    metric: str
    kind: str
    op: str
    value: float
    window_s: Optional[float] = None
    reduce: str = "mean"
    budget: Optional[float] = None
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "id": self.id,
            "metric": self.metric,
            "kind": self.kind,
            "op": self.op,
            "value": self.value,
        }
        if self.kind == "window":
            record["window_s"] = self.window_s
            record["reduce"] = self.reduce
        if self.kind == "burn_rate":
            record["budget"] = self.budget
        if self.description:
            record["description"] = self.description
        return record


@dataclass(frozen=True)
class SloSpec:
    """One spec file: an experiment id plus its objectives."""

    experiment: str
    objectives: Tuple[Objective, ...]
    path: str = ""


def objective(
    objective_id: str,
    metric: str,
    kind: str = "threshold",
    op: str = ">=",
    value: float = 0.0,
    window_s: Optional[float] = None,
    reduce: str = "mean",
    budget: Optional[float] = None,
    description: str = "",
) -> Objective:
    """Build one validated :class:`Objective`.

    The canonical constructor for programmatic specs (tests, tooling);
    :func:`load_spec` routes every JSON objective through it so file and
    code objectives obey identical rules. Raises
    :class:`~repro.errors.ObservabilityError` on any malformed field.
    """
    if not isinstance(objective_id, str) or not OBJECTIVE_ID_RE.match(objective_id):
        raise ObservabilityError(
            f"bad objective id {objective_id!r}: expected dotted lowercase "
            "(e.g. 'client.tcp.median_ratio')"
        )
    _validate_metric_ref(metric)
    if kind not in KINDS:
        raise ObservabilityError(
            f"objective {objective_id!r}: unknown kind {kind!r}; expected one of {KINDS}"
        )
    if op not in OPS:
        raise ObservabilityError(
            f"objective {objective_id!r}: unknown op {op!r}; expected one of {OPS}"
        )
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ObservabilityError(
            f"objective {objective_id!r}: value must be a number, got {value!r}"
        )
    if kind == "window":
        if not isinstance(window_s, (int, float)) or window_s <= 0:
            raise ObservabilityError(
                f"objective {objective_id!r}: window kind needs window_s > 0"
            )
        if reduce not in REDUCES:
            raise ObservabilityError(
                f"objective {objective_id!r}: unknown reduce {reduce!r}; "
                f"expected one of {REDUCES}"
            )
    if kind == "burn_rate":
        if (
            not isinstance(budget, (int, float))
            or isinstance(budget, bool)
            or not 0.0 <= float(budget) <= 1.0
        ):
            raise ObservabilityError(
                f"objective {objective_id!r}: burn_rate kind needs a budget in [0, 1]"
            )
    return Objective(
        id=objective_id,
        metric=metric,
        kind=kind,
        op=op,
        value=float(value),
        window_s=float(window_s) if window_s is not None else None,
        reduce=reduce,
        budget=float(budget) if budget is not None else None,
        description=str(description),
    )


def _validate_metric_ref(metric: str) -> None:
    """A metric reference is a domain metric name or a ``registry:`` ref."""
    if not isinstance(metric, str):
        raise ObservabilityError(f"bad metric reference {metric!r}: not a string")
    if metric.startswith("registry:"):
        match = _REGISTRY_RE.match(metric)
        if not match:
            raise ObservabilityError(
                f"bad registry metric reference {metric!r}: expected "
                "'registry:name', 'registry:name{label=value}' or "
                "'registry:name#p95'"
            )
        reduce = match.group("reduce")
        if reduce is not None and reduce not in _REGISTRY_REDUCES:
            raise ObservabilityError(
                f"bad registry metric reference {metric!r}: unknown reduction "
                f"{reduce!r}; expected one of {_REGISTRY_REDUCES}"
            )
        return
    if not OBJECTIVE_ID_RE.match(metric):
        raise ObservabilityError(
            f"bad metric reference {metric!r}: expected dotted lowercase or "
            "a 'registry:' reference"
        )


# ---------------------------------------------------------------------------
# Spec files


def load_spec(path: Union[str, Path]) -> SloSpec:
    """Parse and validate one ``slos/*.json`` spec file.

    Raises :class:`~repro.errors.ObservabilityError` with the offending
    path and field on any malformed content; objective ids must be unique
    within a spec.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ObservabilityError(f"cannot read SLO spec {path}: {exc}") from exc
    except ValueError as exc:
        raise ObservabilityError(f"malformed JSON in SLO spec {path}: {exc}") from exc
    return parse_spec(data, path=str(path))


def parse_spec(data: Any, path: str = "<spec>") -> SloSpec:
    """Validate already-parsed spec data (the loader and lint both use this)."""
    if not isinstance(data, dict):
        raise ObservabilityError(f"SLO spec {path}: top level must be an object")
    schema = data.get("schema")
    if schema != SLO_SCHEMA_VERSION:
        raise ObservabilityError(
            f"SLO spec {path}: schema {schema!r} unsupported "
            f"(expected {SLO_SCHEMA_VERSION})"
        )
    experiment = data.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        raise ObservabilityError(f"SLO spec {path}: missing experiment id")
    raw = data.get("objectives")
    if not isinstance(raw, list) or not raw:
        raise ObservabilityError(f"SLO spec {path}: objectives must be a non-empty list")
    objectives: List[Objective] = []
    seen = set()
    for index, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise ObservabilityError(
                f"SLO spec {path}: objectives[{index}] must be an object"
            )
        known = {
            "id",
            "metric",
            "kind",
            "op",
            "value",
            "window_s",
            "reduce",
            "budget",
            "description",
        }
        unknown = sorted(set(entry) - known)
        if unknown:
            raise ObservabilityError(
                f"SLO spec {path}: objectives[{index}] has unknown keys {unknown}"
            )
        try:
            parsed = objective(
                entry.get("id", ""),
                entry.get("metric", ""),
                kind=entry.get("kind", "threshold"),
                op=entry.get("op", ">="),
                value=entry.get("value", 0.0),
                window_s=entry.get("window_s"),
                reduce=entry.get("reduce", "mean"),
                budget=entry.get("budget"),
                description=entry.get("description", ""),
            )
        except ObservabilityError as exc:
            raise ObservabilityError(f"SLO spec {path}: objectives[{index}]: {exc}") from None
        if parsed.id in seen:
            raise ObservabilityError(
                f"SLO spec {path}: duplicate objective id {parsed.id!r}"
            )
        seen.add(parsed.id)
        objectives.append(parsed)
    return SloSpec(experiment=experiment, objectives=tuple(objectives), path=path)


def default_spec_path(experiment_id: str) -> Optional[str]:
    """Registry-declared default spec path for an experiment, if any."""
    from repro.experiments.registry import SPECS

    spec = SPECS.get(experiment_id)
    if spec is None:
        return None
    return getattr(spec, "slo", None)


def load_default_specs(
    experiment_ids: Iterable[str], root: Union[str, Path, None] = None
) -> List[SloSpec]:
    """Load the registry-default spec of every listed experiment.

    Experiments without a registered default, and defaults whose file is
    absent (a checkout run from elsewhere), are silently skipped — an SLO
    that cannot be loaded must not change what the run computes. Malformed
    files still raise: a present-but-broken spec is a configuration error.
    """
    specs: List[SloSpec] = []
    bases = [Path(root)] if root is not None else _default_roots()
    for experiment_id in experiment_ids:
        relative = default_spec_path(experiment_id)
        if relative is None:
            continue
        for base in bases:
            path = base / relative
            if path.is_file():
                specs.append(load_spec(path))
                break
    return specs


def _default_roots() -> List[Path]:
    """Where registry-relative spec paths are looked up when ``root=None``.

    The working directory first (an in-tree run, or a checkout carrying its
    own overrides), then the repository root derived from this package's
    location — so ``run-all`` invoked from a scratch directory still finds
    the registry defaults.
    """
    roots = [Path(".")]
    package_root = Path(__file__).resolve().parents[3]
    roots.append(package_root)
    return roots


# ---------------------------------------------------------------------------
# Domain metric extraction

#: Round every emitted number to this many decimals: keeps manifests tidy
#: and byte-stable without losing domain-relevant precision.
_DECIMALS = 9


def _round(value: float) -> float:
    return round(float(value), _DECIMALS)


def _series(window_s: float, samples: Sequence[float]) -> Dict[str, Any]:
    return {
        "window_s": _round(window_s),
        "samples": [_round(sample) for sample in samples],
    }


def _scheme_map(result: Any) -> Dict[str, Any]:
    """``{Scheme: value}`` → ``{scheme_name: value}`` without enum imports."""
    return {getattr(scheme, "value", str(scheme)): value for scheme, value in result.items()}


def _extract_fig6a(result: Any) -> Dict[str, Any]:
    by_scheme = _scheme_map(result)
    baseline = by_scheme["baseline"].throughput_by_rate
    powifi = by_scheme["powifi"].throughput_by_rate
    drops = [
        (baseline[rate] - powifi[rate]) / baseline[rate]
        for rate in sorted(baseline)
        if rate in powifi and baseline[rate] > 0
    ]
    return {
        "client.udp.max_frac_drop": _round(max(drops) if drops else 0.0),
        "client.udp.baseline.peak_mbps": _round(max(baseline.values())),
        "client.udp.powifi.peak_mbps": _round(max(powifi.values())),
    }


def _extract_fig6b(result: Any) -> Dict[str, Any]:
    by_scheme = _scheme_map(result)
    baseline = by_scheme["baseline"].median_mbps
    powifi = by_scheme["powifi"].median_mbps
    ratio = powifi / baseline if baseline > 0 else 0.0
    return {
        "client.tcp.baseline.median_mbps": _round(baseline),
        "client.tcp.powifi.median_mbps": _round(powifi),
        "client.tcp.powifi_ratio": _round(ratio),
    }


def _extract_fig6c(result: Any) -> Dict[str, Any]:
    by_scheme = _scheme_map(result)
    baseline = by_scheme["baseline"].mean_plt_s
    powifi = by_scheme["powifi"].mean_plt_s
    return {
        "client.plt.baseline.mean_s": _round(baseline),
        "client.plt.powifi.mean_s": _round(powifi),
        "client.plt.powifi_delta_s": _round(powifi - baseline),
    }


def _extract_fig7(result: Any) -> Dict[str, Any]:
    cumulative = result.cumulative
    channel_means = [series.mean for series in result.per_channel.values()]
    return {
        "channel.occupancy.cumulative.mean": _round(result.mean_cumulative),
        "channel.occupancy.min_channel_mean": _round(min(channel_means)),
        "channel.occupancy.cumulative.series": _series(
            cumulative.window_s, cumulative.samples
        ),
    }


def _extract_fig12(result: Any) -> Dict[str, Any]:
    metrics = {
        "camera.battery_free.range_feet": _round(result.battery_free_range_feet),
        "camera.battery_recharging.range_feet": _round(
            result.battery_recharging_range_feet
        ),
    }
    for feet in (8, 10):
        minutes = result.battery_free.get(feet, result.battery_free.get(float(feet)))
        if minutes is not None and math.isfinite(minutes):
            metrics[f"camera.battery_free.interframe_minutes_{feet}ft"] = _round(minutes)
    return metrics


#: Home-sensor windows are minutes (fig15 samples reads/s per 60 s window).
_FIG15_WINDOW_S = 60.0


def _extract_fig15(result: Any) -> Dict[str, Any]:
    medians = {
        index: result.median(index) for index in sorted(result.samples_by_home)
    }
    worst_home = min(medians, key=lambda index: (medians[index], index))
    metrics: Dict[str, Any] = {
        "sensor.home.min_median_rate_hz": _round(min(medians.values())),
        "sensor.home.all_deliver": 1.0 if result.all_homes_deliver_power else 0.0,
        "sensor.worst_home.rate.series": _series(
            _FIG15_WINDOW_S, result.samples_by_home[worst_home]
        ),
    }
    for index, median in medians.items():
        metrics[f"sensor.home{index}.median_rate_hz"] = _round(median)
    return metrics


#: Experiment id → extractor over the *merged* result object. Extractors
#: are duck-typed (no experiment-module imports) so this module stays
#: import-light and post-hoc tools can feed it unpickled results.
_EXTRACTORS = {
    "fig6a": _extract_fig6a,
    "fig6b": _extract_fig6b,
    "fig6c": _extract_fig6c,
    "fig7": _extract_fig7,
    "fig12": _extract_fig12,
    "fig15": _extract_fig15,
}


def domain_metrics(experiment_id: str, result: Any) -> Dict[str, Any]:
    """Domain metric streams of one merged experiment result.

    Returns ``{}`` for experiments without an extractor, for ``None``
    results, and for results whose shape the extractor does not recognise —
    domain telemetry is observability, never load-bearing, so extraction
    must not fail a run that produced a result.
    """
    extractor = _EXTRACTORS.get(experiment_id)
    if extractor is None or result is None:
        return {}
    try:
        return extractor(result)
    except Exception:
        return {}


# ---------------------------------------------------------------------------
# Metric resolution


def _normalize_series(value: Any) -> Optional[Tuple[Tuple[float, ...], Tuple[float, ...], Optional[float]]]:
    """``(times, values, window_s)`` view of a series value, else ``None``.

    Accepts the domain windowed form ``{"window_s": w, "samples": [...]}``
    (sample *i* covers ``[i*w, (i+1)*w)``) and the registry timeseries form
    ``[[t, v], ...]``.
    """
    if isinstance(value, dict) and "samples" in value:
        samples = value.get("samples")
        window = value.get("window_s")
        if not isinstance(samples, list) or not isinstance(window, (int, float)):
            return None
        values = tuple(float(sample) for sample in samples)
        times = tuple(index * float(window) for index in range(len(values)))
        return times, values, float(window)
    if isinstance(value, list) and all(
        isinstance(pair, (list, tuple)) and len(pair) == 2 for pair in value
    ):
        times = tuple(float(pair[0]) for pair in value)
        values = tuple(float(pair[1]) for pair in value)
        return times, values, None
    return None


def _parse_labels(raw: Optional[str]) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not raw:
        return labels
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ObservabilityError(f"bad label token {token!r} in registry reference")
        key, value = token.split("=", 1)
        labels[key.strip()] = value.strip()
    return labels


def _registry_lookup(
    metric: str, records: Sequence[Dict[str, Any]]
) -> Optional[Any]:
    """Resolve a ``registry:`` reference against exported metric records.

    Counters and gauges yield their value; histograms yield the requested
    ``#reduction`` (default ``mean``); timeseries yield their sample list
    (series form) or a ``#rate``/``#last``/``#count`` scalar.
    """
    match = _REGISTRY_RE.match(metric)
    if not match:
        return None
    name = match.group("name")
    labels = _parse_labels(match.group("labels"))
    reduce = match.group("reduce")
    for record in records:
        if record.get("name") != name:
            continue
        record_labels = record.get("labels") or {}
        if labels and any(
            str(record_labels.get(key)) != value for key, value in labels.items()
        ):
            continue
        kind = record.get("type")
        if kind in ("counter", "gauge"):
            return float(record.get("value", 0.0))
        if kind == "histogram":
            if reduce in (None, "mean"):
                return float(record.get("mean", 0.0))
            if reduce in ("min", "max", "count"):
                return float(record.get(reduce, 0.0))
            if reduce in ("p50", "p90", "p99"):
                quantiles = record.get("quantiles") or {}
                return float(quantiles.get("0." + reduce[1:], 0.0))
            return None
        if kind == "timeseries":
            samples = record.get("samples") or []
            if reduce is None:
                return samples
            values = [float(pair[1]) for pair in samples]
            if reduce == "count":
                return float(len(values))
            if reduce == "last":
                return values[-1] if values else 0.0
            if reduce in ("mean", "min", "max"):
                return _reduce_window(values, reduce) if values else 0.0
            if reduce == "rate":
                if len(samples) < 2:
                    return 0.0
                span = float(samples[-1][0]) - float(samples[0][0])
                if span <= 0:
                    return 0.0
                return (float(samples[-1][1]) - float(samples[0][1])) / span
            return None
    return None


def resolve_metric(
    metric: str,
    domain: Dict[str, Any],
    registry_records: Optional[Sequence[Dict[str, Any]]] = None,
) -> Optional[Any]:
    """The value behind a metric reference, or ``None`` when absent."""
    if metric.startswith("registry:"):
        if not registry_records:
            return None
        return _registry_lookup(metric, registry_records)
    return domain.get(metric)


# ---------------------------------------------------------------------------
# Evaluators


def _compare(sample: float, op: str, bound: float) -> bool:
    return sample >= bound if op == ">=" else sample <= bound


def _margin(actual: float, op: str, bound: float) -> float:
    """Signed headroom: positive = passing with room, negative = violating."""
    return actual - bound if op == ">=" else bound - actual


def _reduce_window(values: Sequence[float], reduce: str) -> float:
    if reduce == "min":
        return min(values)
    if reduce == "max":
        return max(values)
    return sum(values) / len(values)


def _skip(row: Dict[str, Any], reason: str) -> Dict[str, Any]:
    row["status"] = "skipped"
    row["reason"] = reason
    row["actual"] = None
    row["margin"] = None
    row["worst_window"] = None
    return row


def evaluate_objective(
    obj: Objective,
    domain: Dict[str, Any],
    registry_records: Optional[Sequence[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Evaluate one objective against one experiment's metric streams.

    Returns a manifest-ready row: ``status`` (``ok`` / ``violated`` /
    ``skipped``), the observed ``actual``, the signed ``margin`` (positive
    means headroom) and — for window and burn-rate kinds — the
    ``worst_window`` the verdict rests on. Pure: equal inputs produce
    byte-identical rows.
    """
    row: Dict[str, Any] = obj.to_dict()
    resolved = resolve_metric(obj.metric, domain, registry_records)
    if resolved is None:
        return _skip(row, f"metric {obj.metric!r} not found")

    series = _normalize_series(resolved)
    if obj.kind == "threshold":
        if series is not None:
            _times, values, _window = series
            if not values:
                return _skip(row, "empty series")
            actual = _reduce_window(values, obj.reduce)
        elif isinstance(resolved, (int, float)):
            actual = float(resolved)
        else:
            return _skip(row, f"metric {obj.metric!r} is not a scalar or series")
        row["actual"] = _round(actual)
        row["margin"] = _round(_margin(actual, obj.op, obj.value))
        row["worst_window"] = None
        row["status"] = "ok" if _compare(actual, obj.op, obj.value) else "violated"
        return row

    if series is None:
        return _skip(row, f"metric {obj.metric!r} is not a series")
    times, values, window = series
    if not values:
        return _skip(row, "empty series")

    if obj.kind == "window":
        worst_value, start_s, end_s = _worst_window(obj, times, values, window)
        row["actual"] = _round(worst_value)
        row["margin"] = _round(_margin(worst_value, obj.op, obj.value))
        row["worst_window"] = {
            "start_s": _round(start_s),
            "end_s": _round(end_s),
            "value": _round(worst_value),
        }
        row["status"] = (
            "ok" if _compare(worst_value, obj.op, obj.value) else "violated"
        )
        return row

    # burn_rate: per-sample violations measured against an error budget.
    violating = [not _compare(value, obj.op, obj.value) for value in values]
    fraction = sum(violating) / len(violating)
    budget = obj.budget or 0.0
    row["actual"] = _round(fraction)
    row["margin"] = _round(budget - fraction)
    row["worst_window"] = _worst_streak(violating, times, window)
    row["status"] = "ok" if fraction <= budget else "violated"
    return row


def _worst_window(
    obj: Objective,
    times: Tuple[float, ...],
    values: Tuple[float, ...],
    window: Optional[float],
) -> Tuple[float, float, float]:
    """``(worst_value, start_s, end_s)`` under the objective's direction.

    Uniform (windowed) series slide a window of ``round(window_s /
    sample_window)`` samples one sample at a time; non-uniform series
    (registry timeseries) fall back to tumbling ``window_s`` buckets keyed
    by ``floor(t / window_s)`` — coarser, but deterministic and
    order-independent.
    """
    assert obj.window_s is not None
    windows: List[Tuple[float, float, float]] = []  # (reduced, start, end)
    if window is not None and window > 0:
        count = max(1, int(round(obj.window_s / window)))
        count = min(count, len(values))
        for start in range(len(values) - count + 1):
            chunk = values[start : start + count]
            windows.append(
                (
                    _reduce_window(chunk, obj.reduce),
                    times[start],
                    times[start] + count * window,
                )
            )
    else:
        buckets: Dict[int, List[float]] = {}
        for t, value in zip(times, values):
            buckets.setdefault(int(t // obj.window_s), []).append(value)
        for index in sorted(buckets):
            windows.append(
                (
                    _reduce_window(buckets[index], obj.reduce),
                    index * obj.window_s,
                    (index + 1) * obj.window_s,
                )
            )
    # The worst window is the one closest to violating the bound: the
    # minimum for ">=" objectives, the maximum for "<=".
    if obj.op == ">=":
        return min(windows, key=lambda entry: (entry[0], entry[1]))
    return max(windows, key=lambda entry: (entry[0], -entry[1]))


def _worst_streak(
    violating: Sequence[bool], times: Tuple[float, ...], window: Optional[float]
) -> Optional[Dict[str, Any]]:
    """Longest consecutive run of violating samples, as a window record."""
    best_start = best_length = 0
    start = length = 0
    for index, bad in enumerate(violating):
        if bad:
            if length == 0:
                start = index
            length += 1
            if length > best_length:
                best_start, best_length = start, length
        else:
            length = 0
    if best_length == 0:
        return None
    end_index = best_start + best_length - 1
    end_s = times[end_index] + (window if window else 0.0)
    return {
        "start_s": _round(times[best_start]),
        "end_s": _round(end_s),
        "samples": best_length,
    }


# ---------------------------------------------------------------------------
# Run-level evaluation


def evaluate_specs(
    specs: Sequence[SloSpec],
    domains: Dict[str, Dict[str, Any]],
    errors: Optional[Dict[str, Optional[str]]] = None,
    registry_records: Optional[Sequence[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """Evaluate every spec against per-experiment domain metric maps.

    ``domains`` maps experiment id → its ``domain`` section; experiments
    absent from the map (not part of this run) or listed in ``errors``
    (failed before producing a result) yield skipped rows rather than
    verdicts. Rows come back sorted by ``(experiment, id)``.
    """
    errors = errors or {}
    rows: List[Dict[str, Any]] = []
    for spec in sorted(specs, key=lambda s: (s.experiment, s.path)):
        for obj in spec.objectives:
            if spec.experiment not in domains:
                row = _skip(obj.to_dict(), "experiment not in run")
            elif errors.get(spec.experiment):
                row = _skip(obj.to_dict(), "experiment failed")
            else:
                row = evaluate_objective(
                    obj, domains[spec.experiment], registry_records
                )
            row["experiment"] = spec.experiment
            rows.append(row)
    rows.sort(key=lambda row: (row["experiment"], row["id"]))
    return rows


def section_from_rows(
    rows: Sequence[Dict[str, Any]], spec_paths: Sequence[str]
) -> Dict[str, Any]:
    """Assemble the manifest ``slo`` section from evaluated rows."""
    counts = {
        "ok": sum(1 for row in rows if row["status"] == "ok"),
        "violated": sum(1 for row in rows if row["status"] == "violated"),
        "skipped": sum(1 for row in rows if row["status"] == "skipped"),
    }
    return {
        "schema": SLO_SCHEMA_VERSION,
        "specs": sorted(spec_paths),
        "counts": counts,
        "ok": counts["violated"] == 0,
        "objectives": list(rows),
    }


def evaluate_manifest(
    manifest: Dict[str, Any],
    specs: Sequence[SloSpec],
    registry_records: Optional[Sequence[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Post-hoc evaluation: fold specs over a manifest's domain sections."""
    domains: Dict[str, Dict[str, Any]] = {}
    errors: Dict[str, Optional[str]] = {}
    for entry in manifest.get("experiments", []):
        domains[entry["id"]] = entry.get("domain") or {}
        errors[entry["id"]] = entry.get("error")
    rows = evaluate_specs(
        specs, domains, errors=errors, registry_records=registry_records
    )
    return section_from_rows(rows, [spec.path for spec in specs])


def exit_code(section: Dict[str, Any], strict: bool = False) -> int:
    """CI gate semantics: 0 all ok, 1 violations (or, with strict, skips)."""
    counts = section.get("counts", {})
    if counts.get("violated"):
        return 1
    if strict and counts.get("skipped"):
        return 1
    return 0


def render_section(section: Dict[str, Any]) -> str:
    """Human-readable scorecard of one ``slo`` section."""
    counts = section.get("counts", {})
    lines = [
        f"== slo == ok={counts.get('ok', 0)} violated={counts.get('violated', 0)} "
        f"skipped={counts.get('skipped', 0)}"
    ]
    for row in section.get("objectives", []):
        status = row["status"]
        mark = {"ok": "PASS", "violated": "VIOL", "skipped": "SKIP"}[status]
        detail = ""
        if status == "skipped":
            detail = row.get("reason", "")
        elif row.get("kind") == "burn_rate":
            # Actual is the violating-sample fraction, judged against the
            # budget (the op/value pair defines what "violating" means).
            detail = (
                f"bad_frac={row['actual']:g} budget={row['budget']:g} "
                f"(sample {row['op']} {row['value']:g}) margin={row['margin']:+g}"
            )
        else:
            detail = f"actual={row['actual']:g} {row['op']} {row['value']:g} margin={row['margin']:+g}"
            worst = row.get("worst_window")
            if worst and "value" in worst:
                detail += (
                    f" worst[{worst['start_s']:g}s..{worst['end_s']:g}s]"
                    f"={worst['value']:g}"
                )
            elif worst:
                detail += (
                    f" streak[{worst['start_s']:g}s..{worst['end_s']:g}s]"
                    f"={worst['samples']} sample(s)"
                )
        lines.append(
            f"  {mark}  {row['experiment']:<6} {row['id']:<40} {detail}"
        )
    return "\n".join(lines)
