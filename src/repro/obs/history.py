"""Longitudinal performance memory: ``perf_history.jsonl`` and BENCH files.

The paper's evaluation is longitudinal — occupancy traces and per-home
deployments recorded over days — and this module gives the reproduction the
same property for its own runs. Every ``run-all`` appends one schema-
versioned record (per-experiment wall clock, events dispatched, heap
high-water, cache hit/miss counts, result hashes) to
``benchmarks/results/perf_history.jsonl`` and snapshots the same record as
``BENCH_<date>.json``, so "what got slower since last month" is a query over
committed JSONL rather than archaeology.

Records are derived purely from the run manifest
(:mod:`repro.runner.manifest`), so a history entry can also be rebuilt from
any archived manifest. ``python -m repro compare`` (:mod:`repro.obs.compare`)
consumes both shapes interchangeably.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.ioutil import append_line, write_atomic

#: Bump on any breaking change to the history record layout.
HISTORY_SCHEMA_VERSION = 1

#: Default location the BENCH trajectory accumulates in.
DEFAULT_HISTORY_DIR = "benchmarks/results"

#: Filename of the append-only record stream.
HISTORY_FILENAME = "perf_history.jsonl"


def _experiment_entry(entry: Dict[str, Any]) -> Dict[str, Any]:
    """One manifest ``experiments[]`` entry -> one compact history entry."""
    engine_dispatched = 0
    heap_high_watermark = 0
    for part in entry.get("parts", []):
        engine = part.get("engine") or {}
        engine_dispatched += int(engine.get("dispatched", 0))
        heap_high_watermark = max(
            heap_high_watermark, int(engine.get("heap_high_watermark", 0))
        )
    return {
        "wall_s": entry.get("duration_s", 0.0),
        "ok": entry.get("error") is None and entry.get("shape_ok") is not False,
        "cache_hit": bool(entry.get("cache_hit")),
        "result_sha256": entry.get("result_sha256", ""),
        "events_dispatched": engine_dispatched,
        "heap_high_watermark": heap_high_watermark,
    }


def build_history_record(
    manifest: Dict[str, Any],
    recorded_unix_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Render one run manifest as a perf-history record.

    ``recorded_unix_s`` defaults to the manifest's own generation stamp, so
    a record rebuilt from an archived manifest dates itself correctly.
    """
    if "experiments" not in manifest:
        raise ObservabilityError(
            "cannot build a history record: manifest has no experiments[]"
        )
    recorded = (
        manifest.get("generated_unix_s", 0.0)
        if recorded_unix_s is None
        else recorded_unix_s
    )
    experiments = {
        entry["id"]: _experiment_entry(entry) for entry in manifest["experiments"]
    }
    totals = dict(manifest.get("totals", {}))
    totals["events_dispatched"] = sum(
        e["events_dispatched"] for e in experiments.values()
    )
    totals["heap_high_watermark"] = max(
        (e["heap_high_watermark"] for e in experiments.values()), default=0
    )
    cache = manifest.get("cache", {})
    # Per-event-kind baselines (v4+ manifests carry per-part attribution
    # profiles): {kind: {component, count, wall_s}} folded across the whole
    # run, so `repro compare` can name the kind behind a wall regression.
    # Pre-v4 or --no-obs manifests simply yield {}.
    from repro.obs.profile import kind_baselines, rows_from_manifest

    kinds = kind_baselines(rows_from_manifest(manifest))
    # SLO summary (v5+ manifests): counts plus a per-objective status map,
    # enough for `repro compare` to flag an objective that flipped from ok
    # to violated between two runs without re-reading either manifest.
    # Pre-v5 manifests yield {} — compare then has nothing to say.
    slo_summary: Dict[str, Any] = {}
    slo_section = manifest.get("slo")
    if isinstance(slo_section, dict) and slo_section.get("objectives"):
        slo_summary = {
            "counts": dict(slo_section.get("counts", {})),
            "objectives": {
                f"{row.get('experiment')}:{row.get('id')}": {
                    "status": row.get("status"),
                    "margin": row.get("margin"),
                }
                for row in slo_section["objectives"]
            },
        }
    return {
        "schema": HISTORY_SCHEMA_VERSION,
        "kind": "perf_history",
        "recorded_unix_s": round(float(recorded), 3),
        "date": time.strftime("%Y-%m-%d", time.gmtime(recorded)),
        "seed": manifest.get("seed"),
        "jobs": manifest.get("jobs"),
        "code_fingerprint": manifest.get("code_fingerprint", ""),
        "cache_enabled": bool(cache.get("enabled")),
        "totals": totals,
        "experiments": experiments,
        "kinds": kinds,
        "slo": slo_summary,
    }


def append_history(
    record: Dict[str, Any],
    directory: Union[str, Path] = DEFAULT_HISTORY_DIR,
) -> Path:
    """Append one record to ``<directory>/perf_history.jsonl``.

    Creates the directory (and file) on first use; returns the file path.
    The record goes down as one ``O_APPEND`` write
    (:func:`repro.obs.ioutil.append_line`), so a killed run can tear at
    most the final newline, never an earlier record.
    """
    return append_line(
        Path(directory) / HISTORY_FILENAME, json.dumps(record, sort_keys=True)
    )


def write_bench_snapshot(
    record: Dict[str, Any],
    directory: Union[str, Path] = DEFAULT_HISTORY_DIR,
) -> Path:
    """Write the record as ``BENCH_<date>.json`` (same-day runs overwrite).

    The dated snapshot is the human-browsable point on the BENCH
    trajectory; the JSONL stream is the machine-diffable one. Written
    atomically so a same-day overwrite can never tear the previous
    snapshot.
    """
    return write_atomic(
        Path(directory) / f"BENCH_{record['date']}.json",
        json.dumps(record, indent=2, sort_keys=True) + "\n",
    )


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read every record of a ``perf_history.jsonl`` stream, oldest first.

    Blank lines are tolerated (interrupted appends never corrupt earlier
    records); malformed lines raise
    :class:`~repro.errors.ObservabilityError` naming the line number.
    """
    records: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: malformed history record ({exc})"
                ) from exc
    return records
