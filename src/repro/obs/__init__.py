"""Observability: metrics registry, energy ledger, and runtime wiring.

The telemetry-first layer behind every performance claim in this repo: the
paper measured channel occupancy, queue behaviour and harvested energy with
tcpdump/tshark and router counters; the simulator measures them here. See
``docs/observability.md`` for naming conventions and the JSONL schemas.

Typical use::

    from repro.obs import runtime

    runtime.reset()                     # fresh registry + trace
    ... run an experiment ...
    runtime.get_registry().to_jsonl("metrics.jsonl")
"""

from __future__ import annotations

from repro.obs.compare import compare_runs, load_run, render_compare
from repro.obs.energy import EnergyLedger
from repro.obs.live import (
    LIVE_SCHEMA_VERSION,
    LiveChannel,
    LivePublisher,
    LiveSink,
    WatchState,
    render_board,
    replay,
    tail_jsonl,
)
from repro.obs.profile import (
    PROFILE_SCHEMA_VERSION,
    KindRow,
    collapse_stacks,
    deterministic_records,
    kind_baselines,
    render_attribution,
    rows_from_engine,
    rows_from_manifest,
    write_flame,
)
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    build_history_record,
    load_history,
    write_bench_snapshot,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    Timeseries,
)
from repro.obs.spans import (
    NULL_SPANS,
    SPAN_SCHEMA_VERSION,
    Span,
    SpanRecorder,
    render_span_tree,
)
from repro.obs import runtime

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EnergyLedger",
    "Gauge",
    "HISTORY_SCHEMA_VERSION",
    "Histogram",
    "KindRow",
    "LIVE_SCHEMA_VERSION",
    "LiveChannel",
    "LivePublisher",
    "LiveSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_SPANS",
    "PROFILE_SCHEMA_VERSION",
    "SPAN_SCHEMA_VERSION",
    "Span",
    "SpanRecorder",
    "Timeseries",
    "WatchState",
    "append_history",
    "build_history_record",
    "collapse_stacks",
    "compare_runs",
    "deterministic_records",
    "kind_baselines",
    "load_history",
    "load_run",
    "render_attribution",
    "render_board",
    "render_compare",
    "render_span_tree",
    "replay",
    "rows_from_engine",
    "rows_from_manifest",
    "runtime",
    "tail_jsonl",
    "write_bench_snapshot",
    "write_flame",
]
