"""Observability: metrics registry, energy ledger, and runtime wiring.

The telemetry-first layer behind every performance claim in this repo: the
paper measured channel occupancy, queue behaviour and harvested energy with
tcpdump/tshark and router counters; the simulator measures them here. See
``docs/observability.md`` for naming conventions and the JSONL schemas.

Typical use::

    from repro.obs import runtime

    runtime.reset()                     # fresh registry + trace
    ... run an experiment ...
    runtime.get_registry().to_jsonl("metrics.jsonl")
"""

from __future__ import annotations

from repro.obs.energy import EnergyLedger
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    Timeseries,
)
from repro.obs import runtime

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EnergyLedger",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Timeseries",
    "runtime",
]
