"""Deterministic attribution profiler: *which event kinds* cost the run.

``Simulator.stats`` (and the span tree) say how long a run took; this
module says where it went — charging wall-clock and dispatch counts to
``(event kind, component, experiment part)`` triples. The engine supplies
the raw material (:class:`repro.sim.engine.SimulatorStats`: exact per-kind
counters, stride-sampled wall-clock, a component resolved per kind, and the
sim-time window each kind was active in); this module turns it into

* a **hot-spot table** (``render_attribution``) comparing per-kind sim-time
  coverage against wall-time cost, with share-of-total and per-dispatch
  cost columns;
* **collapsed-stack output** (``collapse_stacks`` / ``write_flame``) in the
  ``frame;frame;frame value`` format ``flamegraph.pl`` and speedscope
  import directly — one stack per (experiment, part, component, kind),
  valued in integer microseconds of attributed wall-clock;
* **deterministic records** (``deterministic_records``) — the wall-free
  projection (kind, component, counts, sim bounds) that is byte-identical
  at equal seed, which is how profiler determinism is tested and CI-gated.

Attribution rows flow from three sources: a live engine aggregate
(:func:`repro.obs.runtime.aggregate_engine_stats`), a v4+ run manifest
(per-part ``engine.profile`` sections), or a ``metrics_*.jsonl`` export
(its trailing engine record). The per-kind baselines a ``run-all`` records
into ``perf_history.jsonl`` (``kinds`` section,
:func:`repro.obs.history.build_history_record`) come from the same rows,
so ``python -m repro compare`` can name the event kind that regressed.

The profiler observes only — it never touches simulation time or any
random stream, and ``--no-obs`` runs carry no attribution state at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.ioutil import write_atomic

#: Bump on any breaking change to the attribution record layout.
PROFILE_SCHEMA_VERSION = 1

#: Sort orders :func:`sort_rows` understands.
SORT_KEYS = ("wall", "count")


@dataclass
class KindRow:
    """Attribution of one event kind within one (experiment, part) scope."""

    kind: str
    component: str
    count: int
    wall_s: float
    sim_first_s: Optional[float] = None
    sim_last_s: Optional[float] = None
    experiment: str = ""
    part: str = ""

    @property
    def sim_window_s(self) -> Optional[float]:
        """Sim seconds between the kind's first and last dispatch."""
        if self.sim_first_s is None or self.sim_last_s is None:
            return None
        return self.sim_last_s - self.sim_first_s

    @property
    def wall_per_dispatch_us(self) -> float:
        """Mean attributed wall-clock per dispatch, in microseconds."""
        return 1e6 * self.wall_s / self.count if self.count else 0.0

    def to_record(self) -> Dict[str, Any]:
        """JSON-safe dict form (includes the host-varying wall columns)."""
        return {
            "type": "profile_kind",
            "experiment": self.experiment,
            "part": self.part,
            "kind": self.kind,
            "component": self.component,
            "count": self.count,
            "wall_s": round(self.wall_s, 6),
            "sim_first_s": self.sim_first_s,
            "sim_last_s": self.sim_last_s,
        }


def rows_from_engine(
    engine: Dict[str, Any], experiment: str = "", part: str = ""
) -> List[KindRow]:
    """Attribution rows from one engine aggregate / engine JSONL record.

    Accepts the dict shape of
    :func:`repro.obs.runtime.aggregate_engine_stats` and of
    ``SimulatorStats.to_dict``; tolerates records predating component /
    sim-bound attribution (those columns come back empty). Rows are sorted
    by kind name, so the output order is deterministic.
    """
    counts = engine.get("callback_counts") or {}
    walls = engine.get("callback_wall_s") or {}
    components = engine.get("callback_components") or {}
    bounds = engine.get("callback_sim_bounds") or {}
    rows = []
    for kind in sorted(counts):
        window = bounds.get(kind)
        rows.append(
            KindRow(
                kind=kind,
                component=str(components.get(kind, "")),
                count=int(counts[kind]),
                wall_s=float(walls.get(kind, 0.0)),
                sim_first_s=None if window is None else float(window[0]),
                sim_last_s=None if window is None else float(window[1]),
                experiment=experiment,
                part=part,
            )
        )
    return rows


def rows_from_manifest(manifest: Dict[str, Any]) -> List[KindRow]:
    """Attribution rows from a run manifest's per-part ``engine.profile``.

    Parts executed with observability off (or cache hits, which carry no
    engine profile) contribute nothing; pre-v4 manifests yield ``[]``.
    """
    rows: List[KindRow] = []
    for entry in manifest.get("experiments", []):
        for part in entry.get("parts", []):
            profile = (part.get("engine") or {}).get("profile") or {}
            for kind in sorted(profile):
                detail = profile[kind]
                rows.append(
                    KindRow(
                        kind=kind,
                        component=str(detail.get("component", "")),
                        count=int(detail.get("count", 0)),
                        wall_s=float(detail.get("wall_s", 0.0)),
                        sim_first_s=detail.get("sim_first_s"),
                        sim_last_s=detail.get("sim_last_s"),
                        experiment=str(entry.get("id", "")),
                        part=str(part.get("part", "")),
                    )
                )
    return rows


def rows_from_metrics_jsonl(path: Union[str, Path]) -> List[KindRow]:
    """Attribution rows from a ``metrics_*.jsonl`` export's engine records."""
    merged: List[KindRow] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: malformed metrics record ({exc})"
                ) from exc
            if record.get("type") == "engine":
                merged.extend(rows_from_engine(record))
    return aggregate_rows(merged)


def aggregate_rows(
    rows: Iterable[KindRow], by_part: bool = False
) -> List[KindRow]:
    """Merge rows sharing a (kind, component) identity.

    ``by_part=True`` keeps (experiment, part) scopes separate (the flame
    output wants them); the default folds a whole run into one row per
    kind+component. Counts and wall sum; sim bounds widen to cover every
    contributing row; the merged scope fields are blanked when they differ.
    """
    merged: Dict[Tuple[str, ...], KindRow] = {}
    for row in rows:
        key: Tuple[str, ...] = (row.kind, row.component)
        if by_part:
            key = (row.experiment, row.part) + key
        existing = merged.get(key)
        if existing is None:
            merged[key] = replace(row)
            continue
        existing.count += row.count
        existing.wall_s += row.wall_s
        if row.sim_first_s is not None:
            existing.sim_first_s = (
                row.sim_first_s
                if existing.sim_first_s is None
                else min(existing.sim_first_s, row.sim_first_s)
            )
        if row.sim_last_s is not None:
            existing.sim_last_s = (
                row.sim_last_s
                if existing.sim_last_s is None
                else max(existing.sim_last_s, row.sim_last_s)
            )
        if existing.experiment != row.experiment:
            existing.experiment = ""
        if existing.part != row.part:
            existing.part = ""
    return [merged[key] for key in sorted(merged)]


def sort_rows(rows: Sequence[KindRow], sort: str = "wall") -> List[KindRow]:
    """Rows costliest-first by ``wall`` or ``count`` (kind breaks ties)."""
    if sort not in SORT_KEYS:
        raise ObservabilityError(
            f"unknown profile sort {sort!r}; expected one of {SORT_KEYS}"
        )
    if sort == "count":
        return sorted(rows, key=lambda row: (-row.count, row.kind))
    return sorted(rows, key=lambda row: (-row.wall_s, row.kind))


def attributed_wall_s(rows: Iterable[KindRow]) -> float:
    """Total wall-clock the rows account for."""
    return sum(row.wall_s for row in rows)


def coverage(rows: Iterable[KindRow], total_wall_s: float) -> float:
    """Fraction of ``total_wall_s`` the attribution explains (0 when unknown)."""
    if total_wall_s <= 0:
        return 0.0
    return attributed_wall_s(rows) / total_wall_s


def deterministic_records(rows: Iterable[KindRow]) -> List[Dict[str, Any]]:
    """The wall-free projection: byte-identical at equal seed.

    Kinds, components, exact dispatch counts and sim-time bounds are pure
    functions of the seeded simulation; the sampled wall-clock is not.
    Tests and the CI determinism gate serialise this with
    ``json.dumps(..., sort_keys=True)`` and compare bytes.
    """
    ordered = sorted(rows, key=lambda r: (r.experiment, r.part, r.kind, r.component))
    return [
        {
            "experiment": row.experiment,
            "part": row.part,
            "kind": row.kind,
            "component": row.component,
            "count": row.count,
            "sim_first_s": row.sim_first_s,
            "sim_last_s": row.sim_last_s,
        }
        for row in ordered
    ]


def collapse_stacks(rows: Iterable[KindRow]) -> List[str]:
    """Collapsed-stack lines: ``experiment;part;component;kind <usec>``.

    The format ``flamegraph.pl`` consumes and speedscope auto-detects: one
    semicolon-joined frame stack per line, root frame first, followed by a
    space and an integer sample value — here microseconds of attributed
    wall-clock (floored at 1 so a counted-but-cheap kind stays visible).
    Rows with no dispatches are skipped; frame text is sanitised (``;`` and
    whitespace can never corrupt the stack separator).
    """

    def frame(text: str, fallback: str) -> str:
        text = (text or fallback).replace(";", ":")
        return "".join(ch if not ch.isspace() else "_" for ch in text)

    lines = []
    for row in sorted(
        rows, key=lambda r: (r.experiment, r.part, r.component, r.kind)
    ):
        if row.count <= 0:
            continue
        stack = ";".join(
            (
                frame(row.experiment, "run"),
                frame(row.part, "all"),
                frame(row.component, "unknown"),
                frame(row.kind, "event"),
            )
        )
        lines.append(f"{stack} {max(1, round(1e6 * row.wall_s))}")
    return lines


def write_flame(rows: Iterable[KindRow], path: Union[str, Path]) -> int:
    """Write collapsed stacks to ``path``; returns the line count."""
    lines = collapse_stacks(rows)
    write_atomic(path, "\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def render_attribution(
    rows: Sequence[KindRow],
    total_wall_s: Optional[float] = None,
    sort: str = "wall",
    top: Optional[int] = None,
) -> str:
    """The per-kind sim-time vs wall-time hot-spot table.

    One line per kind: dispatch count, attributed wall seconds with
    share-of-attributed-total, mean cost per dispatch, the sim-time window
    the kind was active in, and the owning component. A footer reports
    attribution coverage when the caller supplies the measured total
    (``attributed 1.82s of 1.91s measured (95.3%)``).
    """
    ordered = sort_rows(rows, sort)
    shown = ordered if top is None else ordered[: max(0, top)]
    total_attr = attributed_wall_s(ordered)
    total_count = sum(row.count for row in ordered)
    lines = [
        f"{'kind':<26} {'count':>10} {'wall':>9} {'%wall':>6} "
        f"{'us/call':>8} {'sim window':>12}  component"
    ]
    for row in shown:
        share = 100.0 * row.wall_s / total_attr if total_attr > 0 else 0.0
        window = row.sim_window_s
        window_text = "-" if window is None else f"{window:g}s"
        lines.append(
            f"{row.kind:<26} {row.count:>10} {row.wall_s:>8.3f}s {share:>5.1f}% "
            f"{row.wall_per_dispatch_us:>8.2f} {window_text:>12}  {row.component}"
        )
    if len(shown) < len(ordered):
        hidden = len(ordered) - len(shown)
        hidden_wall = total_attr - attributed_wall_s(shown)
        lines.append(
            f"... {hidden} more kind(s), {hidden_wall:.3f}s "
            f"({100.0 * hidden_wall / total_attr if total_attr > 0 else 0.0:.1f}%)"
        )
    lines.append(
        f"total: {len(ordered)} kinds, {total_count} dispatches, "
        f"{total_attr:.3f}s attributed"
    )
    if total_wall_s is not None and total_wall_s > 0:
        lines.append(
            f"attributed {total_attr:.3f}s of {total_wall_s:.3f}s measured "
            f"({100.0 * coverage(ordered, total_wall_s):.1f}%)"
        )
    return "\n".join(lines)


def kind_baselines(rows: Iterable[KindRow]) -> Dict[str, Dict[str, Any]]:
    """Per-kind baseline map for ``perf_history.jsonl`` records.

    Folds every (experiment, part) scope into one entry per kind:
    ``{kind: {component, count, wall_s}}``. ``repro compare`` diffs these
    between runs to name the event kind behind a wall-clock regression.
    """
    baselines: Dict[str, Dict[str, Any]] = {}
    for row in aggregate_rows(rows):
        entry = baselines.get(row.kind)
        if entry is None:
            baselines[row.kind] = {
                "component": row.component,
                "count": row.count,
                "wall_s": round(row.wall_s, 6),
            }
        else:
            entry["count"] += row.count
            entry["wall_s"] = round(entry["wall_s"] + row.wall_s, 6)
    return {kind: baselines[kind] for kind in sorted(baselines)}
