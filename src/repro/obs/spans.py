"""Hierarchical span tracing: where did this run spend its time?

Metrics (:mod:`repro.obs.metrics`) answer "how much, in total"; spans answer
"where, inside the run". A :class:`Span` is one named, labelled interval with
a wall-clock duration and (when the work happened inside a simulator)
sim-time bounds. Spans nest: ``runner.run_all`` is the root of a ``run-all``
invocation, each task execution (``runner.task``) is a child, and experiment
drivers / ``Simulator.run`` / mac80211 hot paths open spans beneath that —
the longitudinal analogue of the paper's tcpdump timelines, but for the
reproduction's own execution.

Determinism contract: span *ids, parent links, names and labels* are fully
deterministic for a given plan (ids are sequential per recorder, prefixed so
worker processes can never collide with the parent); only the wall-clock
readings vary between hosts. Recording spans never touches simulation time
or any random stream, so a seeded run is bit-identical with spans on or off.

Crossing the ``ProcessPoolExecutor`` boundary: the parent serialises a
``(root span id, id prefix)`` context into each task
(:class:`repro.runner.tasks.SpanContext`); the worker records into its own
recorder under that prefix and ships the finished records back with the
result, where :meth:`SpanRecorder.adopt` grafts them into the parent's tree.

Span names follow the metric convention — dotted lowercase,
``layer.component.operation`` — and are linted as literals (rule PW006).
"""

from __future__ import annotations

import itertools
import json
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Sequence, TextIO, Union

from repro.errors import ObservabilityError
from repro.obs.metrics import _NAME_RE, LabelValue

#: Bump on any breaking change to the span record layout.
SPAN_SCHEMA_VERSION = 1

#: Retention bound: a pathological hot loop cannot grow the recorder without
#: limit; spans beyond the cap are counted in :attr:`SpanRecorder.dropped`.
MAX_SPANS = 100_000

#: Sentinel distinguishing "no parent passed" from "explicitly parentless".
_UNSET = object()


class Span:
    """One named interval in the run's execution tree.

    Attributes
    ----------
    span_id / parent_id:
        Deterministic identifiers; ``parent_id`` is ``None`` for a root.
    name:
        Dotted-lowercase span name (``runner.task``, ``sim.engine.run``).
    labels:
        Dimension dict (``experiment="fig5"``); mutated only by
        :meth:`SpanRecorder.end` extras.
    wall_start_s / wall_s:
        Wall-clock start relative to the recorder's epoch, and duration.
        ``wall_s`` is ``None`` while the span is open.
    sim_start_s / sim_end_s:
        Optional simulation-time bounds for spans opened inside a simulator.
    status:
        ``"ok"``, ``"error"``, or ``"open"`` (never closed before export).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "labels",
        "wall_start_s",
        "wall_s",
        "sim_start_s",
        "sim_end_s",
        "status",
    )

    def __init__(
        self,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        labels: Dict[str, LabelValue],
        wall_start_s: float,
        sim_start_s: Optional[float] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.labels = labels
        self.wall_start_s = wall_start_s
        self.wall_s: Optional[float] = None
        self.sim_start_s = sim_start_s
        self.sim_end_s: Optional[float] = None
        self.status = "open"

    @property
    def sim_duration_s(self) -> Optional[float]:
        """Simulated seconds covered, when both sim bounds were recorded."""
        if self.sim_start_s is None or self.sim_end_s is None:
            return None
        return self.sim_end_s - self.sim_start_s

    def to_record(self) -> Dict[str, Any]:
        """JSON-safe dict form (the JSONL span schema)."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "labels": dict(self.labels),
            "wall_start_s": round(self.wall_start_s, 6),
            "wall_s": None if self.wall_s is None else round(self.wall_s, 6),
            "sim_start_s": self.sim_start_s,
            "sim_end_s": self.sim_end_s,
            "status": self.status,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.span_id} {self.name!r} {self.status}>"


class SpanRecorder:
    """Collects one process's spans and maintains the active-span stack.

    Parameters
    ----------
    id_prefix:
        Prepended to every span id (``"s"`` -> ``s1, s2, ...``). The runner
        hands each worker task a unique prefix (``"t03."``) so ids merged
        back into the parent can never collide.
    detail:
        Whether hot-path sites (per-transmission mac80211 spans) record.
        Coarse spans always record; detail spans are an opt-in firehose,
        exactly like trace kinds.
    max_spans:
        Retention cap; spans beyond it still nest correctly but are only
        counted (:attr:`dropped`), not retained.
    enabled:
        A disabled recorder is the ``--no-obs`` mode: every method is a
        cheap no-op and :meth:`span` yields a shared dummy span.
    """

    def __init__(
        self,
        id_prefix: str = "s",
        detail: bool = False,
        max_spans: int = MAX_SPANS,
        enabled: bool = True,
    ) -> None:
        self._enabled = bool(enabled)
        self._prefix = id_prefix
        self.detail = bool(detail) and self._enabled
        self._max_spans = max_spans
        self._counter = itertools.count(1)
        self._epoch = perf_counter()
        self._spans: List[Span] = []
        self._adopted: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        """Whether this recorder records anything."""
        return self._enabled

    def __len__(self) -> int:
        return len(self._spans) + len(self._adopted)

    # -------------------------------------------------------------- recording

    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def begin(
        self,
        name: str,
        parent_id: Any = _UNSET,
        sim_start_s: Optional[float] = None,
        **labels: LabelValue,
    ) -> Span:
        """Open a span; it becomes the parent of subsequently opened spans.

        ``parent_id`` defaults to the current innermost span (``None`` at
        the top level); pass it explicitly to graft under a span from
        another process (the worker-side task span does this).
        """
        if not self._enabled:
            return _DUMMY_SPAN
        if not _NAME_RE.match(name) or "." not in name:
            raise ObservabilityError(
                f"span name {name!r} is not dotted lowercase "
                "(expected layer.component.operation)"
            )
        if parent_id is _UNSET:
            current = self.current()
            parent_id = current.span_id if current is not None else None
        span = Span(
            span_id=f"{self._prefix}{next(self._counter)}",
            parent_id=parent_id,
            name=name,
            labels=dict(labels),
            wall_start_s=perf_counter() - self._epoch,
            sim_start_s=sim_start_s,
        )
        if len(self._spans) < self._max_spans:
            self._spans.append(span)
        else:
            self.dropped += 1
        self._stack.append(span)
        return span

    def end(
        self,
        span: Span,
        sim_end_s: Optional[float] = None,
        status: str = "ok",
        **labels: LabelValue,
    ) -> None:
        """Close a span (tolerates out-of-order closes for event-driven
        spans whose end arrives via a scheduled callback)."""
        if not self._enabled or span is _DUMMY_SPAN:
            return
        span.wall_s = (perf_counter() - self._epoch) - span.wall_start_s
        span.sim_end_s = sim_end_s if sim_end_s is not None else span.sim_end_s
        span.status = status
        if labels:
            span.labels.update(labels)
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index] is span:
                del self._stack[index]
                break

    @contextmanager
    def span(
        self,
        name: str,
        sim_start_s: Optional[float] = None,
        **labels: LabelValue,
    ) -> Iterator[Span]:
        """Context-managed :meth:`begin`/:meth:`end` pair.

        A raised exception closes the span with ``status="error"`` and
        propagates.
        """
        opened = self.begin(name, sim_start_s=sim_start_s, **labels)
        try:
            yield opened
        except BaseException:
            self.end(opened, status="error")
            raise
        self.end(opened)

    def adopt(self, records: Sequence[Dict[str, Any]]) -> None:
        """Graft finished span records from another process into this tree.

        Records arrive pre-serialised (the worker's ``to_records()``); their
        parent ids already point at this recorder's spans via the span
        context the worker was handed, so adoption is a plain append.
        """
        if not self._enabled:
            return
        self._adopted.extend(dict(record) for record in records)

    # ----------------------------------------------------------------- export

    def to_records(self) -> List[Dict[str, Any]]:
        """Every span (own + adopted) as JSON-safe records."""
        return [span.to_record() for span in self._spans] + [
            dict(record) for record in self._adopted
        ]

    def to_jsonl(self, target: Union[str, TextIO]) -> int:
        """Write one JSON line per span; returns the line count."""
        records = self.to_records()
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record) + "\n")
        else:
            for record in records:
                target.write(json.dumps(record) + "\n")
        return len(records)

    def clear(self) -> None:
        """Drop every recorded span (fresh run)."""
        self._spans.clear()
        self._adopted.clear()
        self._stack.clear()
        self.dropped = 0


#: Shared closed dummy handed out by disabled recorders.
_DUMMY_SPAN = Span("noop", None, "obs.noop", {}, 0.0)
_DUMMY_SPAN.wall_s = 0.0
_DUMMY_SPAN.status = "ok"

#: Shared always-disabled recorder for unobserved components.
NULL_SPANS = SpanRecorder(enabled=False)


# ------------------------------------------------------------- tree rendering


def _format_labels(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def render_span_tree(
    records: Sequence[Dict[str, Any]],
    max_depth: Optional[int] = None,
    bar_width: int = 24,
) -> str:
    """Render span records as an indented flame-style text tree.

    Children print under their parent in record order; each line shows the
    name+labels, the wall-clock duration, a bar proportional to the share of
    the root's wall time, and the simulated seconds covered when the span
    carried sim-time bounds. Orphans (parent dropped by the retention cap or
    filtered out) print at the top level, so a truncated export still
    renders.
    """
    by_id: Dict[str, Dict[str, Any]] = {}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for record in records:
        by_id[record["span_id"]] = record
    for record in records:
        parent = record.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None  # orphan: parent dropped or filtered
        children.setdefault(parent, []).append(record)

    roots = children.get(None, [])
    total = max(
        (r.get("wall_s") or 0.0 for r in roots), default=0.0
    ) or max((r.get("wall_s") or 0.0 for r in records), default=0.0)

    lines: List[str] = []

    def emit(record: Dict[str, Any], depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        wall = record.get("wall_s")
        wall_text = "   open " if wall is None else f"{wall:8.3f}s"
        bar = ""
        if total > 0 and wall is not None:
            bar = "#" * max(1, round(bar_width * wall / total)) if wall else ""
        sim_text = ""
        start, end = record.get("sim_start_s"), record.get("sim_end_s")
        if start is not None and end is not None:
            sim_text = f"  sim {end - start:g}s"
        status = record.get("status", "ok")
        flag = "" if status == "ok" else f"  [{status}]"
        label = f"{record['name']}{_format_labels(record.get('labels', {}))}"
        lines.append(
            f"{'  ' * depth}{label:<{max(44 - 2 * depth, 8)}} "
            f"{wall_text} {bar:<{bar_width}}{sim_text}{flag}".rstrip()
        )
        for child in children.get(record["span_id"], []):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)
