"""The metrics registry: named, labelled instruments for the whole stack.

Every layer of the simulator registers instruments here — DCF collision
counters, per-channel airtime, txqueue depth, injector duty cycle, harvested
energy — playing the role the router-side counters and tcpdump statistics
played in the paper's evaluation (§4). Instruments are addressed by a dotted
lowercase name (``layer.component.metric``, see ``docs/observability.md``)
plus a label dict, so ``registry.counter("mac.medium.collisions", channel=6)``
always resolves to the same underlying counter.

Four instrument types:

* :class:`Counter` — monotonically increasing total (float increments OK);
* :class:`Gauge` — a value that goes up and down;
* :class:`Histogram` — fixed-bucket distribution plus a deterministic
  streaming reservoir for quantile estimates;
* :class:`Timeseries` — sim-time-stamped gauge samples (time must be
  monotonically non-decreasing).

The registry is deliberately simulation-agnostic: it never touches the event
loop or any random stream, so enabling or disabling observability can never
perturb a seeded run. A disabled registry hands out shared no-op instruments
whose mutators are empty methods, which is the ``--no-obs`` escape hatch.
"""

from __future__ import annotations

import bisect
import json
import re
import time
from contextlib import contextmanager
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from repro.errors import ObservabilityError

#: ``layer.component.metric`` — lowercase dotted segments.
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

#: Default histogram bucket upper bounds (generic small-count scale).
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)

#: Bucket upper bounds (seconds) for :meth:`MetricsRegistry.timer`
#: histograms — wall-clock spans from sub-millisecond to a few minutes.
TIMER_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300,
)

#: Reservoir size bound for streaming quantiles; beyond it the reservoir is
#: decimated 2:1 and the admission stride doubles (deterministic — no RNG).
_RESERVOIR_MAX = 512

LabelValue = Union[str, int, float, bool]
Labels = Tuple[Tuple[str, LabelValue], ...]


def _freeze_labels(labels: Dict[str, LabelValue]) -> Labels:
    return tuple(sorted(labels.items()))


class _Instrument:
    """Shared identity for all instrument types."""

    kind = "instrument"

    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels

    @property
    def label_dict(self) -> Dict[str, LabelValue]:
        """Labels as a plain dict (for export)."""
        return dict(self.labels)

    def _base_record(self) -> Dict[str, Any]:
        return {"type": self.kind, "name": self.name, "labels": self.label_dict}

    def to_record(self) -> Dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"<{type(self).__name__} {self.name}{{{labels}}}>"


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self, name: str, labels: Labels) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def to_record(self) -> Dict[str, Any]:
        record = self._base_record()
        record["value"] = self.value
        return record


class Gauge(_Instrument):
    """A point-in-time value that may move in either direction."""

    kind = "gauge"

    __slots__ = ("value", "updates")

    def __init__(self, name: str, labels: Labels) -> None:
        super().__init__(name, labels)
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)
        self.updates += 1

    def inc(self, amount: float = 1.0) -> None:
        """Shift the gauge up by ``amount``."""
        self.value += amount
        self.updates += 1

    def dec(self, amount: float = 1.0) -> None:
        """Shift the gauge down by ``amount``."""
        self.value -= amount
        self.updates += 1

    def to_record(self) -> Dict[str, Any]:
        record = self._base_record()
        record["value"] = self.value
        record["updates"] = self.updates
        return record


class Histogram(_Instrument):
    """Fixed-bucket distribution with a streaming quantile reservoir.

    Bucket ``i`` counts observations ``v <= edges[i]``; one overflow bucket
    counts the rest. Quantiles are estimated from a bounded reservoir thinned
    deterministically (keep-every-``stride``-th), so histograms never perturb
    seeded runs and memory stays O(1) for arbitrarily long simulations.
    """

    kind = "histogram"

    __slots__ = (
        "edges",
        "bucket_counts",
        "count",
        "sum",
        "min",
        "max",
        "_reservoir",
        "_stride",
        "_seen",
    )

    def __init__(
        self,
        name: str,
        labels: Labels,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ObservabilityError(f"histogram {name!r} needs at least one bucket")
        if list(edges) != sorted(set(edges)):
            raise ObservabilityError(
                f"histogram {name!r} bucket edges must be strictly increasing"
            )
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: List[float] = []
        self._stride = 1
        self._seen = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._seen % self._stride == 0:
            self._reservoir.append(value)
            if len(self._reservoir) > _RESERVOIR_MAX:
                self._reservoir = self._reservoir[::2]
                self._stride *= 2
        self._seen += 1

    def observe_many(self, value: float, n: int) -> None:
        """Record ``n`` identical observations in O(admitted) time.

        Byte-for-byte equivalent to ``n`` sequential :meth:`observe` calls —
        same bucket counts, sum, min/max, and the same reservoir contents,
        stride and decimation points — which is what lets bulk-settling
        components (the injector's idle-tick fast-forward) skip the per-event
        loop without perturbing any exported record.

        >>> a, b = Histogram("demo", (), (1, 5)), Histogram("demo", (), (1, 5))
        >>> for _ in range(1300): a.observe(3.0)
        >>> b.observe_many(3.0, 1300)
        >>> (a.to_record() == b.to_record(), a._stride == b._stride,
        ...  a._seen == b._seen, a._reservoir == b._reservoir)
        (True, True, True, True)
        >>> for _ in range(77): a.observe(0.1)  # non-exact float sums too
        >>> b.observe_many(0.1, 77)
        >>> a.to_record() == b.to_record()
        True
        """
        if n <= 0:
            return
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.edges, value)] += n
        self.count += n
        # ``sum`` must finish byte-identical to n sequential ``+= value``
        # adds. Integer-valued accumulations (depth histograms) stay exact
        # in closed form; otherwise replay the additions.
        bulk = value * n
        if (
            value.is_integer()
            and self.sum.is_integer()
            and abs(self.sum) + abs(bulk) <= 2**53
        ):
            self.sum += bulk
        else:
            acc = self.sum
            for _ in range(n):
                acc += value
            self.sum = acc
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Replay only the admitted samples: positions where
        # ``_seen % _stride == 0``, with the stride doubling whenever the
        # reservoir overflows — identical to the scalar path.
        remaining = n
        while remaining > 0:
            gap = -self._seen % self._stride
            if gap >= remaining:
                self._seen += remaining
                return
            self._seen += gap + 1
            remaining -= gap + 1
            self._reservoir.append(value)
            if len(self._reservoir) > _RESERVOIR_MAX:
                self._reservoir = self._reservoir[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) from the reservoir.

        Edge cases are part of the contract (SLO evaluators and the span
        summary rely on them):

        * **empty histogram** — returns ``0.0``, never raises;
        * **single observation** — returns that observation for every ``q``;
        * ``q`` outside [0, 1] (NaN included) raises
          :class:`~repro.errors.ObservabilityError` — an out-of-range
          quantile is a caller bug, not a data condition.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100]).

        Convenience alias over :meth:`quantile` so consumers (the span
        summary, ``repro compare`` tooling) never re-implement bucket math;
        it inherits :meth:`quantile`'s documented edge cases — ``0.0`` on an
        empty histogram, the sole observation when only one was recorded,
        and :class:`~repro.errors.ObservabilityError` outside [0, 100].

        >>> h = Histogram("demo.wall_s", (), buckets=(1, 10))
        >>> for value in range(1, 11):
        ...     h.observe(float(value))
        >>> h.percentile(50.0)
        6.0
        >>> Histogram("empty", (), buckets=(1,)).percentile(99.0)
        0.0
        """
        if not 0.0 <= q <= 100.0:
            raise ObservabilityError(f"percentile must be in [0, 100], got {q}")
        return self.quantile(q / 100.0)

    def to_record(self) -> Dict[str, Any]:
        record = self._base_record()
        record.update(
            count=self.count,
            sum=self.sum,
            mean=self.mean,
            min=self.min if self.count else 0.0,
            max=self.max if self.count else 0.0,
            buckets=[
                [edge, count] for edge, count in zip(self.edges, self.bucket_counts)
            ]
            + [["+inf", self.bucket_counts[-1]]],
            quantiles={
                "0.5": self.quantile(0.5),
                "0.9": self.quantile(0.9),
                "0.99": self.quantile(0.99),
            },
        )
        return record


class Timeseries(_Instrument):
    """Sim-time-stamped gauge samples.

    Sample times must be monotonically non-decreasing — simulation time never
    runs backwards, so a violation always indicates a wiring bug and raises
    :class:`~repro.errors.ObservabilityError`.
    """

    kind = "timeseries"

    __slots__ = ("samples",)

    def __init__(self, name: str, labels: Labels) -> None:
        super().__init__(name, labels)
        self.samples: List[Tuple[float, float]] = []

    def sample(self, time_s: float, value: float) -> None:
        """Append one ``(time, value)`` sample."""
        if self.samples and time_s < self.samples[-1][0]:
            raise ObservabilityError(
                f"timeseries {self.name!r} time went backwards: "
                f"{time_s} < {self.samples[-1][0]}"
            )
        self.samples.append((float(time_s), float(value)))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent sample, or None when empty."""
        return self.samples[-1] if self.samples else None

    def values(self) -> List[float]:
        """The sampled values in time order."""
        return [v for _, v in self.samples]

    def rate(self) -> float:
        """Average change per second across the sampled window.

        ``(last - first) / (t_last - t_first)``. The degenerate cases all
        return ``0.0`` by contract — never ``inf``/``nan``, never a raise —
        because SLO specs reference ``registry:...#rate`` and an empty or
        instantaneous series must read as "no measured change", not poison
        the evaluation:

        * **empty series** and **single sample** — no interval to rate over;
        * **zero-span window** (all samples share one timestamp) —
          repeated-timestamp samples are legal, simulation time may stand
          still across events.

        >>> ts = Timeseries("demo.level", ())
        >>> ts.rate()
        0.0
        >>> ts.sample(2.0, 5.0)
        >>> ts.rate()
        0.0
        >>> ts.sample(2.0, 9.0)  # same instant: zero-span window
        >>> ts.rate()
        0.0
        >>> ts.sample(4.0, 9.0)
        >>> ts.rate()
        2.0
        """
        if len(self.samples) < 2:
            return 0.0
        (t_first, v_first), (t_last, v_last) = self.samples[0], self.samples[-1]
        window = t_last - t_first
        if window <= 0.0:
            return 0.0
        return (v_last - v_first) / window

    def to_record(self) -> Dict[str, Any]:
        record = self._base_record()
        record["samples"] = [[t, v] for t, v in self.samples]
        return record


# --------------------------------------------------------------- no-op mode


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, value: float, n: int) -> None:
        pass


class _NullTimeseries(Timeseries):
    __slots__ = ()

    def sample(self, time_s: float, value: float) -> None:
        pass


_NULL_LABELS: Labels = ()
NULL_COUNTER = _NullCounter("noop", _NULL_LABELS)
NULL_GAUGE = _NullGauge("noop", _NULL_LABELS)
NULL_HISTOGRAM = _NullHistogram("noop", _NULL_LABELS, buckets=(1.0,))
NULL_TIMESERIES = _NullTimeseries("noop", _NULL_LABELS)


# ----------------------------------------------------------------- registry


class MetricsRegistry:
    """Instrument factory and export point.

    Parameters
    ----------
    enabled:
        When False every factory method returns a shared no-op instrument,
        making instrumentation calls effectively free (the ``--no-obs``
        mode). The flag is fixed at construction; the obs runtime swaps
        whole registries to flip modes.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._instruments: "Dict[Tuple[str, Labels], _Instrument]" = {}

    @property
    def enabled(self) -> bool:
        """Whether this registry records anything."""
        return self._enabled

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(self._instruments.values())

    # ------------------------------------------------------------- factories

    def _get(self, cls, name: str, labels: Dict[str, LabelValue], **kwargs):
        if not _NAME_RE.match(name):
            raise ObservabilityError(
                f"metric name {name!r} is not dotted lowercase "
                "(expected layer.component.metric)"
            )
        key = (name, _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls) or type(instrument) is not cls:
            raise ObservabilityError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        """Get or create the counter ``name{labels}``."""
        if not self._enabled:
            return NULL_COUNTER
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        if not self._enabled:
            return NULL_GAUGE
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: LabelValue,
    ) -> Histogram:
        """Get or create the histogram ``name{labels}``.

        ``buckets`` only applies on first creation; later lookups reuse the
        existing edges.
        """
        if not self._enabled:
            return NULL_HISTOGRAM
        return self._get(Histogram, name, labels, buckets=buckets)

    def timeseries(self, name: str, **labels: LabelValue) -> Timeseries:
        """Get or create the timeseries ``name{labels}``."""
        if not self._enabled:
            return NULL_TIMESERIES
        return self._get(Timeseries, name, labels)

    @contextmanager
    def timer(self, name: str, **labels: LabelValue):
        """Observe a wall-clock span into the histogram ``name{labels}``.

        The span is measured with ``time.perf_counter`` and recorded in
        seconds against :data:`TIMER_BUCKETS`. Only for host-side timing
        (the parallel runner, exporters); simulation code must never read
        the wall clock (lint rule PW001).

        >>> registry = MetricsRegistry()
        >>> with registry.timer("runner.part.wall_s", experiment="fig9"):
        ...     _ = sum(range(10))
        >>> registry.get("runner.part.wall_s", experiment="fig9").count
        1
        """
        histogram = self.histogram(name, buckets=TIMER_BUCKETS, **labels)
        started = time.perf_counter()
        try:
            yield histogram
        finally:
            histogram.observe(time.perf_counter() - started)

    # --------------------------------------------------------------- queries

    def get(self, name: str, **labels: LabelValue) -> Optional[_Instrument]:
        """Look up an existing instrument without creating it."""
        return self._instruments.get((name, _freeze_labels(labels)))

    def find(self, prefix: str) -> List[_Instrument]:
        """All instruments whose name starts with ``prefix``."""
        return [
            instrument
            for instrument in self._instruments.values()
            if instrument.name.startswith(prefix)
        ]

    def value(self, name: str, default: float = 0.0, **labels: LabelValue) -> float:
        """Scalar value of a counter/gauge, or ``default`` when absent."""
        instrument = self.get(name, **labels)
        if instrument is None or not hasattr(instrument, "value"):
            return default
        return instrument.value  # type: ignore[union-attr]

    # ---------------------------------------------------------------- export

    def snapshot(self) -> List[Dict[str, Any]]:
        """One JSON-safe record per instrument, in registration order."""
        return [instrument.to_record() for instrument in self._instruments.values()]

    def to_dict(self) -> Dict[str, Any]:
        """The whole registry as one JSON-safe dict."""
        return {"metrics": self.snapshot()}

    def to_jsonl(self, target: Union[str, TextIO]) -> int:
        """Write one JSON line per instrument; returns the line count."""
        records = self.snapshot()
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(json.dumps(record) + "\n")
        else:
            for record in records:
                target.write(json.dumps(record) + "\n")
        return len(records)

    def clear(self) -> None:
        """Drop every instrument (fresh run)."""
        self._instruments.clear()


#: Shared disabled registry for components constructed with ``metrics=None``
#: in an unobserved context.
NULL_REGISTRY = MetricsRegistry(enabled=False)
