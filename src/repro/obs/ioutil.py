"""Crash-safe file I/O shared by every on-disk artifact writer.

A killed run must never leave a *truncated* artifact: a half-written
``run_manifest.json`` that parses as garbage is worse than no manifest at
all, and a torn ``perf_history.jsonl`` line would poison every later
``repro compare``. Two primitives enforce that everywhere:

* :func:`write_atomic` — write-temp-then-rename. The destination either
  holds its previous content or the complete new payload; readers can never
  observe an intermediate state. Used by the result cache, the manifest
  writer, and BENCH snapshots.
* :func:`append_line` — append one newline-terminated record with a single
  ``write`` on an ``O_APPEND`` descriptor, which POSIX guarantees is not
  interleaved with concurrent appenders for ordinary files. Used by the
  perf-history stream.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.faults import runtime as faults_runtime


def write_atomic(
    path: Union[str, Path],
    payload: Union[bytes, str],
    encoding: str = "utf-8",
    fault_point: Optional[str] = None,
) -> Path:
    """Atomically replace ``path`` with ``payload`` (temp file + rename).

    The temp file is created in the destination directory so the final
    ``os.replace`` stays on one filesystem (rename atomicity). On *any*
    failure — including an injected one — the temp file is removed and the
    prior destination content is untouched.

    ``fault_point`` names a :mod:`repro.faults` point (``manifest.interrupt``)
    checked between temp-file write and rename; when armed, the write dies
    at exactly the worst moment, which is how the crash-safety contract is
    exercised end to end.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = payload.encode(encoding) if isinstance(payload, str) else payload
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(data)
        if fault_point is not None and faults_runtime.consume(fault_point):
            from repro.errors import InjectedFault

            raise InjectedFault(f"{fault_point}: write of {path.name} interrupted")
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def append_line(
    path: Union[str, Path], line: str, encoding: str = "utf-8"
) -> Path:
    """Append one complete line to ``path`` (created along with parents).

    The record is newline-terminated and written with a single
    ``os.write`` on an ``O_APPEND`` descriptor: concurrent appenders from
    parallel runs cannot interleave bytes, and a kill between calls leaves
    only whole lines behind (readers like
    :func:`repro.obs.history.load_history` additionally tolerate a torn
    final line by skipping blanks).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not line.endswith("\n"):
        line += "\n"
    descriptor = os.open(
        str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
    )
    try:
        os.write(descriptor, line.encode(encoding))
    finally:
        os.close(descriptor)
    return path
