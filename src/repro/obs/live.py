"""Streaming run telemetry: watch a ``run-all`` while it runs.

Everything `repro.obs` produced so far lands *after* the run — manifests,
span trees, metric exports. This module is the during-the-run surface:

* **Worker → parent channel** (:class:`LiveChannel` / :class:`LivePublisher`)
  — a bounded multiprocessing queue pool workers publish lifecycle events
  into. Publishing is strictly best-effort: a full queue, a dead manager
  process, or a mid-pickle failure increments the publisher's ``dropped``
  counter and the task carries on untouched (PR 5 semantics: telemetry
  plumbing must never fail work). Drop counts ship back to the parent in
  each :class:`~repro.runner.tasks.TaskOutcome` and surface in manifest
  ``totals`` so truncation is visible, never silent.
* **Event log** (:class:`LiveSink`) — the parent appends every lifecycle
  event (``run.start``, ``part.state``, ``fault``, ``run.done``) to
  ``run_live.jsonl`` as it happens, one fsync-free ``append_line`` per
  event so a crash loses at most the final line.
* **Watch renderer** (:func:`tail_jsonl`, :func:`replay`,
  :func:`render_board`) — ``python -m repro watch`` tails the event log
  (and the span/metric sidecars) incrementally, folds events into a
  per-part state board — queued / running / retrying / cached / failed /
  done — and estimates time-to-finish from the per-experiment wall
  baselines ``perf_history.jsonl`` recorded on previous runs.

This is deliberately a file-plus-fold pipeline rather than a socket: the
future control-plane service can consume the exact same JSONL stream, and
``watch`` works on a recorded log byte-for-byte like a live one (which is
how it is tested).

Live streaming is orthogonal to observability mode: ``--live`` works under
``--no-obs`` (lifecycle events are runner bookkeeping, not simulation
telemetry) and never influences results — result hashes are identical with
the channel on or off.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.ioutil import append_line, write_atomic

#: Bump on any breaking change to the live event record layout.
LIVE_SCHEMA_VERSION = 1

#: Default event-log filename, written next to the run manifest.
LIVE_FILENAME = "run_live.jsonl"

#: Bound on the worker→parent queue. Deep enough that a healthy parent
#: (draining every poll tick) never sees it full; shallow enough that a
#: wedged parent costs workers a counter increment, not unbounded memory.
DEFAULT_QUEUE_DEPTH = 1024

#: Every part state the runner reports, in lifecycle order.
PART_STATES = (
    "queued",
    "cached",
    "submitted",
    "running",
    "retrying",
    "done",
    "failed",
    "quarantined",
    "interrupted",
)

#: States that mean the part will consume no further wall-clock.
TERMINAL_STATES = frozenset(
    {"cached", "done", "failed", "quarantined", "interrupted"}
)


class LivePublisher:
    """Worker-side handle: publish lifecycle events, never fail the task.

    Wraps a manager-queue proxy (picklable, so it rides inside the
    :class:`~repro.runner.tasks.TaskSpec` into the pool). Every failure
    mode of :meth:`publish` — queue full, manager process gone, connection
    reset mid-pickle — is swallowed and tallied in :attr:`dropped`.
    """

    def __init__(self, queue: Any) -> None:
        self._queue = queue
        self.dropped = 0

    def publish(self, record: Dict[str, Any]) -> bool:
        """Best-effort enqueue; returns whether the record was accepted."""
        try:
            self._queue.put_nowait(record)
            return True
        except Exception:
            self.dropped += 1
            return False

    def part_running(self, experiment: str, part: str, attempt: int) -> bool:
        """Announce that this worker has started executing a part."""
        return self.publish(
            {
                "type": "part.running",
                "experiment": experiment,
                "part": part,
                "attempt": attempt,
            }
        )


class LiveChannel:
    """Parent-side owner of the worker→parent event queue.

    Creates a ``multiprocessing.Manager`` server process whose queue proxy
    survives ``pool.submit`` pickling (raw ``mp.Queue`` objects do not).
    The parent drains it opportunistically from the runner's poll loop;
    :meth:`close` tears the manager down and is safe to call twice.
    """

    def __init__(self, maxsize: int = DEFAULT_QUEUE_DEPTH) -> None:
        import multiprocessing

        self._manager = multiprocessing.Manager()
        self._queue = self._manager.Queue(maxsize=maxsize)
        self._closed = False

    def publisher(self) -> LivePublisher:
        """A fresh picklable publisher bound to this channel's queue."""
        return LivePublisher(self._queue)

    def drain(self) -> List[Dict[str, Any]]:
        """Every record currently queued, without blocking."""
        records: List[Dict[str, Any]] = []
        if self._closed:
            return records
        while True:
            try:
                records.append(self._queue.get_nowait())
            except Exception:
                # queue.Empty on the happy path; any manager failure also
                # ends the drain — the channel is telemetry, not load-bearing.
                break
        return records

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._manager.shutdown()
        except Exception:
            pass


class LiveSink:
    """Append-only writer of the run's lifecycle event log.

    One JSONL record per event, each carrying the schema version, a
    monotonic sequence number, and seconds since the sink was opened.
    Writes go through :func:`~repro.obs.ioutil.append_line`, so a crash
    mid-run leaves a valid prefix of the stream (the watch tailer only
    consumes complete lines anyway).
    """

    def __init__(
        self,
        path: Union[str, Path],
        expected_walls: Optional[Dict[str, float]] = None,
    ) -> None:
        self.path = str(path)
        self.expected_walls = dict(expected_walls or {})
        self._seq = 0
        self._started = time.perf_counter()
        write_atomic(self.path, "")  # truncate any previous run's stream

    def emit(self, event_type: str, **fields: Any) -> Dict[str, Any]:
        """Append one event record and return it."""
        self._seq += 1
        record: Dict[str, Any] = {
            "schema": LIVE_SCHEMA_VERSION,
            "seq": self._seq,
            "t_s": round(time.perf_counter() - self._started, 3),
            "type": event_type,
        }
        record.update(fields)
        try:
            append_line(self.path, json.dumps(record, sort_keys=True))
        except OSError:
            pass  # a full disk must not sink the run the log describes
        return record

    def part_state(
        self, experiment: str, part: str, state: str, **fields: Any
    ) -> Dict[str, Any]:
        """Append one part lifecycle transition."""
        if state == "queued":
            expected = self.expected_walls.get(experiment)
            if expected is not None and "expected_wall_s" not in fields:
                fields["expected_wall_s"] = round(expected, 3)
        return self.emit(
            "part.state", experiment=experiment, part=part, state=state, **fields
        )

    def ingest(self, record: Dict[str, Any]) -> None:
        """Fold one worker-published record into the parent stream."""
        if record.get("type") == "part.running":
            self.part_state(
                str(record.get("experiment", "")),
                str(record.get("part", "")),
                "running",
                attempt=record.get("attempt"),
            )


def expected_walls(history_path: Union[str, Path]) -> Dict[str, float]:
    """Latest measured wall-clock per experiment from a perf history file.

    Scans ``perf_history.jsonl`` oldest→newest keeping, per experiment, the
    most recent record that actually executed (cache-hit replays report
    near-zero walls and would wreck the ETA). Missing or unreadable history
    degrades to ``{}`` — the watch board then shows no ETA, nothing fails.
    """
    walls: Dict[str, float] = {}
    try:
        from repro.obs.history import load_history

        for record in load_history(history_path):
            experiments = record.get("experiments") or {}
            if not isinstance(experiments, dict):
                continue
            for exp_id, entry in experiments.items():
                if not isinstance(entry, dict) or entry.get("cache_hit"):
                    continue
                wall = entry.get("wall_s")
                if isinstance(wall, (int, float)) and wall > 0:
                    walls[str(exp_id)] = float(wall)
    except Exception:
        return {}
    return walls


def tail_jsonl(
    path: Union[str, Path], offset: int = 0
) -> Tuple[List[Dict[str, Any]], int]:
    """Incremental JSONL tail: records after ``offset``, plus the new offset.

    Only complete, newline-terminated lines are consumed — a record the
    writer is mid-append on stays unread until its newline lands, so the
    returned offset can be fed straight back in next tick. Malformed lines
    (torn writes from a crashed producer) are skipped, not fatal. A missing
    file yields ``([], offset)``.

    Truncation is detected: when the file is now *shorter* than the
    consumed offset (a new ``run-all --live`` truncated and restarted the
    stream mid-watch), the tail restarts from byte zero instead of reading
    past EOF forever — the watcher picks up the new run's events, and the
    seq-guard in :func:`replay` keeps duplicate folds idempotent.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(0, 2)
            size = handle.tell()
            if size < offset:
                offset = 0
            handle.seek(offset)
            blob = handle.read()
    except OSError:
        return [], offset
    records: List[Dict[str, Any]] = []
    consumed = 0
    for line in blob.splitlines(keepends=True):
        if not line.endswith(b"\n"):
            break
        consumed += len(line)
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records, offset + consumed


@dataclass
class WatchState:
    """Fold of a live event stream into a renderable run snapshot."""

    run: Dict[str, Any] = field(default_factory=dict)
    #: ``(experiment, part)`` → latest state record for that part.
    parts: Dict[Tuple[str, str], Dict[str, Any]] = field(default_factory=dict)
    #: Part-order as first seen, so the board is stable across refreshes.
    order: List[Tuple[str, str]] = field(default_factory=list)
    faults: List[Dict[str, Any]] = field(default_factory=list)
    #: experiment id → its latest ``experiment.slo`` record (online SLO).
    slo: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    done: Optional[Dict[str, Any]] = None
    last_t_s: float = 0.0
    events: int = 0
    #: Seq numbers already folded (duplicate delivery is dropped) and the
    #: count of records skipped by the seq guard.
    seen_seqs: set = field(default_factory=set)
    duplicates: int = 0

    @property
    def finished(self) -> bool:
        return self.done is not None

    def counts(self) -> Dict[str, int]:
        """How many parts sit in each lifecycle state right now."""
        tally = {state: 0 for state in PART_STATES}
        for part in self.parts.values():
            state = part.get("state", "queued")
            tally[state] = tally.get(state, 0) + 1
        return tally

    def eta_s(self, jobs: Optional[int] = None) -> Optional[float]:
        """Crude time-to-finish: expected remaining work over the pool width.

        Sums the history-derived ``expected_wall_s`` of every part not yet
        in a terminal state (parts of the same experiment split its
        expected wall evenly) and divides by the worker count. ``None``
        when no baseline reached the stream — a cold repo has no history.
        """
        if self.finished:
            return 0.0
        remaining = 0.0
        known = False
        per_experiment: Dict[str, int] = {}
        for exp_id, _part in self.parts:
            per_experiment[exp_id] = per_experiment.get(exp_id, 0) + 1
        for (exp_id, _name), record in self.parts.items():
            if record.get("state") in TERMINAL_STATES:
                continue
            expected = record.get("expected_wall_s")
            if isinstance(expected, (int, float)):
                remaining += float(expected) / max(1, per_experiment[exp_id])
                known = True
        if not known:
            return None
        width = jobs or self.run.get("jobs") or 1
        return remaining / max(1, int(width))


def replay(
    records: List[Dict[str, Any]], state: Optional[WatchState] = None
) -> WatchState:
    """Fold event records into a :class:`WatchState` (incrementally reusable).

    Pass the previous tick's state back in with only the newly tailed
    records; passing the full stream into a fresh state gives the same
    result — the fold is associative over stream prefixes.

    The fold is hardened against imperfect delivery: a record whose ``seq``
    was already folded is dropped (duplicate delivery after a tail restart),
    and a ``part.state`` record older than the part's last applied ``seq``
    cannot regress that part (out-of-order delivery) — both tallied in
    :attr:`WatchState.duplicates`. Records without a ``seq`` (hand-written
    streams, tests) fold unconditionally, exactly as before.
    """
    state = state or WatchState()
    for record in records:
        seq = record.get("seq")
        if isinstance(seq, int):
            if seq in state.seen_seqs:
                state.duplicates += 1
                continue
            state.seen_seqs.add(seq)
        state.events += 1
        t_s = record.get("t_s")
        if isinstance(t_s, (int, float)):
            state.last_t_s = max(state.last_t_s, float(t_s))
        kind = record.get("type")
        if kind == "run.start":
            state.run = dict(record)
        elif kind == "part.state":
            key = (str(record.get("experiment", "")), str(record.get("part", "")))
            if key not in state.parts:
                state.order.append(key)
                state.parts[key] = {}
            previous = state.parts[key]
            last_seq = previous.get("seq")
            if (
                isinstance(seq, int)
                and isinstance(last_seq, int)
                and seq < last_seq
            ):
                state.duplicates += 1
                continue
            merged = dict(previous)
            merged.update(record)
            # A queued event's expected wall must survive later transitions.
            if "expected_wall_s" in previous and "expected_wall_s" not in record:
                merged["expected_wall_s"] = previous["expected_wall_s"]
            state.parts[key] = merged
        elif kind == "fault":
            state.faults.append(dict(record))
        elif kind == "experiment.slo":
            state.slo[str(record.get("experiment", ""))] = dict(record)
        elif kind == "run.done":
            state.done = dict(record)
    return state


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = max(0.0, seconds)
    if seconds >= 90:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render_board(
    state: WatchState,
    spans_seen: Optional[int] = None,
    metrics_seen: Optional[int] = None,
    max_parts: int = 40,
) -> str:
    """Render one watch refresh: header, per-part board, counters, footer.

    When the stream carries ``experiment.slo`` events (the online SLO
    evaluator), each part row grows a trailing SLO column for its
    experiment — ``slo:ok`` / ``slo:VIOL(n)`` — and a summary footer lists
    every evaluated experiment.
    """
    if not state.events:
        # Nothing has reached the stream yet (file absent, empty, or
        # truncated-and-restarting): say so instead of a board of "?"s.
        return (
            "== watch == waiting for events (no live records yet; is a run "
            "with --live active here?)"
        )
    run = state.run
    header = (
        f"== watch == seed={run.get('seed', '?')} jobs={run.get('jobs', '?')} "
        f"tasks={run.get('tasks', len(state.parts))} "
        f"elapsed={state.last_t_s:.1f}s eta={_format_eta(state.eta_s())}"
    )
    lines = [header]
    shown = state.order[:max_parts]
    width = max([len(f"{e}:{p}") for e, p in shown] + [12])
    for key in shown:
        record = state.parts[key]
        part_state = record.get("state", "queued")
        detail = ""
        if part_state in ("done", "cached") and record.get("wall_s") is not None:
            detail = f"{record['wall_s']:.2f}s"
        elif part_state in ("retrying", "running") and record.get("attempt"):
            detail = f"attempt {record['attempt']}"
        elif part_state in ("failed", "quarantined") and record.get("error"):
            detail = str(record["error"])[:60]
        elif part_state == "queued":
            expected = record.get("expected_wall_s")
            if expected is not None:
                detail = f"~{_format_eta(float(expected))}"
        slo_cell = ""
        slo_record = state.slo.get(key[0])
        if slo_record is not None:
            violated = slo_record.get("violated", 0)
            slo_cell = f"  slo:{'ok' if not violated else f'VIOL({violated})'}"
        label = f"{key[0]}:{key[1]}"
        lines.append(f"  {label:<{width}}  {part_state:<11} {detail}{slo_cell}")
    if len(state.order) > len(shown):
        lines.append(f"  ... {len(state.order) - len(shown)} more part(s)")
    tally = state.counts()
    lines.append(
        "  "
        + "  ".join(
            f"{name}={tally[name]}" for name in PART_STATES if tally[name]
        )
    )
    if state.slo:
        cells = []
        for exp_id in sorted(state.slo):
            record = state.slo[exp_id]
            violated = record.get("violated", 0)
            skipped = record.get("skipped", 0)
            cell = f"{exp_id}={'ok' if not violated else f'VIOL({violated})'}"
            if skipped:
                cell += f"+{skipped}skip"
            cells.append(cell)
        lines.append("  slo: " + "  ".join(cells))
    if state.faults:
        lines.append(f"  faults: {len(state.faults)} event(s)")
    if state.duplicates:
        lines.append(f"  stream: {state.duplicates} duplicate/stale record(s) dropped")
    sidecars = []
    if spans_seen is not None:
        sidecars.append(f"spans={spans_seen}")
    if metrics_seen is not None:
        sidecars.append(f"metrics={metrics_seen}")
    if sidecars:
        lines.append("  sidecars: " + " ".join(sidecars))
    if state.finished:
        done = state.done or {}
        done_line = (
            f"  run done: ok={done.get('ok', '?')} failed={done.get('failed', '?')} "
            f"cache_hits={done.get('cache_hits', '?')} wall={done.get('wall_s', '?')}s "
            f"dropped(spans={done.get('spans_dropped', 0)}, "
            f"live={done.get('live_dropped', 0)})"
        )
        if "slo_violated" in done:
            done_line += f" slo_violated={done['slo_violated']}"
        lines.append(done_line)
    return "\n".join(lines)


def snapshot(
    state: WatchState,
    spans_seen: Optional[int] = None,
    metrics_seen: Optional[int] = None,
) -> Dict[str, Any]:
    """The watch board as one machine-readable dict (``watch --once --json``).

    Everything :func:`render_board` prints, but structured: per-part state
    rows in first-seen order, lifecycle counts, online SLO records, fault
    count, ETA, and the ``run.done`` record once it lands. Keys are stable;
    consumers should treat absent optional keys (``eta_s``, ``done``) as
    "not known yet".
    """
    parts = []
    for key in state.order:
        record = state.parts[key]
        parts.append(
            {
                "experiment": key[0],
                "part": key[1],
                "state": record.get("state", "queued"),
                "attempt": record.get("attempt"),
                "wall_s": record.get("wall_s"),
                "expected_wall_s": record.get("expected_wall_s"),
                "error": record.get("error"),
            }
        )
    return {
        "schema": LIVE_SCHEMA_VERSION,
        "run": dict(state.run),
        "elapsed_s": state.last_t_s,
        "eta_s": state.eta_s(),
        "events": state.events,
        "duplicates": state.duplicates,
        "counts": state.counts(),
        "parts": parts,
        "slo": {
            exp_id: {
                "ok": record.get("ok"),
                "violated": record.get("violated"),
                "skipped": record.get("skipped"),
                "objectives": record.get("objectives"),
            }
            for exp_id, record in sorted(state.slo.items())
        },
        "faults": len(state.faults),
        "spans_seen": spans_seen,
        "metrics_seen": metrics_seen,
        "finished": state.finished,
        "done": dict(state.done) if state.done else None,
    }
