"""RF propagation substrate.

Models the physical link between the PoWiFi router and a harvester: path
loss (Friis free-space and log-distance), antenna gains, and the wall
materials used in the paper's through-the-wall camera experiments (Fig. 13).
"""

from repro.rf.antenna import Antenna
from repro.rf.materials import WALL_MATERIALS, WallMaterial
from repro.rf.propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PathLossModel,
)
from repro.rf.link import LinkBudget, Transmitter

__all__ = [
    "Antenna",
    "WallMaterial",
    "WALL_MATERIALS",
    "PathLossModel",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "LinkBudget",
    "Transmitter",
]
