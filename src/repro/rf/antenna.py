"""Antenna models.

The paper uses three antenna types: 4.04 dBi router antennas on the stock
Asus AP (§2), 6 dBi antennas on the PoWiFi prototype router (§4), and a 2 dBi
low-gain antenna on the harvesters (Fig. 2) chosen so the device is agnostic
to orientation. We model an antenna as an isotropic gain plus an efficiency
factor; pattern effects are deliberately out of scope because the paper's
harvester antenna is chosen to make them negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Antenna:
    """An antenna characterised by its peak gain.

    Attributes
    ----------
    gain_dbi:
        Peak gain relative to an isotropic radiator, in dBi.
    name:
        Human-readable label used in traces and reports.
    efficiency:
        Radiation efficiency in (0, 1]; losses here model mismatch and ohmic
        loss *inside the antenna*, distinct from the harvester's matching
        network losses which are modelled separately.
    """

    gain_dbi: float
    name: str = "antenna"
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.efficiency <= 1.0):
            raise ConfigurationError(
                f"antenna efficiency must be in (0, 1], got {self.efficiency!r}"
            )

    @property
    def effective_gain_dbi(self) -> float:
        """Gain including radiation efficiency, in dBi."""
        import math

        return self.gain_dbi + 10.0 * math.log10(self.efficiency)


#: The 2 dBi Pulse Electronics whip used by every harvester prototype [2].
HARVESTER_ANTENNA = Antenna(gain_dbi=2.0, name="pulse-w1010-2dbi")

#: The 6 dBi antennas on the PoWiFi prototype router (§4, one per chipset).
POWIFI_ROUTER_ANTENNA = Antenna(gain_dbi=6.0, name="powifi-6dbi")

#: The 4.04 dBi antennas on the stock Asus RT-AC68U used in §2.
ASUS_ROUTER_ANTENNA = Antenna(gain_dbi=4.04, name="asus-rt-ac68u-4dbi")
