"""Wall materials for the through-the-wall experiments (Fig. 13).

The paper measures the battery-free camera behind four wall types: 1-inch
double-pane glass, a 1.8-inch wooden door, a 5.4-inch hollow wall, and a
7.9-inch double sheet-rock wall with insulation. We model each as a flat
attenuation in dB at 2.4 GHz, taken from published indoor material-loss
surveys; the paper itself reports only the resulting inter-frame times, and
the ordering of our attenuations reproduces the ordering of its bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WallMaterial:
    """A wall type crossed by the router-to-harvester link.

    Attributes
    ----------
    name:
        Label matching the paper's Fig. 13 x-axis.
    thickness_inches:
        Physical thickness as reported in §5.2.
    attenuation_db:
        One-way attenuation at 2.4 GHz.
    """

    name: str
    thickness_inches: float
    attenuation_db: float

    def __post_init__(self) -> None:
        if self.attenuation_db < 0:
            raise ConfigurationError(
                f"attenuation must be >= 0 dB, got {self.attenuation_db!r}"
            )
        if self.thickness_inches < 0:
            raise ConfigurationError(
                f"thickness must be >= 0, got {self.thickness_inches!r}"
            )


#: The four wall types of Fig. 13 plus the free-space control, keyed by the
#: short labels used on the figure's x-axis.
WALL_MATERIALS: Dict[str, WallMaterial] = {
    "free-space": WallMaterial("free-space", 0.0, 0.0),
    "wood": WallMaterial("wood", 1.8, 2.0),
    "glass": WallMaterial("glass", 1.0, 3.2),
    "hollow-wall": WallMaterial("hollow-wall", 5.4, 4.8),
    "sheetrock": WallMaterial("sheetrock", 7.9, 6.4),
}
