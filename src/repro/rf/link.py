"""Link-budget computation from transmitter to harvester.

Combines transmit power, antenna gains, path loss and wall attenuation into
the RF power available at the harvester's antenna port — the quantity the
harvester models in :mod:`repro.harvester` consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.rf.antenna import Antenna, HARVESTER_ANTENNA, POWIFI_ROUTER_ANTENNA
from repro.rf.materials import WallMaterial
from repro.rf.propagation import (
    INDOOR_LOS_EXPONENT,
    LogDistancePathLoss,
    PathLossModel,
)
from repro.units import dbm_to_watts, feet_to_meters


@dataclass(frozen=True)
class Transmitter:
    """An RF power source: a Wi-Fi interface driving an antenna.

    Attributes
    ----------
    tx_power_dbm:
        Conducted transmit power per chain. The PoWiFi prototype transmits
        at 30 dBm (§4); stock smartphones transmit at 0–2 dBm (§2).
    antenna:
        The transmit antenna.
    frequency_hz:
        Carrier frequency (channel centre).
    """

    tx_power_dbm: float
    antenna: Antenna = POWIFI_ROUTER_ANTENNA
    frequency_hz: float = 2.437e9

    @property
    def eirp_dbm(self) -> float:
        """Equivalent isotropically radiated power in dBm."""
        return self.tx_power_dbm + self.antenna.effective_gain_dbi


@dataclass
class LinkBudget:
    """Received-power calculator for one transmitter/harvester placement.

    Parameters
    ----------
    transmitter:
        The RF source.
    rx_antenna:
        The harvester's antenna (2 dBi by default, as in the paper).
    path_loss:
        Path-loss model; defaults to indoor line-of-sight log-distance.
    wall:
        Optional wall between transmitter and receiver (Fig. 13 scenarios).
    """

    transmitter: Transmitter
    rx_antenna: Antenna = HARVESTER_ANTENNA
    path_loss: PathLossModel = field(
        default_factory=lambda: LogDistancePathLoss(exponent=INDOOR_LOS_EXPONENT)
    )
    wall: Optional[WallMaterial] = None

    def received_power_dbm(self, distance_m: float) -> float:
        """RF power at the harvester antenna port, in dBm."""
        if distance_m <= 0:
            raise ConfigurationError(f"distance must be > 0 m, got {distance_m!r}")
        loss = self.path_loss.path_loss_db(distance_m, self.transmitter.frequency_hz)
        wall_loss = self.wall.attenuation_db if self.wall is not None else 0.0
        return (
            self.transmitter.tx_power_dbm
            + self.transmitter.antenna.effective_gain_dbi
            + self.rx_antenna.effective_gain_dbi
            - loss
            - wall_loss
        )

    def received_power_dbm_at_feet(self, distance_feet: float) -> float:
        """Convenience wrapper: the paper's figures use feet."""
        return self.received_power_dbm(feet_to_meters(distance_feet))

    def received_power_watts(self, distance_m: float) -> float:
        """RF power at the harvester antenna port, in watts."""
        return dbm_to_watts(self.received_power_dbm(distance_m))

    def range_for_sensitivity_feet(
        self,
        sensitivity_dbm: float,
        max_feet: float = 100.0,
        resolution_feet: float = 0.1,
    ) -> float:
        """Largest distance (feet) at which received power meets ``sensitivity_dbm``.

        Uses a simple scan because path-loss models need not be invertible in
        general (walls, piecewise anchors).
        """
        best = 0.0
        steps = int(max_feet / resolution_feet)
        for i in range(1, steps + 1):
            feet = i * resolution_feet
            if self.received_power_dbm_at_feet(feet) >= sensitivity_dbm:
                best = feet
            else:
                break
        return best
