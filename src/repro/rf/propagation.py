"""Path-loss models.

The paper's range results (Figs. 10–12) are governed by received power versus
distance at 2.4 GHz indoors. We provide the textbook Friis free-space model
and a log-distance model with configurable exponent; indoor corridors at short
range are well described by exponents between ~1.6 (waveguiding) and ~3
(cluttered NLOS). The experiment drivers use a mildly waveguided exponent that
reproduces the paper's measured 20/28-foot operating ranges given the
harvester sensitivities it reports.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.units import wavelength


class PathLossModel(ABC):
    """Interface: path loss in dB as a function of distance and frequency."""

    @abstractmethod
    def path_loss_db(self, distance_m: float, frequency_hz: float) -> float:
        """Return the path loss in dB at ``distance_m`` and ``frequency_hz``."""

    def _check_distance(self, distance_m: float) -> None:
        if distance_m <= 0.0:
            raise ConfigurationError(
                f"distance must be > 0 m, got {distance_m!r}"
            )


class FreeSpacePathLoss(PathLossModel):
    """Friis free-space path loss: ``20 log10(4 pi d / lambda)``.

    >>> model = FreeSpacePathLoss()
    >>> round(model.path_loss_db(1.0, 2.437e9), 1)
    40.2
    """

    def path_loss_db(self, distance_m: float, frequency_hz: float) -> float:
        self._check_distance(distance_m)
        lam = wavelength(frequency_hz)
        return 20.0 * math.log10(4.0 * math.pi * distance_m / lam)


class LogDistancePathLoss(PathLossModel):
    """Log-distance path loss anchored at a reference distance.

    ``PL(d) = PL_fs(d0) + 10 n log10(d / d0)`` for ``d >= d0``; below the
    reference distance the model falls back to free space so the loss is
    continuous and physical at very short range.

    Parameters
    ----------
    exponent:
        Path-loss exponent ``n``. Free space is 2.0; indoor line-of-sight
        corridors measure 1.6–1.8; cluttered indoor NLOS measures 2.5–4.
    reference_distance_m:
        Anchor distance ``d0`` at which free-space loss is assumed.
    """

    def __init__(self, exponent: float = 2.0, reference_distance_m: float = 1.0) -> None:
        if exponent <= 0:
            raise ConfigurationError(f"path-loss exponent must be > 0, got {exponent!r}")
        if reference_distance_m <= 0:
            raise ConfigurationError(
                f"reference distance must be > 0 m, got {reference_distance_m!r}"
            )
        self.exponent = float(exponent)
        self.reference_distance_m = float(reference_distance_m)
        self._free_space = FreeSpacePathLoss()

    def path_loss_db(self, distance_m: float, frequency_hz: float) -> float:
        self._check_distance(distance_m)
        d0 = self.reference_distance_m
        if distance_m <= d0:
            return self._free_space.path_loss_db(distance_m, frequency_hz)
        anchor = self._free_space.path_loss_db(d0, frequency_hz)
        return anchor + 10.0 * self.exponent * math.log10(distance_m / d0)


#: Path-loss exponent used by the experiment drivers for the paper's office
#: and home environments. Slightly below free space: the harvester range
#: results in the paper (20 ft battery-free at −17.8 dBm sensitivity with a
#: 30 dBm, 6 dBi router and a 2 dBi harvester antenna) are only consistent
#: with mild corridor waveguiding, a well-documented indoor LOS effect.
INDOOR_LOS_EXPONENT = 1.85
