"""Findings: what a rule reports, how it is fingerprinted and rendered.

A :class:`Finding` pins a rule code to a file/line plus a message. Its
*fingerprint* deliberately ignores the line number — it hashes the source
text of the flagged line (plus an occurrence index for duplicates) so that
baseline entries survive unrelated edits above the finding.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


class Severity(enum.Enum):
    """How a finding affects the exit code: errors gate, warnings inform."""

    WARNING = "warning"
    ERROR = "error"

    @classmethod
    def parse(cls, value: str) -> "Severity":
        try:
            return cls(value.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {value!r}; expected 'warning' or 'error'"
            ) from None


@dataclass
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    column: int = 0
    severity: Severity = Severity.ERROR
    #: Source text of the flagged line, stripped (fingerprint input).
    line_text: str = ""
    #: Disambiguates identical (path, code, line_text) triples.
    occurrence: int = 0
    #: True when a committed baseline entry grandfathers this finding.
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file."""
        payload = f"{self.path}::{self.code}::{self.line_text}::{self.occurrence}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def render_text(self) -> str:
        tag = " [baselined]" if self.baselined else ""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.code} {self.severity.value}: {self.message}{tag}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity.value,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }


def assign_occurrences(findings: Sequence[Finding]) -> None:
    """Number duplicate (path, code, line_text) findings for stable prints."""
    seen: Dict[str, int] = {}
    for finding in findings:
        key = f"{finding.path}::{finding.code}::{finding.line_text}"
        finding.occurrence = seen.get(key, 0)
        seen[key] = finding.occurrence + 1


def render_text(findings: Sequence[Finding]) -> str:
    """The ``--format text`` report."""
    lines: List[str] = [f.render_text() for f in findings]
    active = [f for f in findings if not f.baselined]
    lines.append(
        f"{len(active)} finding(s) "
        f"({len(findings) - len(active)} baselined, {len(findings)} total)"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """The ``--format json`` report (one machine-readable document)."""
    active = [f for f in findings if not f.baselined]
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "active": len(active),
            "baselined": len(findings) - len(active),
        },
        indent=2,
        sort_keys=True,
    )
