"""The PW rule set: this codebase's real determinism/unit hazards.

========  ==================================================================
Code      Invariant
========  ==================================================================
PW001     No wall clock / OS entropy inside simulation packages.
PW002     All randomness flows through :class:`repro.sim.rng.RandomStreams`
          (or an injected ``random.Random``); no module-level ``random.*``
          draws, no bare ``random.Random(...)`` outside ``repro.sim.rng``.
PW003     No iteration over ``set``/``frozenset`` values inside simulation
          packages (ordering would leak into event scheduling).
PW004     No mixing of unit-suffixed quantities (``_dbm`` vs ``_mw``, ...)
          across keyword/positional argument passing, ``+``/``-``, or
          comparisons, without an explicit :mod:`repro.units` conversion.
PW005     No float ``==``/``!=`` on simulation-time values.
PW006     Obs metric names are dotted-lowercase string literals.
PW007     Campaign spec files name real registry experiments and real
          driver keyword arguments (``campaigns/*.json``).
========  ==================================================================
"""

from __future__ import annotations

import ast
import json
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, register

# --------------------------------------------------------------------- shared


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The identifier a suffix check applies to (unwraps unary minus)."""
    if isinstance(node, ast.UnaryOp):
        return _terminal_name(node.operand)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _suffix_of(name: Optional[str], suffixes: Tuple[str, ...]) -> Optional[str]:
    """Unit suffix carried by ``name`` (``rx_dbm`` -> ``dbm``), if any."""
    if not name:
        return None
    if name in suffixes:
        return name
    parts = name.rsplit("_", 1)
    if len(parts) == 2 and parts[1] in suffixes:
        return parts[1]
    return None


# ---------------------------------------------------------------------- PW001

#: Wall-clock and entropy sources that make a run irreproducible.
_WALLCLOCK_QUALNAMES: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

_WALLCLOCK_IMPORT_LEAVES: Dict[str, FrozenSet[str]] = {
    "time": frozenset(
        {
            "time",
            "time_ns",
            "monotonic",
            "monotonic_ns",
            "perf_counter",
            "perf_counter_ns",
            "process_time",
        }
    ),
    "os": frozenset({"urandom", "getrandom"}),
}


@register
class WallClockRule(Rule):
    """PW001: simulation code must never read the host clock or OS entropy.

    Simulation time is :attr:`Simulator.now` and nothing else; host-clock
    reads make results machine-dependent, and ``os.urandom``/``uuid.uuid4``
    bypass the seeded streams entirely.
    """

    code = "PW001"
    name = "wall-clock-in-sim"
    description = "wall clock / OS entropy read inside a simulation package"
    node_types = (ast.Call, ast.ImportFrom)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_sim_package

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.ImportFrom):
            banned = _WALLCLOCK_IMPORT_LEAVES.get(node.module or "")
            if banned:
                for alias in node.names:
                    if alias.name in banned:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {node.module}.{alias.name} in a "
                            "simulation package; simulation time is "
                            "Simulator.now",
                        )
            return
        assert isinstance(node, ast.Call)
        origin = ctx.resolve(node.func)
        if origin is None:
            return
        if origin in _WALLCLOCK_QUALNAMES or origin.startswith("secrets."):
            yield self.finding(
                ctx,
                node,
                f"call to {origin} in a simulation package; use Simulator.now "
                "(time) or RandomStreams (entropy)",
            )


# ---------------------------------------------------------------------- PW002

#: ``random`` module functions that draw from (or reseed) the global RNG.
_GLOBAL_DRAWS: FrozenSet[str] = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
    }
)


@register
class SeededRngRule(Rule):
    """PW002: every draw flows through ``RandomStreams`` or an injected rng.

    Module-level ``random.*`` draws share hidden global state across
    components, and a bare ``random.Random(seed)`` invents a private stream
    whose draws shift whenever unrelated code changes — the exact failure
    ``RandomStreams``'s named streams exist to prevent.
    """

    code = "PW002"
    name = "unseeded-or-bare-rng"
    description = "randomness not flowing through repro.sim.rng.RandomStreams"
    node_types = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        origin = ctx.resolve(node.func)
        if origin is None:
            return
        if origin == "random.Random":
            if ctx.module != ctx.config.rng_module:
                yield self.finding(
                    ctx,
                    node,
                    "bare random.Random(...) constructed outside "
                    f"{ctx.config.rng_module}; take a RandomStreams stream "
                    "or an injected random.Random instead",
                )
        elif origin.startswith("random.") and origin[7:] in _GLOBAL_DRAWS:
            yield self.finding(
                ctx,
                node,
                f"module-level {origin}() draws from the global RNG; use a "
                "named RandomStreams stream",
            )
        elif origin.startswith("numpy.random."):
            yield self.finding(
                ctx,
                node,
                f"{origin}() uses numpy's global RNG; seed an explicit "
                "generator from a RandomStreams stream",
            )


# ---------------------------------------------------------------------- PW003


def _is_set_expr(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve(node.func) in ("set", "frozenset")
    return False


@register
class SetIterationRule(Rule):
    """PW003: set iteration order must not reach the event heap.

    ``set`` iteration order depends on insertion history and hash
    randomisation of prior runs' object identities; two logically identical
    runs can schedule events in different tie-break order. ``sorted(...)``
    the set first.
    """

    code = "PW003"
    name = "set-iteration-in-sim"
    description = "iteration over a set/frozenset inside a simulation package"
    node_types = (ast.For, ast.comprehension)

    def applies(self, ctx: FileContext) -> bool:
        return ctx.in_sim_package

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        iterable = node.iter
        if _is_set_expr(iterable, ctx):
            yield self.finding(
                ctx,
                iterable,
                "iterating a set here; ordering can leak into event "
                "scheduling — wrap it in sorted(...)",
            )


# ---------------------------------------------------------------------- PW004

#: Log-domain quantities legitimately added/subtracted in link budgets
#: (rx_dbm = tx_dbm + gain_dbi - path_loss_db).
_LOG_DOMAIN: FrozenSet[str] = frozenset({"db", "dbi", "dbm"})

_COMPARE_OPS = (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)


@register
class UnitSuffixRule(Rule):
    """PW004: unit-suffixed quantities never mix without a converter.

    An argument named ``..._dbm`` handed to a ``..._mw`` parameter (or
    added/compared to one) is the classic RF energy-accounting bug; route
    the value through :mod:`repro.units` instead. Conversions are
    recognised syntactically: a function call has no suffix, so
    ``dbm_to_watts(rx_dbm)`` passes.
    """

    code = "PW004"
    name = "unit-suffix-mismatch"
    description = "mismatched unit suffixes without a repro.units conversion"
    node_types = (ast.Call, ast.BinOp, ast.Compare)

    def begin_file(self, ctx: FileContext) -> None:
        self._signatures = _local_signatures(ctx.tree)

    def _suffix(self, ctx: FileContext, node: ast.AST) -> Optional[str]:
        return _suffix_of(_terminal_name(node), ctx.config.unit_suffixes)

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_call(ctx, node)
        elif isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                left = self._suffix(ctx, node.left)
                right = self._suffix(ctx, node.right)
                if (
                    left
                    and right
                    and left != right
                    and not (left in _LOG_DOMAIN and right in _LOG_DOMAIN)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"adding/subtracting _{left} and _{right} quantities; "
                        "convert one side via repro.units first",
                    )
        elif isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, _COMPARE_OPS):
                    continue
                left = self._suffix(ctx, operands[index])
                right = self._suffix(ctx, operands[index + 1])
                if left and right and left != right:
                    yield self.finding(
                        ctx,
                        node,
                        f"comparing a _{left} quantity against a _{right} "
                        "one; convert via repro.units first",
                    )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        suffixes = ctx.config.unit_suffixes
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            param = _suffix_of(keyword.arg, suffixes)
            value = self._suffix(ctx, keyword.value)
            if param and value and param != value:
                yield self.finding(
                    ctx,
                    keyword.value,
                    f"_{value} value passed to parameter "
                    f"{keyword.arg!r} (_{param}); convert via repro.units",
                )
        params = self._positional_params(ctx, node)
        if params is None:
            return
        for arg, param_name in zip(node.args, params):
            if isinstance(arg, ast.Starred):
                break
            param = _suffix_of(param_name, suffixes)
            value = self._suffix(ctx, arg)
            if param and value and param != value:
                yield self.finding(
                    ctx,
                    arg,
                    f"_{value} value passed to parameter "
                    f"{param_name!r} (_{param}); convert via repro.units",
                )

    def _positional_params(
        self, ctx: FileContext, node: ast.Call
    ) -> Optional[List[str]]:
        """Parameter names for a call to a function defined in this file."""
        func = node.func
        if isinstance(func, ast.Name) and func.id not in ctx.imports:
            return self._signatures.get((False, func.id))
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return self._signatures.get((True, func.attr))
        return None


def _local_signatures(tree: ast.AST) -> Dict[Tuple[bool, str], List[str]]:
    """(is_method, name) -> positional parameter names, for same-file defs.

    Ambiguous names (two defs with differing parameter lists) are dropped
    rather than guessed at.
    """
    signatures: Dict[Tuple[bool, str], Optional[List[str]]] = {}

    def record(key: Tuple[bool, str], params: List[str]) -> None:
        if key in signatures and signatures[key] != params:
            signatures[key] = None
        else:
            signatures[key] = params

    for node in ast.walk(tree):
        if isinstance(node, ast.Module):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    record((False, child.name), [a.arg for a in child.args.args])
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    params = [a.arg for a in child.args.args]
                    if params and params[0] in ("self", "cls"):
                        params = params[1:]
                    record((True, child.name), params)
    return {key: params for key, params in signatures.items() if params is not None}


# ---------------------------------------------------------------------- PW005

#: Identifier suffixes that denote a time quantity.
_TIME_SUFFIXES: Tuple[str, ...] = ("s", "us", "ms")


def _is_time_like(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    if name == "now" or name.endswith("_time"):
        return True
    return _suffix_of(name, _TIME_SUFFIXES) is not None


@register
class FloatTimeEqualityRule(Rule):
    """PW005: no ``==``/``!=`` on simulation-time floats.

    Simulation timestamps are sums of float durations; two paths to "the
    same" instant differ in the last ulp often enough that equality checks
    are schedule-dependent. Use ``math.isclose``, an ordering check, or
    ``math.isinf`` — or pragma the rare intentionally-exact comparison.
    """

    code = "PW005"
    name = "float-time-equality"
    description = "float equality on a simulation-time value"
    node_types = (ast.Compare,)

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        assert isinstance(node, ast.Compare)
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            for timeish, other in ((left, right), (right, left)):
                if not _is_time_like(timeish):
                    continue
                # Comparing against a string/None is name matching, not time.
                if isinstance(other, ast.Constant) and isinstance(
                    other.value, (str, bytes, type(None))
                ):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    "float equality on a time value; use math.isclose, an "
                    "ordering check, or math.isinf",
                )
                break


# ---------------------------------------------------------------------- PW006

_METRIC_METHODS: FrozenSet[str] = frozenset(
    {"counter", "gauge", "histogram", "timeseries"}
)

#: Span-recorder entry points (``spans.begin(...)``, ``spans.span(...)``,
#: ``runtime.span(...)``): same literal-name contract as metrics.
_SPAN_METHODS: FrozenSet[str] = frozenset({"begin", "span"})

#: ``layer.component.metric`` — at least two dotted lowercase segments.
_METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Where the SLO objective factory lives; ``objective(...)`` call sites are
#: held to the same literal-dotted-name contract as metric names, but only
#: when the name demonstrably resolves there (import-map check), so foreign
#: ``objective`` functions never false-positive.
_SLO_MODULE = "repro.obs.slo"


@register
class MetricNameRule(Rule):
    """PW006: metric and span names are greppable dotted-lowercase literals.

    The PR-1 observability contract: a metric mentioned in a dashboard or
    doc must be findable with ``grep -r "mac.medium.collisions" src`` —
    and since the span-tracing PR, a span name (``sim.engine.run``) must be
    findable the same way. Computed names (f-strings, variables) break
    that; dynamic dimensions belong in labels, not the name.

    Since the SLO PR the same contract covers SLO objective ids: an id in a
    scorecard or alert must grep back to its ``objective(...)`` call site
    (and, via :func:`check_slo_spec_file`, to its ``slos/*.json`` entry).
    """

    code = "PW006"
    name = "metric-name-literal"
    description = "obs metric/span name is not a dotted-lowercase string literal"
    node_types = (ast.Call,)

    def applies(self, ctx: FileContext) -> bool:
        # The registry/recorder/evaluator themselves pass validated names
        # through variables.
        return ctx.module not in ("repro.obs.metrics", "repro.obs.spans", _SLO_MODULE)

    def _is_slo_objective(self, ctx: FileContext, func: ast.AST) -> bool:
        """Does this call target ``repro.obs.slo.objective``?

        Covers the bare imported name (``from repro.obs.slo import
        objective``) and attribute access on an imported module alias
        (``from repro.obs import slo; slo.objective(...)``).
        """
        if isinstance(func, ast.Name):
            return ctx.imports.get(func.id) == f"{_SLO_MODULE}.objective"
        if isinstance(func, ast.Attribute) and func.attr == "objective":
            if isinstance(func.value, ast.Name):
                return ctx.imports.get(func.value.id) == _SLO_MODULE
        return False

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if self._is_slo_objective(ctx, func):
            yield from self._check_objective(ctx, node)
            return
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _METRIC_METHODS:
            noun = "metric"
        elif func.attr in _SPAN_METHODS:
            noun = "span"
        else:
            return
        if not node.args:
            return
        name_arg = node.args[0]
        if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
            # ``.span(...)``/``.begin(...)`` are common method names on
            # non-obs objects; only string-literal first arguments are
            # checked for spans, so foreign calls never false-positive.
            if noun == "span":
                return
            yield self.finding(
                ctx,
                name_arg,
                f"metric name passed to .{func.attr}() must be a string "
                "literal (dynamic dimensions go in labels)",
            )
            return
        if not _METRIC_NAME_RE.match(name_arg.value):
            yield self.finding(
                ctx,
                name_arg,
                f"{noun} name {name_arg.value!r} is not dotted-lowercase "
                f"(layer.component.{'operation' if noun == 'span' else 'metric'})",
            )

    def _check_objective(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        """The objective-id argument of ``objective(...)`` must be literal."""
        id_arg: Optional[ast.AST] = node.args[0] if node.args else None
        if id_arg is None:
            for keyword_arg in node.keywords:
                if keyword_arg.arg == "objective_id":
                    id_arg = keyword_arg.value
                    break
        if id_arg is None:
            return
        if not (isinstance(id_arg, ast.Constant) and isinstance(id_arg.value, str)):
            yield self.finding(
                ctx,
                id_arg,
                "SLO objective id passed to objective() must be a string "
                "literal (ids are grepped from scorecards back to their "
                "definition)",
            )
            return
        if not _METRIC_NAME_RE.match(id_arg.value):
            yield self.finding(
                ctx,
                id_arg,
                f"SLO objective id {id_arg.value!r} is not dotted-lowercase "
                "(layer.component.objective)",
            )


def check_slo_spec_file(path: str, source: str) -> List[Finding]:
    """PW006 over one ``slos/*.json`` SLO spec file.

    The JSON half of the rule: every ``objectives[].id`` must be a
    dotted-lowercase literal, exactly as at ``objective(...)`` call sites —
    a scorecard id greps to its spec entry or the contract is broken.
    Structural validation (schema, kinds, duplicate ids) stays with
    ``repro.obs.slo.parse_spec``; the lint pass only owns the naming rule,
    so a malformed file yields one parse finding rather than a crash.

    Line numbers point at the ``"id"`` occurrence inside the source text so
    editors can jump to the offending entry.
    """
    findings: List[Finding] = []
    try:
        data = json.loads(source)
    except ValueError as exc:
        return [
            Finding(
                code="PW006",
                message=f"SLO spec is not valid JSON: {exc}",
                path=path,
                line=getattr(exc, "lineno", 1) or 1,
                severity=Severity.ERROR,
            )
        ]
    objectives = data.get("objectives") if isinstance(data, dict) else None
    if not isinstance(objectives, list):
        return findings
    lines = source.splitlines()
    for entry in objectives:
        if not isinstance(entry, dict):
            continue
        objective_id = entry.get("id")
        if isinstance(objective_id, str) and _METRIC_NAME_RE.match(objective_id):
            continue
        line_no, line_text = 1, ""
        needle = json.dumps(objective_id) if isinstance(objective_id, str) else '"id"'
        for index, text in enumerate(lines, start=1):
            if needle in text:
                line_no, line_text = index, text.strip()
                break
        findings.append(
            Finding(
                code="PW006",
                message=(
                    f"SLO objective id {objective_id!r} is not dotted-lowercase "
                    "(layer.component.objective)"
                ),
                path=path,
                line=line_no,
                severity=Severity.ERROR,
                line_text=line_text,
            )
        )
    return findings


# ---------------------------------------------------------------------- PW007


def check_campaign_spec_file(path: str, source: str) -> List[Finding]:
    """PW007 over one ``campaigns/*.json`` campaign spec file.

    The structural contract lives in
    :func:`repro.campaign.spec.validate_campaign_data` — the exact
    validation ``repro campaign run`` performs at load time: literal
    experiment ids must exist in the registry, sweep axes must name real
    driver keyword arguments, seeds must be unique integers. Linting a
    spec statically means a typo'd id or axis fails CI, not a
    thousand-point sweep at 2am.

    Line numbers point at the offending fragment (the validator returns a
    ``(message, needle)`` pair per problem) so editors can jump there.
    """
    try:
        data = json.loads(source)
    except ValueError as exc:
        return [
            Finding(
                code="PW007",
                message=f"campaign spec is not valid JSON: {exc}",
                path=path,
                line=getattr(exc, "lineno", 1) or 1,
                severity=Severity.ERROR,
            )
        ]
    # Deferred: repro.campaign pulls in the experiment registry, which the
    # pure-AST rules must not pay for on every lint run.
    from repro.campaign.spec import validate_campaign_data

    findings: List[Finding] = []
    lines = source.splitlines()
    for message, needle in validate_campaign_data(data):
        line_no, line_text = 1, ""
        if needle:
            for index, text in enumerate(lines, start=1):
                if needle in text:
                    line_no, line_text = index, text.strip()
                    break
        findings.append(
            Finding(
                code="PW007",
                message=message,
                path=path,
                line=line_no,
                severity=Severity.ERROR,
                line_text=line_text,
            )
        )
    return findings
