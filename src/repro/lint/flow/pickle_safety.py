"""PW103: unpicklable values crossing the process-pool boundary.

Everything placed on a :class:`~repro.runner.tasks.TaskSpec`, submitted to
the pool alongside ``execute_task``, or handed to a ``LivePublisher``
must survive a pickle round-trip into a worker process. Lambdas, nested
functions, generator expressions, and open file handles fail outright at
submit time; module-level mutable state *pickles* but forks into an
independent copy per worker, so mutations silently diverge between the
parent and its workers — a reproducibility bug that only shows up under
``--jobs > 1``.

Hazards are recognised at extraction time (same-file dataflow: a name
assigned from a lambda/``open()`` in the enclosing function, a nested
``def``, a module-level dict/list/set literal) and looked one level into
dict literals, which is how ``TaskSpec.kwargs`` is built in practice.
Values the indexer cannot classify are presumed safe — this rule reports
only what it can justify.
"""

from __future__ import annotations

from typing import List

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.flow.index import ProjectIndex
from repro.lint.flow.rules import FlowRule, register_flow


@register_flow
class PoolPickleSafety(FlowRule):
    """Flag unpicklable or mutable values crossing the worker-pool boundary."""

    code = "PW103"
    name = "pool-pickle-hazard"
    description = (
        "A value that cannot safely cross the process-pool pickle "
        "boundary is passed to TaskSpec/execute_task/LivePublisher."
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> List[Finding]:
        findings: List[Finding] = []
        for module_name in sorted(index.modules):
            facts = index.modules[module_name]
            for hazard in facts.pool_hazards:
                mutable = "mutable" in hazard["hazard"]
                consequence = (
                    "each worker mutates its own forked copy, so state "
                    "diverges silently between processes"
                    if mutable
                    else "it cannot be pickled into a worker process"
                )
                findings.append(
                    self.finding(
                        config,
                        facts,
                        hazard,
                        f"{hazard['hazard']} crosses the pool boundary via "
                        f"{hazard['ctor']}(){hazard.get('detail', '')}: "
                        f"{consequence}",
                    )
                )
        return findings
