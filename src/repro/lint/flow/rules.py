"""Flow-rule base class and the PW1xx registry.

Interprocedural rules run once per *project* (not per file): they receive
the fully built :class:`~repro.lint.flow.index.ProjectIndex` and return
findings anchored at the call sites recorded in the module facts. The
registry is deliberately separate from the per-file one in
:mod:`repro.lint.rules` — per-file codes stay PW0xx, whole-program codes
stay PW1xx, and neither namespace can shadow the other.
"""

from __future__ import annotations

from typing import Any, Dict, List, Type

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.flow.index import ModuleFacts, ProjectIndex


class FlowRule:
    """One interprocedural rule. Subclasses set attributes and ``check``."""

    code: str = ""
    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR

    def check(self, index: ProjectIndex, config: LintConfig) -> List[Finding]:
        """Return every finding this rule derives from the project index."""
        raise NotImplementedError

    def finding(
        self,
        config: LintConfig,
        facts: ModuleFacts,
        site: Dict[str, Any],
        message: str,
    ) -> Finding:
        """Build a finding at a recorded site (``line``/``col``/``text``)."""
        return Finding(
            code=self.code,
            message=message,
            path=facts.path,
            line=int(site.get("line", 1)),
            column=int(site.get("col", 0)),
            severity=config.severity_for(self.code, self.default_severity),
            line_text=str(site.get("text", "")),
        )


_FLOW_REGISTRY: Dict[str, Type[FlowRule]] = {}


def register_flow(rule_cls: Type[FlowRule]) -> Type[FlowRule]:
    """Class decorator adding ``rule_cls`` to the flow registry.

    Codes must sit in the PW1xx range: the PW0xx space belongs to the
    per-file rules and the two registries must never collide.
    """
    code = rule_cls.code.upper()
    if not code.startswith("PW1") or not code[2:].isdigit():
        raise ValueError(
            f"flow rule code must look like 'PW1xx', got {rule_cls.code!r}"
        )
    existing = _FLOW_REGISTRY.get(code)
    if existing is not None and existing is not rule_cls:
        raise ValueError(
            f"duplicate flow rule code {code}: {existing} vs {rule_cls}"
        )
    _FLOW_REGISTRY[code] = rule_cls
    return rule_cls


def all_flow_rules() -> List[Type[FlowRule]]:
    """Registered flow rule classes, ordered by code."""
    _ensure_loaded()
    return [_FLOW_REGISTRY[code] for code in sorted(_FLOW_REGISTRY)]


def get_flow_rule(code: str) -> Type[FlowRule]:
    _ensure_loaded()
    try:
        return _FLOW_REGISTRY[code.upper()]
    except KeyError:
        raise KeyError(f"no flow rule registered under {code!r}") from None


def _ensure_loaded() -> None:
    # Rule modules self-register on import; importing them lazily here
    # avoids rules <-> rule-module import cycles.
    import repro.lint.flow.event_kinds  # noqa: F401
    import repro.lint.flow.pickle_safety  # noqa: F401
    import repro.lint.flow.reachability  # noqa: F401
    import repro.lint.flow.rng_streams  # noqa: F401
    import repro.lint.flow.units_flow  # noqa: F401


def run_flow_rules(
    index: ProjectIndex, config: LintConfig
) -> List[Finding]:
    """Run every enabled flow rule over the index; pragma-suppressed
    findings are dropped here so rules never need to consult pragmas."""
    findings: List[Finding] = []
    for rule_cls in all_flow_rules():
        if not config.rule_enabled(rule_cls.code):
            continue
        findings.extend(rule_cls().check(index, config))
    kept: List[Finding] = []
    by_path = {facts.path: facts for facts in index.modules.values()}
    for finding in findings:
        facts = by_path.get(finding.path)
        if facts is not None and index.is_suppressed(
            facts, finding.line, finding.code
        ):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.column, f.code, f.message))
    return kept
