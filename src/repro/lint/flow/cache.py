"""Incremental flow-analysis cache keyed on per-module content hashes.

The flow pass is whole-program, but almost every invocation sees an
almost-unchanged tree — so the cache stores, per module, the content hash,
the extracted :class:`~repro.lint.flow.index.ModuleFacts`, *and* the
module's per-file (PW0xx) findings. A warm run re-reads sources, hashes
them, and re-parses only what changed; the interprocedural rules then run
over a mix of cached and fresh facts. That is the same idiom as
:class:`repro.runner.cache.ResultCache` — content-addressed inputs, a
schema version that invalidates wholesale on layout changes — scoped down
to one JSON document because facts are small and readable.

Two digests guard validity beyond the per-module hashes:

* the *config* digest (canonicalised :class:`LintConfig` fields) — rule
  behaviour depends on suffix lists, sim packages, the rng module;
* the *linter* digest (every ``.py`` under ``repro/lint``) — editing a
  rule must invalidate every cached finding it produced.

Layout (``.repro_cache/flow_index.json`` under the config root)::

    {"schema": 1, "config": <sha256>, "linter": <sha256>,
     "modules": {"<display path>": {"hash": <sha256>,
                                    "facts": {...ModuleFacts...},
                                    "findings": [...Finding dicts...]}}}

Writes go through :func:`repro.obs.ioutil.write_atomic` with sorted keys,
so the on-disk document is deterministic and a killed run can never leave
a torn cache (an unreadable one is treated as cold, never trusted).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.flow.index import ModuleFacts
from repro.obs.ioutil import write_atomic

#: Bump when the facts schema or cache layout changes; stale-schema caches
#: are discarded wholesale.
FLOW_CACHE_SCHEMA = 1

#: Cache file, relative to the config root (the ``ResultCache`` directory).
DEFAULT_FLOW_CACHE = ".repro_cache/flow_index.json"


def content_hash(source: str) -> str:
    """SHA-256 of one module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def config_digest(config: LintConfig) -> str:
    """Digest of every config field that can change analysis results."""
    payload = json.dumps(
        {
            "sim_packages": list(config.sim_packages),
            "unit_suffixes": list(config.unit_suffixes),
            "rng_module": config.rng_module,
            "disable": sorted(c.upper() for c in config.disable),
            "severity": {
                code: sev.value
                for code, sev in sorted(config.severity_overrides.items())
            },
            "tree_rules": {
                tree: list(codes)
                for tree, codes in sorted(config.tree_rules.items())
            },
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def linter_digest(lint_root: Optional[Path] = None) -> str:
    """SHA-256 over the linter's own sources (``repro/lint/**/*.py``).

    Folded in sorted-relative-path order with NUL separators (the
    :func:`repro.runner.cache.code_fingerprint` construction): any edit to
    a rule, the indexer, or this cache module invalidates every cached
    fact and finding.
    """
    if lint_root is None:
        lint_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(lint_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(lint_root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def _finding_to_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "code": finding.code,
        "message": finding.message,
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "severity": finding.severity.value,
        "line_text": finding.line_text,
    }


def _finding_from_dict(data: Dict[str, Any]) -> Finding:
    return Finding(
        code=str(data["code"]),
        message=str(data["message"]),
        path=str(data["path"]),
        line=int(data["line"]),
        column=int(data["column"]),
        severity=Severity(data["severity"]),
        line_text=str(data.get("line_text", "")),
    )


@dataclass
class CacheEntry:
    """One module's cached state: content hash, facts, per-file findings."""

    digest: str
    facts: ModuleFacts
    findings: List[Finding] = field(default_factory=list)


class FlowCache:
    """Load/update/save the per-module facts cache.

    ``load`` never raises: a missing, unparseable, schema-mismatched, or
    digest-mismatched cache is simply cold. ``entry_for`` is a pure hash
    lookup; the engine decides what to do with misses.
    """

    def __init__(self, path: Path, config: LintConfig) -> None:
        self.path = path
        self.config_digest = config_digest(config)
        self.linter_digest = linter_digest()
        self.entries: Dict[str, CacheEntry] = {}
        self.loaded = False

    @classmethod
    def for_config(
        cls, config: LintConfig, path: Optional[Path] = None
    ) -> "FlowCache":
        if path is None:
            root = config.root or Path(".")
            path = root / DEFAULT_FLOW_CACHE
        return cls(path, config)

    def load(self) -> bool:
        """Read the cache; returns True when any entry was accepted."""
        self.entries = {}
        self.loaded = True
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        if not isinstance(data, dict) or data.get("schema") != FLOW_CACHE_SCHEMA:
            return False
        if data.get("config") != self.config_digest:
            return False
        if data.get("linter") != self.linter_digest:
            return False
        modules = data.get("modules", {})
        if not isinstance(modules, dict):
            return False
        for display, record in modules.items():
            try:
                entry = CacheEntry(
                    digest=str(record["hash"]),
                    facts=ModuleFacts.from_dict(record["facts"]),
                    findings=[
                        _finding_from_dict(f) for f in record.get("findings", [])
                    ],
                )
            except (KeyError, TypeError, ValueError):
                continue  # one bad record degrades to a per-module miss
            self.entries[str(display)] = entry
        return bool(self.entries)

    def entry_for(self, display: str, digest: str) -> Optional[CacheEntry]:
        """The cached entry for ``display``, iff its content hash matches."""
        entry = self.entries.get(display)
        if entry is not None and entry.digest == digest:
            return entry
        return None

    def put(
        self,
        display: str,
        digest: str,
        facts: ModuleFacts,
        findings: List[Finding],
    ) -> None:
        self.entries[display] = CacheEntry(
            digest=digest, facts=facts, findings=list(findings)
        )

    def prune_to(self, displays: List[str]) -> None:
        """Drop entries for modules no longer part of the linted set."""
        keep = set(displays)
        self.entries = {
            display: entry
            for display, entry in self.entries.items()
            if display in keep
        }

    def save(self) -> None:
        payload = {
            "schema": FLOW_CACHE_SCHEMA,
            "config": self.config_digest,
            "linter": self.linter_digest,
            "modules": {
                display: {
                    "hash": entry.digest,
                    "facts": entry.facts.to_dict(),
                    "findings": [
                        _finding_to_dict(f) for f in entry.findings
                    ],
                }
                for display, entry in sorted(self.entries.items())
            },
        }
        write_atomic(
            self.path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
