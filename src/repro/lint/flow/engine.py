"""The ``--flow`` driver: whole-program lint with an incremental cache.

:func:`flow_lint_paths` is the CLI's flow entry point. One pass produces
*both* finding layers — per-file PW0xx (run on the tree parsed here, so
nothing is parsed twice) and interprocedural PW1xx (run over the
:class:`~repro.lint.flow.index.ProjectIndex` built from every module's
facts). The cache makes the warm path cheap: an unchanged module is
neither parsed nor re-analysed — its facts *and* its per-file findings
replay from :class:`~repro.lint.flow.cache.FlowCache`.

:func:`flow_lint_sources` is the fixture entry point for tests: in-memory
modules in, flow findings out, no filesystem or cache involved.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint import baseline as baseline_mod
from repro.lint.config import LintConfig
from repro.lint.engine import display_path, iter_python_files
from repro.lint.findings import Finding, Severity, assign_occurrences
from repro.lint.flow.cache import FlowCache, content_hash
from repro.lint.flow.index import ModuleFacts, ProjectIndex, extract_facts
from repro.lint.flow.rules import run_flow_rules
from repro.lint.pragmas import collect_pragmas, is_suppressed
from repro.lint.rules import (
    FileContext,
    build_import_map,
    module_name_for,
    run_rules,
)


@dataclass
class FlowStats:
    """How much work the flow pass actually did (stderr telemetry)."""

    files: int = 0
    parsed: int = 0
    reused: int = 0
    flow_findings: int = 0
    cache_loaded: bool = False

    def summary(self) -> str:
        return (
            f"flow: {self.files} file(s), {self.parsed} parsed, "
            f"{self.reused} reused from cache, "
            f"{self.flow_findings} interprocedural finding(s)"
        )


def _syntax_finding(display: str, exc: SyntaxError) -> Finding:
    return Finding(
        code="PW000",
        message=f"syntax error: {exc.msg}",
        path=display,
        line=exc.lineno or 1,
        column=(exc.offset or 1) - 1,
        severity=Severity.ERROR,
    )


def _lint_parsed(
    source: str,
    tree: ast.AST,
    display: str,
    module: str,
    config: LintConfig,
    codes: Optional[Tuple[str, ...]],
) -> List[Finding]:
    """Per-file rules on an already-parsed tree (mirrors ``lint_source``)."""
    ctx = FileContext(
        path=display,
        module=module,
        source=source,
        tree=tree,
        config=config,
        imports=build_import_map(tree),
    )
    findings = run_rules(ctx, frozenset(codes) if codes is not None else None)
    pragmas = collect_pragmas(source)
    return [f for f in findings if not is_suppressed(pragmas, f.line, f.code)]


def _tree_filter(
    findings: Iterable[Finding], config: LintConfig
) -> List[Finding]:
    """Drop findings whose code is outside their tree's rule subset."""
    kept: List[Finding] = []
    for finding in findings:
        codes = config.codes_for_display_path(finding.path)
        if codes is not None and finding.code not in codes:
            continue
        kept.append(finding)
    return kept


def flow_lint_paths(
    paths: Iterable[str],
    config: Optional[LintConfig] = None,
    use_baseline: bool = True,
    use_cache: bool = True,
    cache_path: Optional[Path] = None,
    changed_only: bool = False,
) -> Tuple[List[Finding], FlowStats]:
    """Whole-program lint of files/directories.

    Returns every finding (baselined ones marked) plus a
    :class:`FlowStats`. With ``changed_only``, findings are restricted to
    files whose content hash differs from the loaded cache — documented
    tradeoff: an interprocedural finding *landing* in an unchanged file is
    suppressed from the report (it stays in the full run), which is the
    right shape for fast pre-commit iteration, not for CI gates.
    """
    config = config or LintConfig()
    stats = FlowStats()
    cache = FlowCache.for_config(config, cache_path)
    if use_cache:
        stats.cache_loaded = cache.load()

    facts_list: List[ModuleFacts] = []
    file_findings: List[Finding] = []
    displays: List[str] = []
    changed: Set[str] = set()

    for path in iter_python_files([Path(p) for p in paths], config):
        display = display_path(path, config)
        source = path.read_text(encoding="utf-8")
        digest = content_hash(source)
        stats.files += 1
        displays.append(display)

        previous = cache.entries.get(display)
        if previous is None or previous.digest != digest:
            changed.add(display)

        entry = cache.entry_for(display, digest) if use_cache else None
        if entry is not None:
            stats.reused += 1
            facts_list.append(entry.facts)
            file_findings.extend(entry.findings)
            continue

        stats.parsed += 1
        module = module_name_for(path)
        codes = config.codes_for_display_path(display)
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            finding = _syntax_finding(display, exc)
            file_findings.append(finding)
            cache.put(
                display,
                digest,
                ModuleFacts(module=module, path=display),
                [finding],
            )
            continue
        found = _lint_parsed(source, tree, display, module, config, codes)
        facts = extract_facts(source, display, module, config, tree=tree)
        file_findings.extend(found)
        facts_list.append(facts)
        cache.put(display, digest, facts, found)

    index = ProjectIndex(facts_list, config)
    flow_findings = _tree_filter(run_flow_rules(index, config), config)
    stats.flow_findings = len(flow_findings)

    findings = file_findings + flow_findings
    if changed_only:
        findings = [f for f in findings if f.path in changed]
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code, f.message))
    assign_occurrences(findings)
    if use_baseline:
        known = baseline_mod.load_baseline(config.baseline_path)
        baseline_mod.apply_baseline(findings, known)
    if use_cache:
        cache.prune_to(displays)
        cache.save()
    return findings, stats


def flow_lint_sources(
    modules: Dict[str, str], config: Optional[LintConfig] = None
) -> List[Finding]:
    """Run only the interprocedural rules over in-memory modules.

    ``modules`` maps dotted module names to source text; paths are
    synthesised (``repro.sim.engine`` -> ``repro/sim/engine.py``). This is
    the unit-test entry point — no cache, no baseline, no filesystem.
    """
    config = config or LintConfig()
    facts_list: List[ModuleFacts] = []
    for module in sorted(modules):
        source = modules[module]
        display = module.replace(".", "/") + ".py"
        facts_list.append(
            extract_facts(source, display, module, config)
        )
    index = ProjectIndex(facts_list, config)
    findings = run_flow_rules(index, config)
    assign_occurrences(findings)
    return findings
