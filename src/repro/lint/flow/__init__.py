"""Whole-program flow analysis: cross-module determinism invariants.

The per-file rules (:mod:`repro.lint.checks`, PW001-PW006) see one module
at a time; the invariants that actually break reproducibility *between*
modules — two components forking the same RNG stream name, unseeded
entropy reachable from an experiment entry point, an unpicklable value
riding a :class:`~repro.runner.tasks.TaskSpec` across the process pool —
need a project-wide view. This package provides it:

* :mod:`repro.lint.flow.index` — per-module fact extraction (symbol table,
  import-resolved call facts) folded into a :class:`ProjectIndex` whose
  nodes use the registry's ``"module:callable"`` target format;
* :mod:`repro.lint.flow.cache` — an incremental cache keyed on per-module
  content hashes (the :class:`~repro.runner.cache.ResultCache` idiom), so
  a warm ``repro lint --flow`` re-extracts only what changed;
* five interprocedural rules with stable PW1xx codes:
  :mod:`~repro.lint.flow.rng_streams` (PW101),
  :mod:`~repro.lint.flow.reachability` (PW102),
  :mod:`~repro.lint.flow.pickle_safety` (PW103),
  :mod:`~repro.lint.flow.event_kinds` (PW104),
  :mod:`~repro.lint.flow.units_flow` (PW105);
* :mod:`repro.lint.flow.engine` — the ``--flow`` driver gluing the above
  to the existing pragma/baseline/severity machinery.

See ``docs/lint.md`` for the PW1xx catalog and the index/cache schema.
"""

from repro.lint.flow.engine import FlowStats, flow_lint_paths, flow_lint_sources
from repro.lint.flow.index import ModuleFacts, ProjectIndex, extract_facts
from repro.lint.flow.rules import FlowRule, all_flow_rules, get_flow_rule

__all__ = [
    "FlowRule",
    "FlowStats",
    "ModuleFacts",
    "ProjectIndex",
    "all_flow_rules",
    "extract_facts",
    "flow_lint_paths",
    "flow_lint_sources",
    "get_flow_rule",
]
