"""PW104: trace event kinds scheduled and handled inconsistently.

Trace kinds are plain strings agreed on *across* modules: producers call
``trace.emit(time, source, "kind", ...)`` (usually behind a
``trace.wants("kind")`` guard) and consumers subscribe via ``wants``,
``filter(kind=...)``, or ``enabled_kinds=[...]`` / ``trace_kinds=[...]``
lists. Nothing checks the strings agree — a typo on either side silently
drops the event, and the analysis that depended on it reads an empty
trace.

Two directions are checked project-wide:

* a consumed kind that **no module ever emits** (dead subscription —
  likely a typo of a real kind, or the producer was removed); only
  checked when the index saw at least one emit, so linting a subtree
  without the producers stays quiet;
* an emit whose enclosing function guards on ``wants`` for *other* kinds
  but not the one it emits (the emit escapes its own gate, so the
  recorder receives kinds it never enabled).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.flow.index import ProjectIndex
from repro.lint.flow.rules import FlowRule, register_flow


@register_flow
class EventKindMismatch(FlowRule):
    """Match consumed event kinds against the project-wide emitted set."""

    code = "PW104"
    name = "event-kind-mismatch"
    description = (
        "A trace kind is consumed that nothing emits, or emitted past "
        "its enclosing wants() guard."
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> List[Finding]:
        findings: List[Finding] = []
        emitted = index.emitted_kinds()

        if emitted:
            for module_name in sorted(index.modules):
                facts = index.modules[module_name]
                for consume in facts.consumes:
                    if consume["kind"] in emitted:
                        continue
                    findings.append(
                        self.finding(
                            config,
                            facts,
                            consume,
                            f"trace kind {consume['kind']!r} is consumed "
                            f"(via {consume['form']}) but never emitted by "
                            "any indexed module: the subscription is dead "
                            "— emitted kinds are "
                            f"{', '.join(sorted(emitted))}",
                        )
                    )

        # wants-guard coverage: per (module, function), the set of kinds
        # guarded via ``wants`` must cover every kind emitted there.
        guards: Dict[Tuple[str, str], Set[str]] = {}
        for module_name, facts in index.modules.items():
            for consume in facts.consumes:
                if consume["form"] != "wants":
                    continue
                key = (module_name, consume["caller"])
                guards.setdefault(key, set()).add(consume["kind"])
        for module_name in sorted(index.modules):
            facts = index.modules[module_name]
            for emit in facts.emits:
                guarded = guards.get((module_name, emit["caller"]))
                if not guarded or emit["kind"] in guarded:
                    continue
                findings.append(
                    self.finding(
                        config,
                        facts,
                        emit,
                        f"emit of trace kind {emit['kind']!r} is not "
                        "covered by this function's wants() guard "
                        f"(which checks {', '.join(sorted(guarded))}): "
                        "the event bypasses the recorder's kind gate",
                    )
                )
        return findings
