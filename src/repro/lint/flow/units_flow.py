"""PW105: unit-suffix discipline across call boundaries.

PW004 checks suffixed arguments against parameters it can see — keywords
anywhere, positionals only for same-file ``def``s and ``self.`` methods.
A positional handed to an *imported* function is invisible to it, and the
import boundary is exactly where unit conventions drift between authors
(an ``_mw`` power fed to a ``_dbm`` parameter two packages away).

This rule extends the check one call-graph level: every call whose callee
resolves to an indexed function or class constructor has its suffixed
positional arguments matched against the callee's real parameter names.
Same-module calls to plain functions are skipped (PW004 already owns
them); constructors are checked in both directions since PW004 never
sees ``__init__`` signatures. Mirroring PW004, a syntactic conversion
(``dbm_to_watts(rx_dbm)``) has no suffix and therefore always passes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.flow.index import ModuleFacts, ProjectIndex, _suffix_of
from repro.lint.flow.rules import FlowRule, register_flow


@register_flow
class UnitFlowMismatch(FlowRule):
    """Check unit suffixes of arguments against resolved callee parameters."""

    code = "PW105"
    name = "unit-suffix-flow-mismatch"
    description = (
        "A unit-suffixed positional argument crosses a call boundary "
        "into a parameter carrying a different unit suffix."
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> List[Finding]:
        findings: List[Finding] = []
        for module_name in sorted(index.modules):
            facts = index.modules[module_name]
            for record in facts.unit_calls:
                findings.extend(
                    self._check_record(index, config, facts, record)
                )
        return findings

    def _check_record(
        self,
        index: ProjectIndex,
        config: LintConfig,
        facts: ModuleFacts,
        record: dict,
    ) -> List[Finding]:
        callee = record["callee"]
        node = index.resolve_dotted(facts.module, callee)
        if node is None:
            return []
        if node in index.class_nodes:
            # Only constructor calls check against __init__; a
            # ``pkg.Class.method`` origin that fell back to the class
            # node has the wrong signature and is skipped.
            if callee.split(".")[-1] != node.split(":", 1)[1]:
                return []
        params = self._params_for(index, node)
        if params is None:
            return []
        if "." not in callee and node in index.functions:
            # Same-module plain-function call: PW004's territory.
            return []
        findings: List[Finding] = []
        for arg in record["args"]:
            idx = arg["idx"]
            if idx >= len(params):
                continue
            param_suffix = _suffix_of(params[idx], config.unit_suffixes)
            if param_suffix and param_suffix != arg["suffix"]:
                findings.append(
                    self.finding(
                        config,
                        facts,
                        arg,
                        f"_{arg['suffix']} value crosses into parameter "
                        f"{params[idx]!r} (_{param_suffix}) of {node}; "
                        "convert via repro.units at the call site",
                    )
                )
        return findings

    def _params_for(
        self, index: ProjectIndex, node: str
    ) -> Optional[List[str]]:
        if node in index.functions:
            return list(index.functions[node].get("params", []))
        if node in index.class_nodes:
            init = f"{node}.__init__"
            if init in index.functions:
                return list(index.functions[init].get("params", []))
        return None
