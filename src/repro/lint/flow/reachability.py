"""PW102: unseeded randomness reachable from experiment entry points.

The per-file PW002 flags global ``random.*`` draws wherever they appear;
this rule answers the cross-module question PW002 cannot: *can an
experiment actually reach one?* Entry points are the registry's
``"module:callable"`` target literals (resolved against the index) plus
every top-level function of ``*.experiments.*`` modules; sinks are the
entropy sources recorded at extraction time (global ``random`` draws,
bare ``random.Random``, ``os.urandom``/``getrandom``, ``secrets.*``,
``uuid.uuid1``/``uuid4``, ``numpy.random.*``). Any sink whose enclosing
function is reachable over the call graph is a determinism hole: results
would differ between equal-seed runs.

Sinks inside the sanctioned RNG module (``config.rng_module``) are exempt
— routing entropy through :class:`repro.sim.rng.RandomStreams` is exactly
the fix this rule pushes toward. Findings carry the shortest entry-to-sink
chain so the report explains *why* the sink is reachable, and the BFS is
order-stable so the chain never varies between runs.
"""

from __future__ import annotations

from typing import List

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.flow.index import ProjectIndex
from repro.lint.flow.rules import FlowRule, register_flow


@register_flow
class UnseededReachability(FlowRule):
    """Trace unseeded entropy sinks reachable from registry entry points."""

    code = "PW102"
    name = "unseeded-randomness-reachable"
    description = (
        "An experiment entry point can reach an entropy source that is "
        "not routed through the seeded RandomStreams lineage."
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> List[Finding]:
        entries = index.entry_nodes()
        if not entries:
            return []
        parents = index.reachable_from(entries)
        findings: List[Finding] = []
        for module_name in sorted(index.modules):
            if module_name == config.rng_module:
                continue
            facts = index.modules[module_name]
            for sink in facts.sinks:
                node = f"{module_name}:{sink['caller']}"
                if node not in parents:
                    # Methods are also reachable through their class node's
                    # conservative fan-out; that edge exists in the graph,
                    # so an absent node really is unreachable.
                    continue
                chain = " -> ".join(index.path_to(parents, node))
                findings.append(
                    self.finding(
                        config,
                        facts,
                        sink,
                        f"{sink['origin']} is reachable from an experiment "
                        f"entry point ({chain}): draws here are not seeded "
                        "by the run's RandomStreams lineage, so equal-seed "
                        "runs diverge — route through a named stream",
                    )
                )
        return findings
