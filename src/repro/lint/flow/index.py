"""Project indexer: per-module fact extraction and the whole-program index.

:func:`extract_facts` walks one module's AST exactly once and distils the
facts the PW1xx rules need into a :class:`ModuleFacts` — a plain,
JSON-serialisable record so the incremental cache
(:mod:`repro.lint.flow.cache`) can persist it keyed on the module's
content hash. :class:`ProjectIndex` folds every module's facts into the
whole-program view: a symbol table of ``"module:qualname"`` nodes (the
same target format the experiment registry uses), an import-resolved call
graph, and the project-wide literal pools (RNG stream names, trace kinds,
registry target strings) the rules cross-reference.

Resolution is deliberately conservative: a call whose callee cannot be
resolved through the import map or the local symbol table produces no
edge rather than a guessed one, so every PW1xx finding rests on an edge
the indexer can actually justify.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.rules import build_import_map

#: ``"module:callable"`` literals (the registry's target format) double as
#: flow entry points; see :mod:`repro.lint.flow.reachability`.
TARGET_LITERAL_RE = re.compile(
    r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)+:[A-Za-z_][A-Za-z0-9_]*$"
)

#: Constructors whose arguments cross the process-pool pickle boundary.
POOL_CTOR_ORIGINS: Tuple[str, ...] = (
    "repro.runner.tasks.TaskSpec",
    "repro.obs.live.LivePublisher",
)

#: Worker entry points: arguments submitted alongside them are pickled.
WORKER_ENTRY_ORIGINS: Tuple[str, ...] = ("repro.runner.tasks.execute_task",)

#: ``random`` module functions drawing from (or reseeding) the global RNG.
#: Mirrors the PW002 set; duplicated here so facts extraction never imports
#: the per-file rule implementations.
GLOBAL_RANDOM_DRAWS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "seed",
    }
)

#: Exact qualnames that are unseeded-entropy sinks (PW102 terminals).
ENTROPY_QUALNAMES = frozenset(
    {
        "random.Random",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Dotted prefixes that are entropy sinks wholesale.
ENTROPY_PREFIXES: Tuple[str, ...] = ("secrets.", "numpy.random.")


def _suffix_of(name: Optional[str], suffixes: Tuple[str, ...]) -> Optional[str]:
    """Unit suffix carried by ``name`` (``rx_dbm`` -> ``dbm``), if any."""
    if not name:
        return None
    if name in suffixes:
        return name
    parts = name.rsplit("_", 1)
    if len(parts) == 2 and parts[1] in suffixes:
        return parts[1]
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.UnaryOp):
        return _terminal_name(node.operand)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dotted_text(node: ast.AST) -> Optional[str]:
    """Literal dotted source of a Name/Attribute chain (no resolution)."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def _is_entropy_origin(origin: str) -> bool:
    if origin in ENTROPY_QUALNAMES:
        return True
    if origin.startswith("random.") and origin[7:] in GLOBAL_RANDOM_DRAWS:
        return True
    return any(origin.startswith(prefix) for prefix in ENTROPY_PREFIXES)


@dataclass
class ModuleFacts:
    """Everything the flow rules need to know about one module.

    Every field is built from plain JSON types (via :meth:`to_dict` /
    :meth:`from_dict`) so the incremental cache can round-trip facts
    without re-parsing unchanged modules. Site records are dicts with at
    least ``line``/``col``/``text`` (the flagged line's stripped source,
    which is what baseline fingerprints hash).
    """

    module: str
    path: str
    #: Function/method qualname -> {"params": [...], "line": int}.
    defs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Class name -> {"methods": [...], "line": int}.
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Call-graph edges: {"caller", "callee", "line"} with callee either a
    #: resolved dotted origin, a bare local name, or ``self.<method>``.
    calls: List[Dict[str, Any]] = field(default_factory=list)
    #: Name/Attribute expressions passed as call arguments (callbacks
    #: handed to ``Simulator.schedule`` and friends).
    arg_refs: List[Dict[str, Any]] = field(default_factory=list)
    #: String literals in the registry's ``"module:callable"`` format.
    target_literals: List[str] = field(default_factory=list)
    #: ``.stream(name)`` / ``.fork(name)`` sites with literal names.
    streams: List[Dict[str, Any]] = field(default_factory=list)
    #: Unseeded-entropy call sites (PW102 terminals).
    sinks: List[Dict[str, Any]] = field(default_factory=list)
    #: ``.emit(time, source, "kind", ...)`` sites with literal kinds.
    emits: List[Dict[str, Any]] = field(default_factory=list)
    #: Kind consumers: ``.wants("k")``, ``.filter(kind="k")``,
    #: ``enabled_kinds=[...]`` / ``trace_kinds=[...]`` literal lists.
    consumes: List[Dict[str, Any]] = field(default_factory=list)
    #: Pickle hazards at pool-boundary constructor/submit sites (PW103).
    pool_hazards: List[Dict[str, Any]] = field(default_factory=list)
    #: Calls carrying unit-suffixed positional arguments (PW105).
    unit_calls: List[Dict[str, Any]] = field(default_factory=list)
    #: Pragma map (line -> suppressed codes), logical-line expanded.
    pragmas: Dict[int, List[str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "defs": self.defs,
            "classes": self.classes,
            "calls": self.calls,
            "arg_refs": self.arg_refs,
            "target_literals": self.target_literals,
            "streams": self.streams,
            "sinks": self.sinks,
            "emits": self.emits,
            "consumes": self.consumes,
            "pool_hazards": self.pool_hazards,
            "unit_calls": self.unit_calls,
            "pragmas": {str(line): codes for line, codes in self.pragmas.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleFacts":
        facts = cls(module=str(data["module"]), path=str(data["path"]))
        for name in (
            "defs",
            "classes",
            "calls",
            "arg_refs",
            "target_literals",
            "streams",
            "sinks",
            "emits",
            "consumes",
            "pool_hazards",
            "unit_calls",
        ):
            setattr(facts, name, data.get(name, getattr(facts, name)))
        facts.pragmas = {
            int(line): list(codes)
            for line, codes in dict(data.get("pragmas", {})).items()
        }
        return facts


class _FactVisitor(ast.NodeVisitor):
    """Single-pass extractor feeding a :class:`ModuleFacts`."""

    def __init__(
        self, facts: ModuleFacts, source: str, config: LintConfig
    ) -> None:
        self.facts = facts
        self.config = config
        self.lines = source.splitlines()
        self.imports: Dict[str, str] = {}
        #: (name, kind) scope stack; kind is "class" or "func".
        self.stack: List[Tuple[str, str]] = []
        #: Per-function local pickle hazards: name -> hazard description.
        self.local_hazards: List[Dict[str, str]] = []
        #: Module-level names bound to mutable literals (dict/list/set).
        self.mutable_globals: Dict[str, str] = {}
        #: Dotted receiver texts assigned from ``.fork(...)`` calls.
        self.fork_assigned: Set[str] = set()

    # ------------------------------------------------------------- helpers

    def _text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _site(self, node: ast.AST) -> Dict[str, Any]:
        lineno = getattr(node, "lineno", 1)
        return {
            "line": lineno,
            "col": getattr(node, "col_offset", 0),
            "text": self._text(lineno),
        }

    def _caller(self) -> str:
        names = [name for name, kind in self.stack if kind == "func"]
        # Method qualnames keep their class prefix so call-graph nodes
        # match the "module:Class.method" form.
        qual: List[str] = []
        for name, kind in self.stack:
            qual.append(name)
        return ".".join(qual) if qual else "<module>"

    def _owner(self) -> str:
        return self.stack[0][0] if self.stack else "<module>"

    def _resolve(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.imports.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))

    # ------------------------------------------------------ def extraction

    def visit_Module(self, node: ast.Module) -> None:
        self.imports = build_import_map(node)
        self.generic_visit(node)

    def _params_of(self, node: ast.AST) -> List[str]:
        args = node.args
        params = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        return params

    def _visit_def(self, node: ast.AST) -> None:
        qual = ".".join([name for name, _ in self.stack] + [node.name])
        params = self._params_of(node)
        if self.stack and self.stack[-1][1] == "class" and params:
            if params[0] in ("self", "cls"):
                params = params[1:]
        self.facts.defs[qual] = {"params": params, "line": node.lineno}
        if self.stack and self.stack[-1][1] == "func" and self.local_hazards:
            self.local_hazards[-1][node.name] = "a nested function"
        self.stack.append((node.name, "func"))
        self.local_hazards.append({})
        self.generic_visit(node)
        self.local_hazards.pop()
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_def(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self.stack:
            methods = [
                child.name
                for child in node.body
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            self.facts.classes[node.name] = {
                "methods": methods,
                "line": node.lineno,
            }
        self.stack.append((node.name, "class"))
        self.generic_visit(node)
        self.stack.pop()

    # ------------------------------------------------- assignment tracking

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_assignment(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assignment([node.target], node.value)
        self.generic_visit(node)

    def _record_assignment(self, targets: List[ast.AST], value: ast.AST) -> None:
        value_hazard = self._value_hazard(value)
        fork_value = (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "fork"
        )
        at_module_level = not self.stack
        in_function = bool(self.local_hazards)
        for target in targets:
            dotted = _dotted_text(target)
            if dotted is None:
                continue
            if fork_value:
                self.fork_assigned.add(dotted)
            if "." in dotted:
                continue
            if at_module_level and isinstance(
                value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp)
            ):
                self.mutable_globals[dotted] = "module-level mutable state"
            elif in_function and value_hazard:
                self.local_hazards[-1][dotted] = value_hazard

    def _value_hazard(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if isinstance(value, ast.Call) and self._resolve(value.func) == "open":
            return "an open file handle"
        return None

    # ------------------------------------------------------ string literals

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str) and TARGET_LITERAL_RE.match(node.value):
            self.facts.target_literals.append(node.value)
        self.generic_visit(node)

    # -------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        caller = self._caller()
        origin = self._resolve(node.func)
        site = self._site(node)

        if origin is not None:
            self.facts.calls.append(
                {"caller": caller, "callee": origin, "line": node.lineno}
            )
            if _is_entropy_origin(origin):
                self.facts.sinks.append(
                    {"caller": caller, "origin": origin, **site}
                )
            if origin in POOL_CTOR_ORIGINS or (
                "." not in origin
                and self.imports.get(origin.split(".")[0], "") in POOL_CTOR_ORIGINS
            ):
                self._check_pool_args(
                    node, ctor=origin.rsplit(".", 1)[-1], skip_first=0
                )

        # Callback references handed as arguments (scheduled callbacks,
        # pool submissions) keep the call graph honest about indirect flow.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                ref = self._resolve(arg)
                if ref is not None:
                    self.facts.arg_refs.append(
                        {"caller": caller, "ref": ref, "line": node.lineno}
                    )

        func = node.func
        if isinstance(func, ast.Attribute):
            self._visit_attribute_call(node, func, caller, site)

        self._collect_unit_positions(node, caller, origin)
        self.generic_visit(node)

    def _visit_attribute_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        caller: str,
        site: Dict[str, Any],
    ) -> None:
        attr = func.attr
        if attr in ("stream", "fork") and node.args:
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                self.facts.streams.append(
                    {
                        "caller": caller,
                        "owner": self._owner(),
                        "kind": attr,
                        "name": name_arg.value,
                        "forked": self._is_fork_derived(func.value),
                        **site,
                    }
                )
        elif attr == "emit" and len(node.args) >= 3:
            kind_arg = node.args[2]
            if isinstance(kind_arg, ast.Constant) and isinstance(
                kind_arg.value, str
            ):
                self.facts.emits.append(
                    {"caller": caller, "kind": kind_arg.value, **site}
                )
        elif attr == "wants" and node.args:
            # Other APIs share the method name (FaultPlan.wants); only
            # receivers following the trace naming convention count.
            receiver = _dotted_text(func.value)
            terminal = receiver.split(".")[-1] if receiver else ""
            first = node.args[0]
            if (
                terminal in ("trace", "tracer", "recorder")
                and isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                self.facts.consumes.append(
                    {
                        "caller": caller,
                        "kind": first.value,
                        "form": "wants",
                        **site,
                    }
                )
        elif attr == "filter":
            for keyword in node.keywords:
                if keyword.arg != "kind":
                    continue
                value = keyword.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    self.facts.consumes.append(
                        {
                            "caller": caller,
                            "kind": value.value,
                            "form": "filter",
                            **self._site(value),
                        }
                    )
        elif attr == "submit" and node.args:
            first_origin = self._resolve(node.args[0])
            if first_origin in WORKER_ENTRY_ORIGINS:
                self._check_pool_args(node, ctor="submit", skip_first=1)

        for keyword in node.keywords:
            if keyword.arg in ("enabled_kinds", "trace_kinds") and isinstance(
                keyword.value, (ast.List, ast.Tuple)
            ):
                for element in keyword.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        self.facts.consumes.append(
                            {
                                "caller": caller,
                                "kind": element.value,
                                "form": keyword.arg,
                                **self._site(element),
                            }
                        )

    def _check_kw_kind_lists(self, node: ast.Call, caller: str) -> None:
        """Kept for API stability; kind-list keywords are handled inline."""

    def _is_fork_derived(self, receiver: ast.AST) -> bool:
        for sub in ast.walk(receiver):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr == "fork":
                    return True
        dotted = _dotted_text(receiver)
        return dotted is not None and dotted in self.fork_assigned

    # ------------------------------------------------------ pickle hazards

    def _check_pool_args(
        self, node: ast.Call, ctor: str, skip_first: int
    ) -> None:
        values: List[Tuple[Optional[str], ast.AST]] = []
        for arg in node.args[skip_first:]:
            values.append((None, arg))
        for keyword in node.keywords:
            values.append((keyword.arg, keyword.value))
        for label, value in values:
            self._check_pool_value(ctor, label, value)
            if isinstance(value, ast.Dict):
                for inner in value.values:
                    self._check_pool_value(ctor, label, inner)

    def _check_pool_value(
        self, ctor: str, label: Optional[str], value: ast.AST
    ) -> None:
        hazard = self._value_hazard(value)
        if hazard is None and isinstance(value, ast.Name):
            if self.local_hazards and value.id in self.local_hazards[-1]:
                hazard = self.local_hazards[-1][value.id]
            elif value.id in self.mutable_globals and value.id not in self.imports:
                hazard = self.mutable_globals[value.id]
        if hazard is None:
            return
        where = f" (argument {label!r})" if label else ""
        self.facts.pool_hazards.append(
            {
                "caller": self._caller(),
                "ctor": ctor,
                "hazard": hazard,
                "detail": where,
                **self._site(value),
            }
        )

    # ------------------------------------------------------- unit positions

    def _collect_unit_positions(
        self, node: ast.Call, caller: str, origin: Optional[str]
    ) -> None:
        if origin is None:
            return
        suffixes = self.config.unit_suffixes
        args: List[Dict[str, Any]] = []
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break
            suffix = _suffix_of(_terminal_name(arg), suffixes)
            if suffix:
                args.append({"idx": index, "suffix": suffix, **self._site(arg)})
        if args:
            self.facts.unit_calls.append(
                {
                    "caller": caller,
                    "callee": origin,
                    "args": args,
                    "line": node.lineno,
                }
            )


def extract_facts(
    source: str,
    path: str,
    module: str,
    config: Optional[LintConfig] = None,
    tree: Optional[ast.AST] = None,
) -> ModuleFacts:
    """Extract one module's flow facts (parsing ``source`` unless ``tree``
    is supplied by a caller that already parsed it).

    Raises ``SyntaxError`` for broken sources — the flow engine converts
    that into the same synthetic ``PW000`` finding the per-file path uses.
    """
    from repro.lint.pragmas import collect_pragmas

    config = config or LintConfig()
    if tree is None:
        tree = ast.parse(source, filename=path)
    facts = ModuleFacts(module=module, path=path)
    visitor = _FactVisitor(facts, source, config)
    visitor.visit(tree)
    facts.pragmas = {
        line: sorted(codes) for line, codes in collect_pragmas(source).items()
    }
    return facts


class ProjectIndex:
    """The whole-program view: symbol table, call graph, literal pools.

    Nodes are ``"module:qualname"`` strings — exactly the experiment
    registry's target format, so a registry target literal resolves to its
    index node by string identity.
    """

    def __init__(self, modules: List[ModuleFacts], config: Optional[LintConfig] = None):
        self.config = config or LintConfig()
        self.modules: Dict[str, ModuleFacts] = {}
        for facts in modules:
            self.modules[facts.module] = facts
        #: "module:qual" -> {"params": [...], "line": ..., "path": ...}.
        self.functions: Dict[str, Dict[str, Any]] = {}
        #: "module:Class" -> {"methods": [...], "path": ...}.
        self.class_nodes: Dict[str, Dict[str, Any]] = {}
        for module_name in sorted(self.modules):
            facts = self.modules[module_name]
            for qual in sorted(facts.defs):
                node = f"{module_name}:{qual}"
                self.functions[node] = {**facts.defs[qual], "path": facts.path}
            for name in sorted(facts.classes):
                self.class_nodes[f"{module_name}:{name}"] = {
                    **facts.classes[name],
                    "path": facts.path,
                }
        self._module_names = sorted(self.modules, key=len, reverse=True)
        self._edges: Optional[Dict[str, List[str]]] = None

    # ---------------------------------------------------------- resolution

    def resolve_dotted(self, module: str, dotted: str) -> Optional[str]:
        """Map a resolved dotted origin onto an index node, if any.

        ``repro.rf.link.path_loss`` -> ``repro.rf.link:path_loss``;
        ``path_loss`` (bare, from ``module``) -> ``module:path_loss``;
        unresolvable origins return ``None``.
        """
        if "." not in dotted:
            facts = self.modules.get(module)
            if facts is None:
                return None
            if dotted in facts.defs:
                return f"{module}:{dotted}"
            if dotted in facts.classes:
                return f"{module}:{dotted}"
            return None
        for candidate in self._module_names:
            if dotted == candidate:
                return None
            if dotted.startswith(candidate + "."):
                qual = dotted[len(candidate) + 1 :]
                node = f"{candidate}:{qual}"
                if node in self.functions or node in self.class_nodes:
                    return node
                # ``pkg.Class.method`` resolves through the class node.
                head = qual.split(".")[0]
                class_node = f"{candidate}:{head}"
                if class_node in self.class_nodes:
                    return class_node
                return None
        return None

    def resolve_target(self, target: str) -> Optional[str]:
        """Resolve a ``"module:callable"`` literal to an index node."""
        module, _, qual = target.partition(":")
        node = f"{module}:{qual}"
        if node in self.functions or node in self.class_nodes:
            return node
        return None

    # ---------------------------------------------------------- call graph

    def edges(self) -> Dict[str, List[str]]:
        """Sorted adjacency of the project call graph (built once).

        Function nodes point at resolved callees; instantiating or
        referencing a class adds an edge to its class node, and every
        class node fans out to its methods (a conservative closure: once a
        component is constructed, any of its methods may be scheduled).
        """
        if self._edges is not None:
            return self._edges
        edges: Dict[str, Set[str]] = {}

        def add(src: str, dst: str) -> None:
            edges.setdefault(src, set()).add(dst)

        for module_name in sorted(self.modules):
            facts = self.modules[module_name]
            for record in facts.calls + facts.arg_refs:
                callee = record.get("callee") or record.get("ref") or ""
                caller_node = f"{module_name}:{record['caller']}"
                if callee.startswith("self.") and "." in record["caller"]:
                    klass = record["caller"].split(".")[0]
                    target = f"{module_name}:{klass}.{callee[5:]}"
                    if target in self.functions:
                        add(caller_node, target)
                    continue
                resolved = self.resolve_dotted(module_name, callee)
                if resolved is not None:
                    add(caller_node, resolved)
        for class_node, info in self.class_nodes.items():
            module_name = class_node.split(":", 1)[0]
            for method in info.get("methods", ()):
                target = f"{class_node}.{method}"
                if target in self.functions:
                    add(class_node, target)
        self._edges = {src: sorted(dsts) for src, dsts in edges.items()}
        return self._edges

    def reachable_from(self, entries: List[str]) -> Dict[str, Optional[str]]:
        """BFS over :meth:`edges`; node -> predecessor (entries map to None).

        Deterministic: entries and adjacency are visited in sorted order,
        so the predecessor tree (and therefore every reported path) is
        stable across runs and machines.
        """
        edges = self.edges()
        parents: Dict[str, Optional[str]] = {}
        frontier: List[str] = []
        for entry in sorted(set(entries)):
            if entry not in parents:
                parents[entry] = None
                frontier.append(entry)
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for dst in edges.get(node, ()):
                    if dst not in parents:
                        parents[dst] = node
                        nxt.append(dst)
            frontier = nxt
        return parents

    def path_to(
        self, parents: Dict[str, Optional[str]], node: str
    ) -> List[str]:
        """Entry-to-node chain recovered from a :meth:`reachable_from` map."""
        chain: List[str] = []
        current: Optional[str] = node
        while current is not None:
            chain.append(current)
            current = parents.get(current)
        return list(reversed(chain))

    # ------------------------------------------------------- literal pools

    def emitted_kinds(self) -> Set[str]:
        kinds: Set[str] = set()
        for facts in self.modules.values():
            for record in facts.emits:
                kinds.add(record["kind"])
        return kinds

    def entry_nodes(self) -> List[str]:
        """Flow entry points: registry target literals that resolve, plus
        every top-level function of ``*.experiments.*`` modules."""
        entries: Set[str] = set()
        for facts in self.modules.values():
            for target in facts.target_literals:
                node = self.resolve_target(target)
                if node is not None:
                    entries.add(node)
        for module_name, facts in self.modules.items():
            if ".experiments" not in f".{module_name}":
                continue
            for qual in facts.defs:
                if "." not in qual:
                    entries.add(f"{module_name}:{qual}")
        return sorted(entries)

    def is_suppressed(self, facts: ModuleFacts, line: int, code: str) -> bool:
        codes = facts.pragmas.get(line)
        if not codes:
            return False
        return "*" in codes or code.upper() in codes
