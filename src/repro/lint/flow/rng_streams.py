"""PW101: RNG stream-name collisions across the project.

``RandomStreams.stream(name)`` and ``.fork(name)`` derive child seeds from
``sha256(parent_seed, name)`` — so two *different* components asking the
same lineage for the same literal name receive byte-identical generators
and their draws correlate perfectly. That silently couples supposedly
independent noise processes (exactly the failure mode the named-stream
design exists to prevent).

A collision requires two call sites with the same literal name and the
same derivation kind, owned by *different* top-level components (distinct
``module:owner`` pairs). Sites whose receiver is itself fork-derived
(``self.streams.stream("noise")`` where ``self.streams`` came from
``root.fork(f"home{i}")``) are exempt: their lineages already diverge at
the fork label, so equal leaf names cannot collide.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lint.config import LintConfig
from repro.lint.findings import Finding
from repro.lint.flow.index import ProjectIndex
from repro.lint.flow.rules import FlowRule, register_flow


@register_flow
class RngStreamCollision(FlowRule):
    """Flag equal literal stream names claimed by distinct components."""

    code = "PW101"
    name = "rng-stream-collision"
    description = (
        "Two distinct components derive an RNG stream from the same "
        "lineage with the same literal name, so their draws correlate."
    )

    def check(self, index: ProjectIndex, config: LintConfig) -> List[Finding]:
        # (kind, name) -> list of (module, owner, facts, site).
        groups: Dict[Tuple[str, str], List[Tuple[str, str, object, dict]]] = {}
        for module_name in sorted(index.modules):
            facts = index.modules[module_name]
            for site in facts.streams:
                if site.get("forked"):
                    continue
                key = (site["kind"], site["name"])
                owner = f"{module_name}:{site['owner']}"
                groups.setdefault(key, []).append(
                    (module_name, owner, facts, site)
                )

        findings: List[Finding] = []
        for (kind, name), sites in sorted(groups.items()):
            owners = sorted({owner for _, owner, _, _ in sites})
            if len(owners) < 2:
                continue
            for module_name, owner, facts, site in sites:
                others = [o for o in owners if o != owner]
                findings.append(
                    self.finding(
                        config,
                        facts,  # type: ignore[arg-type]
                        site,
                        f".{kind}({name!r}) collides with the same name "
                        f"derived by {', '.join(others)}: equal names on "
                        "one lineage yield correlated draws — fork a "
                        "per-component child first or rename the stream",
                    )
                )
        return findings
