"""``repro.lint``: project-specific static analysis for the simulator.

The reproduction rests on two silent contracts:

* **Determinism** — every result (occupancy, fairness, harvested energy) is
  bit-reproducible from a seed. Nothing inside the simulator may read the
  wall clock, draw from the process-global RNG, or iterate a ``set`` where
  the order can leak into event scheduling.
* **Unit discipline** — every quantity crossing an API boundary is in the
  canonical unit (watts / metres / seconds, see :mod:`repro.units`); log
  and imperial quantities exist only at the edges, converted explicitly.

Conventions rot; this package turns them into an AST-based lint with stable
``PW###`` codes, ``# lint: ignore[PW###]`` pragmas, a ``[tool.repro-lint]``
config table in ``pyproject.toml``, and a committed baseline for
grandfathered findings. Run it as ``python -m repro lint [paths]``.

Not to be confused with :mod:`repro.analysis`, which is the *statistics*
module (CDFs, percentiles, report tables) used by the experiment drivers;
``repro.lint`` analyses the *source tree* and never runs at simulation time.
The two are independent and can be imported side by side.
"""

from __future__ import annotations

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import lint_paths, lint_source
from repro.lint.findings import Finding, Severity
from repro.lint.rules import all_rules, get_rule

__all__ = [
    "Finding",
    "LintConfig",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_config",
]
