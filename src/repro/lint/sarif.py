"""SARIF 2.1.0 rendering for ``repro lint --format sarif``.

SARIF is the interchange format GitHub code scanning ingests for inline
PR annotations. One run document carries the full rule catalog (per-file
PW0xx and flow PW1xx) plus one result per finding. Baselined findings are
emitted with an ``accepted`` suppression rather than dropped, so the
annotation layer shows them greyed-out instead of pretending they do not
exist. Output is sorted and indented — two identical lint runs produce
byte-identical SARIF, which the determinism gate relies on.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.findings import Finding

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

#: The synthetic syntax-error code has no registered rule class.
_SYNTHETIC_RULES = {
    "PW000": ("syntax-error", "The file could not be parsed."),
}


def _rule_catalog() -> List[Dict[str, Any]]:
    from repro.lint.flow.rules import all_flow_rules
    from repro.lint.rules import all_rules

    catalog: List[Dict[str, Any]] = []
    for code, (name, description) in sorted(_SYNTHETIC_RULES.items()):
        catalog.append(
            {
                "id": code,
                "name": name,
                "shortDescription": {"text": description},
            }
        )
    for rule_cls in list(all_rules()) + list(all_flow_rules()):
        catalog.append(
            {
                "id": rule_cls.code,
                "name": rule_cls.name,
                "shortDescription": {"text": rule_cls.description},
                "defaultConfiguration": {
                    "level": rule_cls.default_severity.value
                },
            }
        )
    catalog.sort(key=lambda rule: rule["id"])
    return catalog


def _result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.code,
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
    }
    if finding.baselined:
        result["suppressions"] = [
            {
                "kind": "external",
                "status": "accepted",
                "justification": "grandfathered in lint_baseline.json",
            }
        ]
    return result


def render_sarif(findings: Sequence[Finding]) -> str:
    """The ``--format sarif`` report (one SARIF 2.1.0 document)."""
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/lint.md",
                        "rules": _rule_catalog(),
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": [_result(finding) for finding in findings],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
