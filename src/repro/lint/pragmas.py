"""``# lint: ignore[PW###]`` pragma parsing.

A pragma suppresses findings *on its own physical line*:

* ``# lint: ignore[PW001]`` — suppress PW001 here;
* ``# lint: ignore[PW001,PW005]`` — suppress several codes;
* ``# lint: ignore`` — suppress every rule on this line (use sparingly).

Anything after the closing bracket is free-form justification and is
encouraged — a pragma without a *why* is a smell the next reader inherits.
Pragmas are read with :mod:`tokenize` so strings containing the pragma text
are never mistaken for one.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

#: Matches the pragma comment; group 1 is the optional bracketed code list.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")

#: Sentinel set meaning "every code is suppressed on this line".
ALL_CODES: FrozenSet[str] = frozenset({"*"})


def collect_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed codes (``ALL_CODES`` for a bare ignore).

    Tolerates syntactically broken files (returns what was tokenizable).
    """
    pragmas: Dict[int, FrozenSet[str]] = {}
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if not match:
                continue
            raw = match.group(1)
            if raw is None:
                codes = ALL_CODES
            else:
                codes = frozenset(
                    code.strip().upper() for code in raw.split(",") if code.strip()
                )
            if codes:
                line = token.start[0]
                pragmas[line] = pragmas.get(line, frozenset()) | codes
    except tokenize.TokenError:
        pass
    return pragmas


def is_suppressed(
    pragmas: Dict[int, FrozenSet[str]], line: int, code: str
) -> bool:
    """Whether ``code`` is pragma-suppressed on ``line``."""
    codes = pragmas.get(line)
    if not codes:
        return False
    return codes is ALL_CODES or "*" in codes or code.upper() in codes
