"""``# lint: ignore[PW###]`` pragma parsing.

A pragma suppresses findings on the *logical statement* it is attached to:

* ``# lint: ignore[PW001]`` — suppress PW001 here;
* ``# lint: ignore[PW001,PW005]`` — suppress several codes;
* ``# lint: ignore`` — suppress every rule on this line (use sparingly);
* ``# why it is safe; lint: ignore[PW001]`` — pragma after other comment
  text, separated by a semicolon.

"Attached" means the comment shares a logical line with code — at the end
of a statement, or inside a parenthesized/backslash continuation. For a
multi-line call the pragma therefore covers every physical line of the
statement (findings anchor at argument lines, not only the first line). A
pragma on a line of its *own* attaches to nothing: it suppresses only that
line, so a comment-line pragma never silently blankets the statement below
it, and decorator lines do not leak suppression into the decorated ``def``
(each decorator is its own logical line).

Anything after the closing bracket is free-form justification and is
encouraged — a pragma without a *why* is a smell the next reader inherits.
Pragmas are read with :mod:`tokenize` so strings containing the pragma text
are never mistaken for one.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Set

#: Matches the pragma; group 1 is the optional bracketed code list. The
#: pragma either opens the comment (``# lint: ignore[...]``) or follows
#: other comment text after a semicolon (``# seeded fixture; lint:
#: ignore[...]``) — free-running prose that merely mentions "lint: ignore"
#: is not a pragma.
_PRAGMA_RE = re.compile(r"[#;]\s*lint:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")

#: Sentinel set meaning "every code is suppressed on this line".
ALL_CODES: FrozenSet[str] = frozenset({"*"})

#: Token types that never carry code (they neither open nor extend a
#: logical line for attachment purposes).
_NON_CODE_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


def _parse_pragma(comment: str) -> FrozenSet[str]:
    """Codes suppressed by a comment token (empty set: not a pragma)."""
    match = _PRAGMA_RE.search(comment)
    if not match:
        return frozenset()
    raw = match.group(1)
    if raw is None:
        return ALL_CODES
    return frozenset(
        code.strip().upper() for code in raw.split(",") if code.strip()
    )


def collect_pragmas(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed codes (``ALL_CODES`` for a bare ignore).

    Pragmas attached to a multi-line statement are expanded to every
    physical line of that statement. Tolerates syntactically broken files
    (returns what was tokenizable).
    """
    pragmas: Dict[int, FrozenSet[str]] = {}
    #: Physical rows spanned by the current logical line's code tokens.
    chunk_rows: Set[int] = set()
    #: Codes from pragma comments attached to the current logical line.
    chunk_codes: FrozenSet[str] = frozenset()

    def mark(row: int, codes: FrozenSet[str]) -> None:
        pragmas[row] = pragmas.get(row, frozenset()) | codes

    def close_chunk(end_row: int) -> None:
        nonlocal chunk_rows, chunk_codes
        if chunk_codes and chunk_rows:
            for row in range(min(chunk_rows), max(chunk_rows | {end_row}) + 1):
                mark(row, chunk_codes)
        chunk_rows = set()
        chunk_codes = frozenset()

    last_row = 1
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            last_row = max(last_row, token.end[0])
            if token.type == tokenize.COMMENT:
                codes = _parse_pragma(token.string)
                if not codes:
                    continue
                mark(token.start[0], codes)
                if chunk_rows:
                    chunk_codes |= codes
            elif token.type == tokenize.NEWLINE:
                close_chunk(token.start[0])
            elif token.type not in _NON_CODE_TOKENS:
                chunk_rows.update(range(token.start[0], token.end[0] + 1))
    except tokenize.TokenError:
        pass
    close_chunk(last_row)
    return pragmas


def is_suppressed(
    pragmas: Dict[int, FrozenSet[str]], line: int, code: str
) -> bool:
    """Whether ``code`` is pragma-suppressed on ``line``."""
    codes = pragmas.get(line)
    if not codes:
        return False
    return codes is ALL_CODES or "*" in codes or code.upper() in codes
