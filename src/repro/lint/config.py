"""``[tool.repro-lint]`` configuration loaded from ``pyproject.toml``.

Uses :mod:`tomllib` where available (Python >= 3.11) and falls back to a
deliberately tiny TOML-subset reader elsewhere — the config table only ever
holds strings, string lists, and one ``code = "severity"`` sub-table, and
the repo may not install third-party TOML parsers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Severity

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on 3.9/3.10 only
    _toml = None

#: Packages under ``repro`` whose code runs *inside* the simulation and must
#: therefore be deterministic (PW001/PW003 scope).
DEFAULT_SIM_PACKAGES: Tuple[str, ...] = (
    "sim",
    "mac80211",
    "core",
    "netstack",
    "sensors",
    "harvester",
)

#: Unit suffixes recognised on identifier names (PW004/PW005).
DEFAULT_UNIT_SUFFIXES: Tuple[str, ...] = (
    "dbm",
    "db",
    "dbi",
    "mw",
    "uw",
    "w",
    "ft",
    "m",
    "us",
    "ms",
    "s",
    "mhz",
    "ghz",
    "hz",
    "mv",
    "v",
    "ma",
    "uj",
    "mj",
    "j",
    "mbps",
)

#: The only module allowed to construct ``random.Random`` directly (PW002).
DEFAULT_RNG_MODULE = "repro.sim.rng"


@dataclass
class LintConfig:
    """Effective lint configuration (defaults merged with pyproject)."""

    sim_packages: Tuple[str, ...] = DEFAULT_SIM_PACKAGES
    unit_suffixes: Tuple[str, ...] = DEFAULT_UNIT_SUFFIXES
    rng_module: str = DEFAULT_RNG_MODULE
    baseline: str = "lint_baseline.json"
    exclude: Tuple[str, ...] = ()
    disable: Tuple[str, ...] = ()
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)
    #: Per-tree rule subsets (``[tool.repro-lint.tree-rules]``): first path
    #: segment relative to the root ("tests", "tools", "benchmarks") -> the
    #: codes allowed there. Trees without an entry run every enabled rule.
    tree_rules: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Directory baseline/exclude paths resolve against (pyproject's home).
    root: Optional[Path] = None

    @property
    def baseline_path(self) -> Path:
        path = Path(self.baseline)
        if not path.is_absolute() and self.root is not None:
            path = self.root / path
        return path

    def rule_enabled(self, code: str) -> bool:
        return code.upper() not in {c.upper() for c in self.disable}

    def codes_for_display_path(self, display: str) -> Optional[Tuple[str, ...]]:
        """The per-tree rule subset for a root-relative path, or None.

        ``None`` means "no restriction" (every enabled rule runs); the
        synthetic PW000 syntax-error code is always allowed regardless.
        """
        tree = display.replace("\\", "/").split("/", 1)[0]
        codes = self.tree_rules.get(tree)
        if codes is None:
            return None
        return tuple(sorted({*(c.upper() for c in codes), "PW000"}))

    def severity_for(self, code: str, default: Severity) -> Severity:
        return self.severity_overrides.get(code.upper(), default)


def _parse_toml_subset(text: str) -> Dict[str, Any]:
    """Minimal TOML reader: sections, strings, string lists, booleans.

    Only used when :mod:`tomllib` is unavailable; covers exactly the shapes
    the ``[tool.repro-lint]`` table is documented to hold.
    """
    data: Dict[str, Any] = {}
    section: Dict[str, Any] = data
    pending_key: Optional[str] = None
    pending_items: List[str] = []

    def close_list() -> None:
        nonlocal pending_key
        if pending_key is not None:
            section[pending_key] = list(pending_items)
            pending_key = None
            pending_items.clear()

    for raw in text.splitlines():
        line = raw.strip()
        if pending_key is not None:
            pending_items.extend(re.findall(r'"([^"]*)"', line))
            if line.endswith("]"):
                close_list()
            continue
        if not line or line.startswith("#"):
            continue
        header = re.match(r"^\[([^\]]+)\]$", line)
        if header:
            section = data
            for part in header.group(1).split("."):
                section = section.setdefault(part.strip().strip('"'), {})
            continue
        assignment = re.match(r"^([A-Za-z0-9_.\-\"]+)\s*=\s*(.*)$", line)
        if not assignment:
            continue
        key = assignment.group(1).strip().strip('"')
        value = assignment.group(2).strip()
        if value.startswith("[") and not value.rstrip(",").endswith("]"):
            pending_key = key
            pending_items = re.findall(r'"([^"]*)"', value)
            continue
        if value.startswith("["):
            section[key] = re.findall(r'"([^"]*)"', value)
        elif value in ("true", "false"):
            section[key] = value == "true"
        else:
            match = re.match(r'^"([^"]*)"', value)
            if match:
                section[key] = match.group(1)
    close_list()
    return data


def _read_pyproject(path: Path) -> Dict[str, Any]:
    text = path.read_text(encoding="utf-8")
    if _toml is not None:
        return _toml.loads(text)
    return _parse_toml_subset(text)


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(
    pyproject: Optional[Path] = None, start: Optional[Path] = None
) -> LintConfig:
    """Build the effective config.

    Parameters
    ----------
    pyproject:
        Explicit path to a ``pyproject.toml``; wins over discovery.
    start:
        Where discovery begins (default: the current directory).
    """
    if pyproject is None:
        pyproject = find_pyproject(start or Path.cwd())
    config = LintConfig()
    if pyproject is None or not pyproject.is_file():
        return config
    data = _read_pyproject(pyproject)
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        return replace(config, root=pyproject.parent)

    def str_tuple(key: str, default: Sequence[str]) -> Tuple[str, ...]:
        value = table.get(key, default)
        return tuple(str(item) for item in value)

    overrides: Dict[str, Severity] = {}
    for code, name in dict(table.get("severity", {})).items():
        overrides[str(code).upper()] = Severity.parse(str(name))
    tree_rules: Dict[str, Tuple[str, ...]] = {}
    for tree, codes in dict(table.get("tree-rules", {})).items():
        tree_rules[str(tree)] = tuple(str(code).upper() for code in codes)
    return LintConfig(
        sim_packages=str_tuple("sim-packages", DEFAULT_SIM_PACKAGES),
        unit_suffixes=str_tuple("unit-suffixes", DEFAULT_UNIT_SUFFIXES),
        rng_module=str(table.get("rng-module", DEFAULT_RNG_MODULE)),
        baseline=str(table.get("baseline", "lint_baseline.json")),
        exclude=str_tuple("exclude", ()),
        disable=str_tuple("disable", ()),
        severity_overrides=overrides,
        tree_rules=tree_rules,
        root=pyproject.parent,
    )
