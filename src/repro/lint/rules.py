"""Rule base class, registry, and the single-pass AST dispatcher.

Each rule subscribes to the AST node types it cares about; the linter walks
a file's tree exactly once and dispatches every node to the subscribed
rules. Rules are registered under stable ``PW###`` codes via
:func:`register` — codes are part of the project's public surface (pragmas
and the baseline reference them), so they are never renumbered.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Type

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity


@dataclass
class FileContext:
    """Everything a rule may consult about the file being linted."""

    path: str
    module: str
    source: str
    tree: ast.AST
    config: LintConfig
    lines: List[str] = field(default_factory=list)
    #: Local name -> dotted origin ("rng" -> "random.Random") for every
    #: import in the file; built once by :func:`build_import_map`.
    imports: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    @property
    def package(self) -> str:
        """First package segment under ``repro`` ("repro.sim.rng" -> "sim")."""
        parts = self.module.split(".")
        if len(parts) >= 2 and parts[0] == "repro":
            return parts[1]
        return parts[0] if parts else ""

    @property
    def in_sim_package(self) -> bool:
        return self.package in self.config.sim_packages

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, following imports.

        ``rng.expovariate`` where ``import random as rng`` resolves to
        ``random.expovariate``; unresolvable heads return the literal
        dotted chain (or None for non-name expressions).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        head = self.imports.get(current.id, current.id)
        parts.append(head)
        return ".".join(reversed(parts))


class Rule:
    """One lint rule. Subclasses set the class attributes and ``visit``."""

    code: str = ""
    name: str = ""
    description: str = ""
    default_severity: Severity = Severity.ERROR
    #: AST node classes this rule wants dispatched to :meth:`visit`.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies(self, ctx: FileContext) -> bool:
        """Whether the rule runs on this file at all (scope gate)."""
        return True

    def begin_file(self, ctx: FileContext) -> None:
        """Per-file setup hook (reset any accumulated state)."""

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        return iter(())

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            code=self.code,
            message=message,
            path=ctx.path,
            line=lineno,
            column=getattr(node, "col_offset", 0),
            severity=ctx.config.severity_for(self.code, self.default_severity),
            line_text=ctx.line_text(lineno),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    code = rule_cls.code.upper()
    if not code.startswith("PW") or not code[2:].isdigit():
        raise ValueError(f"rule code must look like 'PW123', got {rule_cls.code!r}")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_cls:
        raise ValueError(f"duplicate rule code {code}: {existing} vs {rule_cls}")
    _REGISTRY[code] = rule_cls
    return rule_cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, ordered by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Type[Rule]:
    _ensure_loaded()
    try:
        return _REGISTRY[code.upper()]
    except KeyError:
        raise KeyError(f"no rule registered under {code!r}") from None


def _ensure_loaded() -> None:
    # The checks module self-registers on import; importing it lazily here
    # avoids a rules <-> checks import cycle.
    import repro.lint.checks  # noqa: F401


def build_import_map(tree: ast.AST) -> Dict[str, str]:
    """Local alias -> dotted origin for every import statement in ``tree``."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports stay project-local
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def run_rules(ctx: FileContext, codes: Optional[FrozenSet[str]] = None) -> List[Finding]:
    """Single-pass dispatch of every (enabled, applicable) rule over a file."""
    rules: List[Rule] = []
    for rule_cls in all_rules():
        if codes is not None and rule_cls.code not in codes:
            continue
        if not ctx.config.rule_enabled(rule_cls.code):
            continue
        rule = rule_cls()
        if rule.applies(ctx):
            rule.begin_file(ctx)
            rules.append(rule)
    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        for rule in dispatch.get(type(node), ()):
            findings.extend(rule.visit(ctx, node))
    findings.sort(key=lambda f: (f.line, f.column, f.code))
    return findings


def module_name_for(path: Path, src_roots: Tuple[str, ...] = ("src",)) -> str:
    """Best-effort dotted module name for ``path`` (used for scope gating)."""
    parts = list(path.with_suffix("").parts)
    for root in src_roots:
        if root in parts:
            parts = parts[parts.index(root) + 1 :]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)
