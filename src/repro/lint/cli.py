"""``python -m repro lint`` — the static-analysis subcommand.

Exit codes: 0 clean (or everything baselined), 1 active error findings,
2 usage errors.

Two analysis depths share this entry point: the per-file pass (default)
and the whole-program flow pass (``--flow``), which additionally runs the
interprocedural PW1xx rules over the project index and keeps an
incremental cache so warm runs skip parsing unchanged modules. Reports
render as human text, one JSON document, or SARIF 2.1.0 for GitHub PR
annotations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint import baseline as baseline_mod
from repro.lint.config import load_config
from repro.lint.engine import active_errors, lint_paths
from repro.lint.findings import render_json, render_text
from repro.lint.sarif import render_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static analysis enforcing the simulator's determinism, "
            "seeded-RNG and unit-discipline invariants (see docs/lint.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif feeds GitHub code-scanning annotations)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "run the whole-program flow analysis (PW1xx rules) in "
            "addition to the per-file rules, with an incremental cache"
        ),
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "with --flow: report only findings in files whose content "
            "changed since the cached run (fast pre-commit mode; not a "
            "CI gate — cross-module findings landing in unchanged files "
            "are withheld from the report)"
        ),
    )
    parser.add_argument(
        "--no-flow-cache",
        action="store_true",
        help="with --flow: ignore and do not write the incremental cache",
    )
    parser.add_argument(
        "--flow-cache",
        default=None,
        metavar="PATH",
        help=(
            "with --flow: cache file location "
            "(default: .repro_cache/flow_index.json under the config root)"
        ),
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file (default: [tool.repro-lint] baseline setting)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report and gate on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "drop baseline entries matching no current finding, then "
            "report as usual (run over the full baselined tree, or "
            "still-valid entries for unlinted paths would be dropped)"
        ),
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml (default: discovered from cwd)",
    )
    return parser


def _covered_paths(paths: List[str], config) -> set:
    """Root-relative display paths of every file this invocation lints."""
    from repro.lint.engine import display_path, iter_python_files

    return {
        display_path(path, config)
        for path in iter_python_files([Path(p) for p in paths], config)
    }


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.changed and not args.flow:
        print("--changed requires --flow", file=sys.stderr)
        return 2
    if args.changed and args.prune_baseline:
        print(
            "--prune-baseline needs a full run: --changed withholds "
            "findings in unchanged files, which would read as stale",
            file=sys.stderr,
        )
        return 2
    config = load_config(
        pyproject=Path(args.config) if args.config else None
    )
    if args.baseline:
        from dataclasses import replace

        config = replace(config, baseline=args.baseline)

    use_baseline = not args.no_baseline
    if args.flow:
        from repro.lint.flow import flow_lint_paths

        findings, stats = flow_lint_paths(
            args.paths,
            config=config,
            use_baseline=use_baseline,
            use_cache=not args.no_flow_cache,
            cache_path=Path(args.flow_cache) if args.flow_cache else None,
            changed_only=args.changed,
        )
        print(stats.summary(), file=sys.stderr)
    else:
        findings = lint_paths(
            args.paths, config=config, use_baseline=use_baseline
        )

    if args.write_baseline:
        count = baseline_mod.write_baseline(findings, config.baseline_path)
        print(f"wrote {count} entries to {config.baseline_path}")
        print("fill in each entry's justification before committing")
        return 0

    # Staleness is judged only against files this run actually linted
    # (a subtree run says nothing about entries for paths it never saw),
    # and never under --changed (withheld findings are not fixes).
    covered = set() if args.changed else _covered_paths(args.paths, config)
    if args.prune_baseline:
        removed = baseline_mod.prune_baseline(
            findings, config.baseline_path, covered
        )
        print(
            f"pruned {removed} stale entr{'y' if removed == 1 else 'ies'} "
            f"from {config.baseline_path}",
            file=sys.stderr,
        )
    elif use_baseline:
        known = baseline_mod.load_baseline(config.baseline_path)
        for entry in baseline_mod.stale_entries(findings, known, covered):
            print(
                f"warning: stale baseline entry {entry.get('fingerprint')} "
                f"({entry.get('code')} at {entry.get('path')}) matches no "
                "current finding — fix committed? run --prune-baseline "
                "to drop it",
                file=sys.stderr,
            )

    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        print(render_text(findings))
    errors = active_errors(findings)
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
