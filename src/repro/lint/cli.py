"""``python -m repro lint`` — the static-analysis subcommand.

Exit codes: 0 clean (or everything baselined), 1 active error findings,
2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint import baseline as baseline_mod
from repro.lint.config import load_config
from repro.lint.engine import active_errors, lint_paths
from repro.lint.findings import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static analysis enforcing the simulator's determinism, "
            "seeded-RNG and unit-discipline invariants (see docs/lint.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline file (default: [tool.repro-lint] baseline setting)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report and gate on every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml (default: discovered from cwd)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = load_config(
        pyproject=Path(args.config) if args.config else None
    )
    if args.baseline:
        from dataclasses import replace

        config = replace(config, baseline=args.baseline)

    findings = lint_paths(
        args.paths, config=config, use_baseline=not args.no_baseline
    )
    if args.write_baseline:
        count = baseline_mod.write_baseline(findings, config.baseline_path)
        print(f"wrote {count} entries to {config.baseline_path}")
        print("fill in each entry's justification before committing")
        return 0

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    errors = active_errors(findings)
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
