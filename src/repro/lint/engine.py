"""The lint driver: files in, findings out.

:func:`lint_source` lints one in-memory module (the unit tests' fixture
entry point); :func:`lint_paths` walks directories, applies excludes,
pragmas and the baseline, and is what the CLI calls.
"""

from __future__ import annotations

import ast
import json
from fnmatch import fnmatch
from pathlib import Path
from typing import FrozenSet, Iterable, List, Optional

from repro.lint import baseline as baseline_mod
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity, assign_occurrences
from repro.lint.pragmas import collect_pragmas, is_suppressed
from repro.lint.rules import FileContext, build_import_map, module_name_for, run_rules


def lint_source(
    source: str,
    path: str = "<string>",
    module: str = "repro.sim.snippet",
    config: Optional[LintConfig] = None,
    codes: Optional[FrozenSet[str]] = None,
) -> List[Finding]:
    """Lint one module given as a string; pragma-suppressed findings are
    dropped, the baseline is *not* consulted (no filesystem involved).

    A syntax error yields a single synthetic ``PW000`` error finding rather
    than raising, so one broken file cannot abort a tree-wide run.
    """
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                code="PW000",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                column=(exc.offset or 1) - 1,
                severity=Severity.ERROR,
            )
        ]
    ctx = FileContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        config=config,
        imports=build_import_map(tree),
    )
    findings = run_rules(ctx, codes)
    pragmas = collect_pragmas(source)
    findings = [
        f for f in findings if not is_suppressed(pragmas, f.line, f.code)
    ]
    assign_occurrences(findings)
    return findings


def display_path(path: Path, config: LintConfig) -> str:
    """Root-relative POSIX display form of ``path`` (fingerprint input).

    Paths are reported relative to the config root (the ``pyproject.toml``
    directory) when possible, so fingerprints are machine-independent.
    """
    if config.root is not None:
        try:
            return path.relative_to(config.root).as_posix()
        except ValueError:
            pass
    return str(path)


def iter_python_files(paths: Iterable[Path], config: LintConfig) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            files.append(path)
    unique = sorted({p.resolve() for p in files})
    kept = []
    for path in unique:
        relative = str(path)
        if config.root is not None:
            try:
                relative = str(path.relative_to(config.root))
            except ValueError:
                pass
        if any(fnmatch(relative, pattern) for pattern in config.exclude):
            continue
        kept.append(path)
    return kept


def iter_slo_spec_files(paths: Iterable[Path], config: LintConfig) -> List[Path]:
    """Spec JSONs in ``paths``: explicit ``.json`` args, plus any
    ``slos/*.json`` or ``campaigns/*.json`` beneath directory args (the
    linted naming contracts — see ``repro.lint.checks.check_slo_spec_file``
    and ``check_campaign_spec_file``; :func:`_is_campaign_spec` routes each
    file to its rule)."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in path.rglob("*.json")
                if p.parent.name in ("slos", "campaigns")
            )
        elif path.suffix == ".json":
            files.append(path)
    unique = sorted({p.resolve() for p in files})
    kept = []
    for path in unique:
        relative = str(path)
        if config.root is not None:
            try:
                relative = str(path.relative_to(config.root))
            except ValueError:
                pass
        if any(fnmatch(relative, pattern) for pattern in config.exclude):
            continue
        kept.append(path)
    return kept


def _is_campaign_spec(path: Path, source: str) -> bool:
    """Route one spec JSON: PW007 (campaign) or PW006 (SLO).

    Directory name wins (``campaigns/`` vs ``slos/`` is the documented
    layout); an explicit file argument outside either is sniffed by its
    top-level ``"campaign"`` key so ``repro lint mysweep.json`` still picks
    the right rule.
    """
    if path.parent.name == "campaigns":
        return True
    if path.parent.name == "slos":
        return False
    try:
        data = json.loads(source)
    except ValueError:
        return False
    return isinstance(data, dict) and "campaign" in data


def lint_paths(
    paths: Iterable[str],
    config: Optional[LintConfig] = None,
    use_baseline: bool = True,
) -> List[Finding]:
    """Lint files/directories; returns all findings, baselined ones marked.

    Paths are reported relative to the config root (the ``pyproject.toml``
    directory) when possible, so fingerprints are machine-independent.
    Alongside the ``.py`` walk, SLO spec files (explicit ``.json`` args and
    ``slos/*.json`` under directories) get the PW006 objective-id check.
    """
    config = config or LintConfig()
    findings: List[Finding] = []
    for path in iter_python_files([Path(p) for p in paths], config):
        display = display_path(path, config)
        source = path.read_text(encoding="utf-8")
        tree_codes = config.codes_for_display_path(display)
        findings.extend(
            lint_source(
                source,
                path=display,
                module=module_name_for(path),
                config=config,
                codes=frozenset(tree_codes) if tree_codes is not None else None,
            )
        )
    from repro.lint.checks import check_campaign_spec_file, check_slo_spec_file

    for path in iter_slo_spec_files([Path(p) for p in paths], config):
        display = display_path(path, config)
        tree_codes = config.codes_for_display_path(display)
        source = path.read_text(encoding="utf-8")
        if _is_campaign_spec(path, source):
            code, check = "PW007", check_campaign_spec_file
        else:
            code, check = "PW006", check_slo_spec_file
        if tree_codes is not None and code not in tree_codes:
            continue
        if not config.rule_enabled(code):
            continue
        findings.extend(check(display, source))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    assign_occurrences(findings)
    if use_baseline:
        known = baseline_mod.load_baseline(config.baseline_path)
        baseline_mod.apply_baseline(findings, known)
    return findings


def active_errors(findings: Iterable[Finding]) -> List[Finding]:
    """Findings that should gate: non-baselined, error severity."""
    return [
        f
        for f in findings
        if not f.baselined and f.severity is Severity.ERROR
    ]
