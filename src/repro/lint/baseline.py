"""The committed baseline: grandfathered findings that do not gate CI.

The baseline is a JSON document listing fingerprints of known, justified
findings. New code never adds to it by hand-editing alone — regenerate with
``python -m repro lint --write-baseline`` and then *write a justification*
for every entry, or the review should bounce it. Fixing the finding and
shrinking the baseline is always preferred.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.lint.findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Dict[str, Dict[str, object]]:
    """fingerprint -> entry from the baseline file (empty if absent)."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("entries", []) if isinstance(data, dict) else []
    result: Dict[str, Dict[str, object]] = {}
    for entry in entries:
        fingerprint = str(entry.get("fingerprint", ""))
        if fingerprint:
            result[fingerprint] = dict(entry)
    return result


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, Dict[str, object]]
) -> List[Finding]:
    """Mark findings whose fingerprint the baseline grandfathers."""
    for finding in findings:
        entry = baseline.get(finding.fingerprint)
        if entry is not None and entry.get("code") == finding.code:
            finding.baselined = True
    return list(findings)


def stale_entries(
    findings: Sequence[Finding],
    baseline: Dict[str, Dict[str, object]],
    covered_paths: Optional[Set[str]] = None,
) -> List[Dict[str, object]]:
    """Baseline entries whose fingerprint matches no current finding.

    A stale entry means the grandfathered code was fixed or deleted — the
    entry is dead weight that would silently re-admit a regression with
    the same fingerprint. ``covered_paths`` (the files this run actually
    linted, root-relative) scopes the check: an entry for an unlinted file
    is unknown, not stale — subtree runs must not cry wolf about (or
    prune) entries they never re-evaluated.
    """
    matched = {finding.fingerprint for finding in findings}
    stale: List[Dict[str, object]] = []
    for fingerprint, entry in sorted(baseline.items()):
        if fingerprint in matched:
            continue
        if covered_paths is not None and str(entry.get("path")) not in covered_paths:
            continue
        stale.append(dict(entry))
    return stale


def prune_baseline(
    findings: Sequence[Finding],
    path: Path,
    covered_paths: Optional[Set[str]] = None,
) -> int:
    """Drop stale entries from the baseline file; returns how many.

    Surviving entries keep their justifications verbatim — pruning only
    ever removes, it never regenerates. Staleness is scoped by
    ``covered_paths`` exactly as in :func:`stale_entries`.
    """
    baseline = load_baseline(path)
    if not baseline:
        return 0
    stale = {
        str(entry.get("fingerprint"))
        for entry in stale_entries(findings, baseline, covered_paths)
    }
    if not stale:
        return 0
    kept = [
        entry
        for fingerprint, entry in baseline.items()
        if fingerprint not in stale
    ]
    kept.sort(key=lambda e: (str(e.get("path")), str(e.get("code")), e.get("line", 0)))
    document = {"version": BASELINE_VERSION, "entries": kept}
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return len(stale)


def write_baseline(findings: Sequence[Finding], path: Path) -> int:
    """Write every current finding as a baseline entry; returns the count.

    Each entry carries an empty ``justification`` field the committer must
    fill in — the review gate for new grandfathering.
    """
    entries = [
        {
            "fingerprint": finding.fingerprint,
            "code": finding.code,
            "path": finding.path,
            "line": finding.line,
            "line_text": finding.line_text,
            "justification": "",
        }
        for finding in findings
    ]
    entries.sort(key=lambda e: (e["path"], e["code"], e["line"]))
    document = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return len(entries)
