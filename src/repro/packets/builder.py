"""Builds the on-air bytes of PoWiFi power packets.

The injector (§3.2) sends 1500-byte UDP broadcast datagrams marked with the
``IP_Power`` option. This module assembles the full stack — UDP inside IPv4
inside LLC/SNAP inside an 802.11 broadcast data frame — and exposes the exact
MAC-layer frame length, which is what the airtime and occupancy math consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ConfigurationError
from repro.packets.dot11 import BROADCAST_MAC, Dot11Data, MacAddress
from repro.packets.ipv4 import IpPowerOption, IPv4Packet
from repro.packets.llc import LlcSnapHeader
from repro.packets.udp import UdpDatagram

#: UDP port the reference injector targets (arbitrary; broadcast, unacked).
POWER_UDP_PORT = 47_000

#: The paper's IP datagram size for power packets.
DEFAULT_IP_DATAGRAM_BYTES = 1500


@dataclass
class PowerPacketBuilder:
    """Assembles power packets for one wireless interface.

    Parameters
    ----------
    interface_id:
        Identifier placed into the IP_Power option (one per channel).
    router_mac:
        The transmitting interface's MAC address.
    router_ip:
        Source IP address for the datagrams.
    ip_datagram_bytes:
        Total IPv4 datagram size; 1500 bytes in the paper.
    """

    interface_id: int
    router_mac: MacAddress = field(
        default_factory=lambda: MacAddress.from_string("02:00:00:00:00:01")
    )
    router_ip: str = "192.168.1.1"
    ip_datagram_bytes: int = DEFAULT_IP_DATAGRAM_BYTES
    _sequence: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        probe = self._overhead_bytes()
        if self.ip_datagram_bytes < probe:
            raise ConfigurationError(
                f"ip_datagram_bytes={self.ip_datagram_bytes} smaller than "
                f"header overhead ({probe} bytes)"
            )

    def _overhead_bytes(self) -> int:
        option_len = 4  # IP_Power padded to 4 bytes
        return IPv4Packet.BASE_HEADER_LEN + option_len + UdpDatagram.HEADER_LEN

    def build_ip_datagram(self) -> IPv4Packet:
        """Build the next power datagram (filler payload, IP_Power marked)."""
        payload_len = self.ip_datagram_bytes - self._overhead_bytes()
        udp = UdpDatagram(
            src_port=POWER_UDP_PORT,
            dst_port=POWER_UDP_PORT,
            payload=bytes(payload_len),
        )
        packet = IPv4Packet(
            src=self.router_ip,
            dst="255.255.255.255",
            payload=udp.encode(self.router_ip, "255.255.255.255"),
            identification=self._sequence & 0xFFFF,
            power_option=IpPowerOption(interface_id=self.interface_id),
        )
        self._sequence += 1
        return packet

    def build_frame(self, ip_packet: Optional[IPv4Packet] = None) -> Dot11Data:
        """Wrap an IP datagram into a broadcast 802.11 data frame."""
        if ip_packet is None:
            ip_packet = self.build_ip_datagram()
        body = LlcSnapHeader().encode() + ip_packet.encode()
        return Dot11Data.broadcast(
            transmitter=self.router_mac,
            bssid=self.router_mac,
            payload=body,
            sequence=(self._sequence - 1) & 0xFFF,
        )

    @property
    def mac_frame_bytes(self) -> int:
        """On-air MAC frame size (header + LLC + IP datagram + FCS)."""
        return (
            24  # 802.11 header
            + LlcSnapHeader.LENGTH
            + self.ip_datagram_bytes
            + 4  # FCS
        )


def build_power_frame(
    interface_id: int = 0,
    router_mac: str = "02:00:00:00:00:01",
    ip_datagram_bytes: int = DEFAULT_IP_DATAGRAM_BYTES,
) -> bytes:
    """One-call helper: the full on-air bytes of a single power frame.

    >>> frame = build_power_frame()
    >>> len(frame)
    1536
    """
    builder = PowerPacketBuilder(
        interface_id=interface_id,
        router_mac=MacAddress.from_string(router_mac),
        ip_datagram_bytes=ip_datagram_bytes,
    )
    return builder.build_frame().encode(with_fcs=True)
