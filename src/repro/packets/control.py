"""802.11 control frames: ACK, RTS and CTS.

The DCF's unicast exchanges end with a 14-byte ACK (and may be preceded by
RTS/CTS); these codecs let captures carry the complete frame vocabulary a
real monitor interface records. PoWiFi's power packets are broadcast and
unacknowledged, so in a power-only capture control frames are conspicuously
absent — itself a recognisable signature of the scheme.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import ChecksumError, CodecError
from repro.packets.bytesutil import require_length
from repro.packets.dot11 import Dot11FrameControl, FrameType, MacAddress

#: Control subtypes.
SUBTYPE_RTS = 11
SUBTYPE_CTS = 12
SUBTYPE_ACK = 13


def _fcs(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class AckFrame:
    """The 14-byte acknowledgement: FC, duration, RA, FCS."""

    receiver: MacAddress
    duration_us: int = 0

    LENGTH = 14

    def encode(self) -> bytes:
        """Serialise (always with FCS; a truncated ACK is meaningless)."""
        fc = Dot11FrameControl(FrameType.CONTROL, SUBTYPE_ACK)
        body = struct.pack(
            "<HH6s", fc.encode(), self.duration_us, self.receiver.octets
        )
        return body + struct.pack("<I", _fcs(body))

    @classmethod
    def decode(cls, data: bytes) -> "AckFrame":
        """Parse and verify an ACK."""
        require_length(data, cls.LENGTH, "ACK frame")
        body, trailer = data[:10], data[10:14]
        (expected,) = struct.unpack("<I", trailer)
        if _fcs(body) != expected:
            raise ChecksumError("ACK FCS mismatch")
        fc_value, duration, ra = struct.unpack("<HH6s", body)
        fc = Dot11FrameControl.decode(fc_value)
        if fc.frame_type != FrameType.CONTROL or fc.subtype != SUBTYPE_ACK:
            raise CodecError("not an ACK frame")
        return cls(receiver=MacAddress(ra), duration_us=duration)


@dataclass(frozen=True)
class RtsFrame:
    """Request-to-send: FC, duration, RA, TA, FCS (20 bytes)."""

    receiver: MacAddress
    transmitter: MacAddress
    duration_us: int = 0

    LENGTH = 20

    def encode(self) -> bytes:
        """Serialise with FCS."""
        fc = Dot11FrameControl(FrameType.CONTROL, SUBTYPE_RTS)
        body = struct.pack(
            "<HH6s6s",
            fc.encode(),
            self.duration_us,
            self.receiver.octets,
            self.transmitter.octets,
        )
        return body + struct.pack("<I", _fcs(body))

    @classmethod
    def decode(cls, data: bytes) -> "RtsFrame":
        """Parse and verify an RTS."""
        require_length(data, cls.LENGTH, "RTS frame")
        body, trailer = data[:16], data[16:20]
        (expected,) = struct.unpack("<I", trailer)
        if _fcs(body) != expected:
            raise ChecksumError("RTS FCS mismatch")
        fc_value, duration, ra, ta = struct.unpack("<HH6s6s", body)
        fc = Dot11FrameControl.decode(fc_value)
        if fc.frame_type != FrameType.CONTROL or fc.subtype != SUBTYPE_RTS:
            raise CodecError("not an RTS frame")
        return cls(
            receiver=MacAddress(ra),
            transmitter=MacAddress(ta),
            duration_us=duration,
        )


@dataclass(frozen=True)
class CtsFrame:
    """Clear-to-send: FC, duration, RA, FCS (14 bytes)."""

    receiver: MacAddress
    duration_us: int = 0

    LENGTH = 14

    def encode(self) -> bytes:
        """Serialise with FCS."""
        fc = Dot11FrameControl(FrameType.CONTROL, SUBTYPE_CTS)
        body = struct.pack(
            "<HH6s", fc.encode(), self.duration_us, self.receiver.octets
        )
        return body + struct.pack("<I", _fcs(body))

    @classmethod
    def decode(cls, data: bytes) -> "CtsFrame":
        """Parse and verify a CTS."""
        require_length(data, cls.LENGTH, "CTS frame")
        body, trailer = data[:10], data[10:14]
        (expected,) = struct.unpack("<I", trailer)
        if _fcs(body) != expected:
            raise ChecksumError("CTS FCS mismatch")
        fc_value, duration, ra = struct.unpack("<HH6s", body)
        fc = Dot11FrameControl.decode(fc_value)
        if fc.frame_type != FrameType.CONTROL or fc.subtype != SUBTYPE_CTS:
            raise CodecError("not a CTS frame")
        return cls(receiver=MacAddress(ra), duration_us=duration)
