"""Radiotap capture header codec.

The paper computes channel occupancy from the radiotap headers tcpdump
records on a monitor interface: each captured frame's **rate** and **size**
give its airtime (§4, "Measuring the router's channel occupancy"). We
implement the radiotap fields that pipeline needs — TSFT, Flags, Rate and
Channel — with the alignment rules of the radiotap specification.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import CodecError
from repro.packets.bytesutil import require_length

#: Present-word bits (radiotap field indices).
RT_TSFT = 0
RT_FLAGS = 1
RT_RATE = 2
RT_CHANNEL = 3

#: Channel-flags bit: 2.4 GHz spectrum.
CHAN_2GHZ = 0x0080
#: Channel-flags bit: dynamic CCK-OFDM (802.11g).
CHAN_DYN = 0x0400

#: Flags bit: frame includes FCS at end.
FLAG_FCS_AT_END = 0x10


def _align(offset: int, alignment: int) -> int:
    """Round ``offset`` up to a multiple of ``alignment``."""
    remainder = offset % alignment
    return offset if remainder == 0 else offset + (alignment - remainder)


@dataclass(frozen=True)
class RadiotapHeader:
    """A radiotap header carrying TSFT, flags, rate and channel.

    Attributes
    ----------
    tsft_us:
        MAC timestamp (microseconds since interface start) of the first bit.
    rate_mbps:
        PHY bit rate the frame was sent at, in Mb/s (0.5 Mb/s resolution).
    channel_mhz:
        Channel centre frequency in MHz (e.g. 2412 for channel 1).
    flags:
        Radiotap per-frame flags; :data:`FLAG_FCS_AT_END` is set when the
        captured frame bytes include the FCS trailer.
    """

    tsft_us: int = 0
    rate_mbps: float = 1.0
    channel_mhz: int = 2412
    flags: int = FLAG_FCS_AT_END

    def encode(self) -> bytes:
        """Serialise header; field order and alignment follow the spec."""
        rate_units = int(round(self.rate_mbps * 2))
        if not (0 < rate_units <= 0xFF):
            raise CodecError(f"rate {self.rate_mbps} Mb/s not encodable")
        present = (1 << RT_TSFT) | (1 << RT_FLAGS) | (1 << RT_RATE) | (1 << RT_CHANNEL)
        fields = bytearray()
        offset = 8  # version+pad+len+present
        # TSFT: u64, align 8.
        aligned = _align(offset, 8)
        fields += b"\x00" * (aligned - offset)
        fields += struct.pack("<Q", self.tsft_us & 0xFFFFFFFFFFFFFFFF)
        offset = aligned + 8
        # Flags: u8, align 1.
        fields += struct.pack("<B", self.flags & 0xFF)
        offset += 1
        # Rate: u8, align 1.
        fields += struct.pack("<B", rate_units)
        offset += 1
        # Channel: u16 freq + u16 flags, align 2.
        aligned = _align(offset, 2)
        fields += b"\x00" * (aligned - offset)
        chan_flags = CHAN_2GHZ | CHAN_DYN
        fields += struct.pack("<HH", self.channel_mhz, chan_flags)
        offset = aligned + 4
        header = struct.pack("<BBHI", 0, 0, offset, present) + bytes(fields)
        if len(header) != offset:
            raise CodecError("internal radiotap length accounting error")
        return header

    @classmethod
    def decode(cls, data: bytes) -> Tuple["RadiotapHeader", bytes]:
        """Parse a radiotap header; return it plus the encapsulated frame.

        Unknown present bits beyond the four we emit are rejected rather than
        skipped: this library only ever parses its own captures, and silent
        misalignment would corrupt the occupancy statistics downstream.
        """
        require_length(data, 8, "radiotap header")
        version, _pad, length, present = struct.unpack("<BBHI", data[:8])
        if version != 0:
            raise CodecError(f"unsupported radiotap version {version}")
        if present & (1 << 31):
            raise CodecError("chained radiotap present words not supported")
        known = (1 << RT_TSFT) | (1 << RT_FLAGS) | (1 << RT_RATE) | (1 << RT_CHANNEL)
        if present & ~known:
            raise CodecError(f"unsupported radiotap fields: present={present:#010x}")
        require_length(data, length, "radiotap header body")
        offset = 8
        tsft_us = 0
        flags = 0
        rate_mbps = 0.0
        channel_mhz = 0
        if present & (1 << RT_TSFT):
            offset = _align(offset, 8)
            (tsft_us,) = struct.unpack_from("<Q", data, offset)
            offset += 8
        if present & (1 << RT_FLAGS):
            flags = data[offset]
            offset += 1
        if present & (1 << RT_RATE):
            rate_mbps = data[offset] / 2.0
            offset += 1
        if present & (1 << RT_CHANNEL):
            offset = _align(offset, 2)
            channel_mhz, _chan_flags = struct.unpack_from("<HH", data, offset)
            offset += 4
        if offset > length:
            raise CodecError("radiotap fields overrun declared header length")
        header = cls(
            tsft_us=tsft_us,
            rate_mbps=rate_mbps,
            channel_mhz=channel_mhz,
            flags=flags,
        )
        return header, data[length:]

    @property
    def has_fcs(self) -> bool:
        """True when the encapsulated frame bytes end with an FCS."""
        return bool(self.flags & FLAG_FCS_AT_END)
