"""Byte-buffer helpers shared by the packet codecs."""

from __future__ import annotations

from repro.errors import TruncatedFrameError


def internet_checksum(data: bytes) -> int:
    """RFC 1071 internet checksum (one's-complement sum of 16-bit words).

    Used by the IPv4 and UDP codecs. Odd-length input is padded with a zero
    byte as the RFC specifies.

    >>> hex(internet_checksum(bytes.fromhex('45000073000040004011b861c0a80001c0a800c7')))
    '0x0'
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    # Fold any remaining carry.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def require_length(data: bytes, needed: int, what: str) -> None:
    """Raise :class:`TruncatedFrameError` unless ``data`` holds ``needed`` bytes."""
    if len(data) < needed:
        raise TruncatedFrameError(
            f"{what}: need {needed} bytes, have {len(data)}"
        )


def hexdump(data: bytes, width: int = 16) -> str:
    """Render bytes as a classic offset/hex/ASCII dump for debugging.

    >>> print(hexdump(b'PoWiFi'))
    00000000  50 6f 57 69 46 69                               |PoWiFi|
    """
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset : offset + width]
        hexpart = " ".join(f"{b:02x}" for b in chunk)
        asciipart = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{offset:08x}  {hexpart:<{width * 3 - 1}} |{asciipart}|")
    return "\n".join(lines)
