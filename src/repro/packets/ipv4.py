"""IPv4 codec with the PoWiFi ``IP_Power`` option.

The paper's kernel mechanism (§3.2) marks outgoing power datagrams with a
custom IP option so that ``ip_local_out_sk()`` can recognise them and apply
the per-channel queue-depth check. We reproduce the wire format: an
experimental, copied IP option carrying the identifier of the wireless
interface the datagram is bound to.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ChecksumError, CodecError
from repro.packets.bytesutil import internet_checksum, require_length

#: Option type byte for IP_Power: copied flag set (bit 7), option class 2
#: (debugging/measurement), option number 30 (experimental range).
IP_OPTION_POWER = 0xDE

#: Protocol number for UDP.
PROTO_UDP = 17


@dataclass(frozen=True)
class IpPowerOption:
    """The IP_Power option: marks a datagram as PoWiFi power traffic.

    Attributes
    ----------
    interface_id:
        Integer identifying the wireless interface (and therefore the Wi-Fi
        channel) this power datagram targets; set by the user-space injector
        on socket creation (§3.2, Power_Socket).
    """

    interface_id: int

    LENGTH = 4

    def encode(self) -> bytes:
        """Serialise as type, length, 16-bit interface id."""
        if not (0 <= self.interface_id <= 0xFFFF):
            raise CodecError(f"interface id out of range: {self.interface_id}")
        return struct.pack(">BBH", IP_OPTION_POWER, self.LENGTH, self.interface_id)

    @classmethod
    def decode(cls, data: bytes) -> "IpPowerOption":
        """Parse a single IP_Power option."""
        require_length(data, cls.LENGTH, "IP_Power option")
        opt_type, length, interface_id = struct.unpack(">BBH", data[: cls.LENGTH])
        if opt_type != IP_OPTION_POWER:
            raise CodecError(f"not an IP_Power option: type={opt_type:#x}")
        if length != cls.LENGTH:
            raise CodecError(f"bad IP_Power option length: {length}")
        return cls(interface_id=interface_id)


def _pad_options(options: bytes) -> bytes:
    """Pad the options area with EOL (0) bytes to a 32-bit boundary."""
    remainder = len(options) % 4
    if remainder:
        options += b"\x00" * (4 - remainder)
    return options


@dataclass(frozen=True)
class IPv4Packet:
    """An IPv4 datagram with optional IP_Power option.

    Only the fields the reproduction exercises are configurable; the rest
    are encoded with standard defaults.
    """

    src: str
    dst: str
    payload: bytes = b""
    protocol: int = PROTO_UDP
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    power_option: Optional[IpPowerOption] = None

    BASE_HEADER_LEN = 20

    @staticmethod
    def _pack_address(text: str) -> bytes:
        parts = text.split(".")
        if len(parts) != 4:
            raise CodecError(f"malformed IPv4 address {text!r}")
        try:
            octets = bytes(int(p) for p in parts)
        except ValueError as exc:
            raise CodecError(f"malformed IPv4 address {text!r}") from exc
        if any(not (0 <= int(p) <= 255) for p in parts):
            raise CodecError(f"malformed IPv4 address {text!r}")
        return octets

    @staticmethod
    def _unpack_address(data: bytes) -> str:
        return ".".join(str(b) for b in data)

    @property
    def header_length(self) -> int:
        """Header length in bytes, including padded options."""
        options = self.power_option.encode() if self.power_option else b""
        return self.BASE_HEADER_LEN + len(_pad_options(options))

    @property
    def is_power_packet(self) -> bool:
        """True when the datagram carries the IP_Power marker."""
        return self.power_option is not None

    def encode(self) -> bytes:
        """Serialise with a correct header checksum."""
        options = _pad_options(self.power_option.encode() if self.power_option else b"")
        ihl_words = (self.BASE_HEADER_LEN + len(options)) // 4
        if ihl_words > 15:
            raise CodecError("IPv4 options too long")
        total_length = ihl_words * 4 + len(self.payload)
        if total_length > 0xFFFF:
            raise CodecError(f"datagram too long: {total_length}")
        version_ihl = (4 << 4) | ihl_words
        header_wo_checksum = struct.pack(
            ">BBHHHBBH4s4s",
            version_ihl,
            self.dscp << 2,
            total_length,
            self.identification,
            0,  # flags+fragment offset: never fragmented in this library
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self._pack_address(self.src),
            self._pack_address(self.dst),
        ) + options
        checksum = internet_checksum(header_wo_checksum)
        header = header_wo_checksum[:10] + struct.pack(">H", checksum) + header_wo_checksum[12:]
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, verify_checksum: bool = True) -> "IPv4Packet":
        """Parse an IPv4 datagram, recognising the IP_Power option."""
        require_length(data, cls.BASE_HEADER_LEN, "IPv4 header")
        version_ihl = data[0]
        if version_ihl >> 4 != 4:
            raise CodecError(f"not IPv4: version={version_ihl >> 4}")
        ihl = (version_ihl & 0xF) * 4
        require_length(data, ihl, "IPv4 header with options")
        if verify_checksum and internet_checksum(data[:ihl]) != 0:
            raise ChecksumError("IPv4 header checksum mismatch")
        (
            _vihl,
            tos,
            total_length,
            identification,
            _flags_frag,
            ttl,
            protocol,
            _checksum,
            src,
            dst,
        ) = struct.unpack(">BBHHHBBH4s4s", data[: cls.BASE_HEADER_LEN])
        if total_length < ihl or total_length > len(data):
            raise CodecError(
                f"bad IPv4 total length {total_length} (ihl={ihl}, buffer={len(data)})"
            )
        options = data[cls.BASE_HEADER_LEN : ihl]
        power_option = None
        i = 0
        while i < len(options):
            opt_type = options[i]
            if opt_type == 0:  # end of options
                break
            if opt_type == 1:  # no-op
                i += 1
                continue
            require_length(options, i + 2, "IPv4 option header")
            opt_len = options[i + 1]
            if opt_len < 2:
                raise CodecError(f"bad IPv4 option length {opt_len}")
            require_length(options, i + opt_len, "IPv4 option body")
            if opt_type == IP_OPTION_POWER:
                power_option = IpPowerOption.decode(options[i : i + opt_len])
            i += opt_len
        return cls(
            src=cls._unpack_address(src),
            dst=cls._unpack_address(dst),
            payload=data[ihl:total_length],
            protocol=protocol,
            ttl=ttl,
            identification=identification,
            dscp=tos >> 2,
            power_option=power_option,
        )
