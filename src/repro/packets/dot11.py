"""IEEE 802.11 MAC frame codec.

Implements the subset of the 802.11 frame format the PoWiFi system touches:
data frames carrying the UDP broadcast power packets, and beacon management
frames (the paper notes harvesters draw power from beacons too, since the
harvester cannot decode frames at all). Frames are encoded little-endian per
the standard, with an optional FCS (CRC-32) trailer.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional, Tuple

from repro.errors import ChecksumError, CodecError
from repro.packets.bytesutil import require_length


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit IEEE MAC address."""

    octets: bytes

    def __post_init__(self) -> None:
        if len(self.octets) != 6:
            raise CodecError(f"MAC address needs 6 octets, got {len(self.octets)}")

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        """Parse the conventional colon-separated form.

        >>> MacAddress.from_string('ff:ff:ff:ff:ff:ff').is_broadcast
        True
        """
        parts = text.split(":")
        if len(parts) != 6:
            raise CodecError(f"malformed MAC address {text!r}")
        try:
            return cls(bytes(int(p, 16) for p in parts))
        except ValueError as exc:
            raise CodecError(f"malformed MAC address {text!r}") from exc

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self.octets == b"\xff" * 6

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (LSB of the first octet) is set."""
        return bool(self.octets[0] & 0x01)

    def __str__(self) -> str:
        return ":".join(f"{b:02x}" for b in self.octets)


#: The all-ones broadcast address used by power packets.
BROADCAST_MAC = MacAddress(b"\xff" * 6)


class FrameType(IntEnum):
    """802.11 frame type field (2 bits)."""

    MANAGEMENT = 0
    CONTROL = 1
    DATA = 2


#: Management subtype for beacons.
SUBTYPE_BEACON = 8
#: Data subtype for plain data frames.
SUBTYPE_DATA = 0
#: Control subtype for ACK frames.
SUBTYPE_ACK = 13


@dataclass(frozen=True)
class Dot11FrameControl:
    """The 16-bit Frame Control field.

    Only the fields PoWiFi exercises are modelled: protocol version, type,
    subtype, ToDS/FromDS, and retry.
    """

    frame_type: FrameType
    subtype: int
    to_ds: bool = False
    from_ds: bool = False
    retry: bool = False
    protocol_version: int = 0

    def encode(self) -> int:
        """Pack into the on-air 16-bit little-endian value."""
        if not (0 <= self.subtype <= 15):
            raise CodecError(f"subtype out of range: {self.subtype}")
        value = self.protocol_version & 0x3
        value |= (int(self.frame_type) & 0x3) << 2
        value |= (self.subtype & 0xF) << 4
        value |= int(self.to_ds) << 8
        value |= int(self.from_ds) << 9
        value |= int(self.retry) << 11
        return value

    @classmethod
    def decode(cls, value: int) -> "Dot11FrameControl":
        """Unpack from the on-air 16-bit value."""
        return cls(
            protocol_version=value & 0x3,
            frame_type=FrameType((value >> 2) & 0x3),
            subtype=(value >> 4) & 0xF,
            to_ds=bool(value & (1 << 8)),
            from_ds=bool(value & (1 << 9)),
            retry=bool(value & (1 << 11)),
        )


@dataclass(frozen=True)
class Dot11Header:
    """The fixed 24-byte 802.11 MAC header (three-address format)."""

    frame_control: Dot11FrameControl
    duration_us: int
    addr1: MacAddress  # receiver
    addr2: MacAddress  # transmitter
    addr3: MacAddress  # BSSID (for FromDS data: source)
    sequence: int = 0
    fragment: int = 0

    HEADER_LEN = 24

    def encode(self) -> bytes:
        """Serialise to 24 bytes, little-endian per the standard."""
        if not (0 <= self.duration_us <= 0xFFFF):
            raise CodecError(f"duration out of range: {self.duration_us}")
        if not (0 <= self.sequence <= 0xFFF):
            raise CodecError(f"sequence number out of range: {self.sequence}")
        if not (0 <= self.fragment <= 0xF):
            raise CodecError(f"fragment number out of range: {self.fragment}")
        seq_ctrl = (self.sequence << 4) | self.fragment
        return struct.pack(
            "<HH6s6s6sH",
            self.frame_control.encode(),
            self.duration_us,
            self.addr1.octets,
            self.addr2.octets,
            self.addr3.octets,
            seq_ctrl,
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Dot11Header", bytes]:
        """Parse the header; return it and the remaining body bytes."""
        require_length(data, cls.HEADER_LEN, "802.11 header")
        fc, duration, a1, a2, a3, seq_ctrl = struct.unpack(
            "<HH6s6s6sH", data[: cls.HEADER_LEN]
        )
        header = cls(
            frame_control=Dot11FrameControl.decode(fc),
            duration_us=duration,
            addr1=MacAddress(a1),
            addr2=MacAddress(a2),
            addr3=MacAddress(a3),
            sequence=seq_ctrl >> 4,
            fragment=seq_ctrl & 0xF,
        )
        return header, data[cls.HEADER_LEN :]


def _fcs(data: bytes) -> int:
    """IEEE CRC-32 frame check sequence over the MAC header and body."""
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class Dot11Data:
    """A data frame: MAC header + payload (+ FCS when encoded with one)."""

    header: Dot11Header
    payload: bytes = b""

    @classmethod
    def broadcast(
        cls,
        transmitter: MacAddress,
        bssid: MacAddress,
        payload: bytes,
        sequence: int = 0,
        duration_us: int = 0,
    ) -> "Dot11Data":
        """Build a FromDS broadcast data frame, as the power packets are sent.

        Broadcast frames set duration to 0: no ACK follows, so no medium
        reservation beyond the frame itself is needed — this is why the
        paper's power packets require no acknowledgements (§3.2 footnote).
        """
        fc = Dot11FrameControl(FrameType.DATA, SUBTYPE_DATA, from_ds=True)
        header = Dot11Header(
            frame_control=fc,
            duration_us=duration_us,
            addr1=BROADCAST_MAC,
            addr2=transmitter,
            addr3=bssid,
            sequence=sequence,
        )
        return cls(header=header, payload=payload)

    def encode(self, with_fcs: bool = True) -> bytes:
        """Serialise, appending the 4-byte FCS trailer when requested."""
        body = self.header.encode() + self.payload
        if with_fcs:
            body += struct.pack("<I", _fcs(body))
        return body

    @classmethod
    def decode(cls, data: bytes, with_fcs: bool = True) -> "Dot11Data":
        """Parse a data frame, verifying the FCS when present."""
        if with_fcs:
            require_length(data, Dot11Header.HEADER_LEN + 4, "802.11 data frame")
            body, trailer = data[:-4], data[-4:]
            (expected,) = struct.unpack("<I", trailer)
            actual = _fcs(body)
            if actual != expected:
                raise ChecksumError(
                    f"FCS mismatch: frame says {expected:#010x}, computed {actual:#010x}"
                )
        else:
            body = data
        header, payload = Dot11Header.decode(body)
        if header.frame_control.frame_type != FrameType.DATA:
            raise CodecError(
                f"not a data frame: type={header.frame_control.frame_type!r}"
            )
        return cls(header=header, payload=payload)

    @property
    def on_air_length(self) -> int:
        """Total MAC-layer bytes on the air (header + payload + FCS)."""
        return Dot11Header.HEADER_LEN + len(self.payload) + 4


@dataclass(frozen=True)
class Dot11Beacon:
    """A beacon management frame with the fixed fields PoWiFi cares about.

    Beacons matter to PoWiFi because the harvester draws power from *all*
    router transmissions; a beacon every ~102.4 ms contributes a small
    baseline occupancy on every channel.
    """

    bssid: MacAddress
    ssid: str
    beacon_interval_tu: int = 100  # 1 TU = 1024 us
    capabilities: int = 0x0401  # ESS + short slot
    timestamp: int = 0
    sequence: int = 0

    FIXED_FIELDS_LEN = 12  # timestamp(8) + interval(2) + capabilities(2)

    def encode(self, with_fcs: bool = True) -> bytes:
        """Serialise header, fixed fields, and an SSID information element."""
        ssid_bytes = self.ssid.encode("utf-8")
        if len(ssid_bytes) > 32:
            raise CodecError(f"SSID too long: {len(ssid_bytes)} bytes (max 32)")
        fc = Dot11FrameControl(FrameType.MANAGEMENT, SUBTYPE_BEACON)
        header = Dot11Header(
            frame_control=fc,
            duration_us=0,
            addr1=BROADCAST_MAC,
            addr2=self.bssid,
            addr3=self.bssid,
            sequence=self.sequence,
        )
        fixed = struct.pack(
            "<QHH", self.timestamp, self.beacon_interval_tu, self.capabilities
        )
        ssid_ie = bytes([0, len(ssid_bytes)]) + ssid_bytes
        body = header.encode() + fixed + ssid_ie
        if with_fcs:
            body += struct.pack("<I", _fcs(body))
        return body

    @classmethod
    def decode(cls, data: bytes, with_fcs: bool = True) -> "Dot11Beacon":
        """Parse a beacon frame (header, fixed fields, SSID IE)."""
        if with_fcs:
            require_length(data, Dot11Header.HEADER_LEN + 4, "beacon frame")
            body, trailer = data[:-4], data[-4:]
            (expected,) = struct.unpack("<I", trailer)
            if _fcs(body) != expected:
                raise ChecksumError("beacon FCS mismatch")
        else:
            body = data
        header, rest = Dot11Header.decode(body)
        if (
            header.frame_control.frame_type != FrameType.MANAGEMENT
            or header.frame_control.subtype != SUBTYPE_BEACON
        ):
            raise CodecError("not a beacon frame")
        require_length(rest, cls.FIXED_FIELDS_LEN + 2, "beacon fixed fields")
        timestamp, interval, caps = struct.unpack("<QHH", rest[:12])
        ies = rest[12:]
        if ies[0] != 0:
            raise CodecError(f"expected SSID IE first, got element id {ies[0]}")
        ssid_len = ies[1]
        require_length(ies, 2 + ssid_len, "SSID IE")
        ssid = ies[2 : 2 + ssid_len].decode("utf-8", errors="replace")
        return cls(
            bssid=header.addr2,
            ssid=ssid,
            beacon_interval_tu=interval,
            capabilities=caps,
            timestamp=timestamp,
            sequence=header.sequence,
        )
