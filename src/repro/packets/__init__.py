"""Byte-level packet and frame codecs.

The paper measures channel occupancy by capturing radiotap-tagged 802.11
frames with tcpdump and post-processing them with tshark. This package
reproduces that pipeline in pure Python: 802.11 MAC headers, radiotap capture
headers, LLC/SNAP, IPv4 (including the custom ``IP_Power`` option the PoWiFi
kernel patch uses to mark power datagrams), UDP, and the classic pcap
container. The MAC simulator emits real frame bytes through these codecs and
the occupancy analyzer parses them back, so the measurement path is exercised
end to end.
"""

from repro.packets.bytesutil import internet_checksum, hexdump
from repro.packets.dot11 import (
    Dot11Beacon,
    Dot11Data,
    Dot11FrameControl,
    Dot11Header,
    FrameType,
    MacAddress,
    BROADCAST_MAC,
)
from repro.packets.ipv4 import IPv4Packet, IP_OPTION_POWER
from repro.packets.llc import LlcSnapHeader, ETHERTYPE_IPV4
from repro.packets.pcap import PcapReader, PcapWriter, LINKTYPE_IEEE802_11_RADIOTAP
from repro.packets.radiotap import RadiotapHeader
from repro.packets.udp import UdpDatagram
from repro.packets.builder import PowerPacketBuilder, build_power_frame
from repro.packets.control import AckFrame, CtsFrame, RtsFrame

__all__ = [
    "internet_checksum",
    "hexdump",
    "MacAddress",
    "BROADCAST_MAC",
    "FrameType",
    "Dot11FrameControl",
    "Dot11Header",
    "Dot11Data",
    "Dot11Beacon",
    "LlcSnapHeader",
    "ETHERTYPE_IPV4",
    "IPv4Packet",
    "IP_OPTION_POWER",
    "UdpDatagram",
    "RadiotapHeader",
    "PcapReader",
    "PcapWriter",
    "LINKTYPE_IEEE802_11_RADIOTAP",
    "PowerPacketBuilder",
    "build_power_frame",
    "AckFrame",
    "RtsFrame",
    "CtsFrame",
]
