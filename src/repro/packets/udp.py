"""UDP codec.

The power traffic is plain UDP broadcast datagrams (§3.2); we implement the
full header including the optional checksum over the IPv4 pseudo-header so
captures round-trip faithfully.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ChecksumError, CodecError
from repro.packets.bytesutil import internet_checksum, require_length
from repro.packets.ipv4 import IPv4Packet


@dataclass(frozen=True)
class UdpDatagram:
    """A UDP datagram (header + payload)."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    HEADER_LEN = 8

    def __post_init__(self) -> None:
        for label, port in (("src", self.src_port), ("dst", self.dst_port)):
            if not (0 <= port <= 0xFFFF):
                raise CodecError(f"{label} port out of range: {port}")

    @property
    def length(self) -> int:
        """Total datagram length (header + payload) in bytes."""
        return self.HEADER_LEN + len(self.payload)

    def _pseudo_header(self, src_ip: str, dst_ip: str) -> bytes:
        return (
            IPv4Packet._pack_address(src_ip)
            + IPv4Packet._pack_address(dst_ip)
            + struct.pack(">BBH", 0, 17, self.length)
        )

    def encode(self, src_ip: str = "", dst_ip: str = "") -> bytes:
        """Serialise; computes the checksum when both IPs are provided.

        A zero checksum means "not computed", which is legal for IPv4 UDP —
        the injector uses this to avoid per-packet checksum cost, exactly as
        a kernel fast path would with checksum offload unavailable.
        """
        checksum = 0
        if src_ip and dst_ip:
            pseudo = self._pseudo_header(src_ip, dst_ip)
            header_wo_sum = struct.pack(
                ">HHHH", self.src_port, self.dst_port, self.length, 0
            )
            checksum = internet_checksum(pseudo + header_wo_sum + self.payload)
            if checksum == 0:
                checksum = 0xFFFF  # RFC 768: transmitted as all ones
        return struct.pack(
            ">HHHH", self.src_port, self.dst_port, self.length, checksum
        ) + self.payload

    @classmethod
    def decode(
        cls, data: bytes, src_ip: str = "", dst_ip: str = ""
    ) -> "UdpDatagram":
        """Parse; verifies the checksum when IPs are provided and it is set."""
        require_length(data, cls.HEADER_LEN, "UDP header")
        src_port, dst_port, length, checksum = struct.unpack(">HHHH", data[:8])
        if length < cls.HEADER_LEN or length > len(data):
            raise CodecError(f"bad UDP length {length} (buffer={len(data)})")
        payload = data[cls.HEADER_LEN : length]
        datagram = cls(src_port=src_port, dst_port=dst_port, payload=payload)
        if checksum != 0 and src_ip and dst_ip:
            pseudo = datagram._pseudo_header(src_ip, dst_ip)
            if internet_checksum(pseudo + data[:length]) != 0:
                raise ChecksumError("UDP checksum mismatch")
        return datagram
