"""LLC/SNAP encapsulation.

802.11 data frames carry IP inside an 802.2 LLC header with a SNAP extension;
the 8-byte sequence ``AA AA 03 00 00 00`` + ethertype precedes every IP
datagram the PoWiFi injector sends.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from repro.errors import CodecError
from repro.packets.bytesutil import require_length

#: Ethertype carried in the SNAP header for IPv4 payloads.
ETHERTYPE_IPV4 = 0x0800


@dataclass(frozen=True)
class LlcSnapHeader:
    """The 8-byte LLC/SNAP header (DSAP=SSAP=0xAA, UI control, zero OUI)."""

    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 8

    def encode(self) -> bytes:
        """Serialise to the canonical 8 bytes."""
        if not (0 <= self.ethertype <= 0xFFFF):
            raise CodecError(f"ethertype out of range: {self.ethertype:#x}")
        return struct.pack(">BBB3sH", 0xAA, 0xAA, 0x03, b"\x00\x00\x00", self.ethertype)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["LlcSnapHeader", bytes]:
        """Parse; return the header and the remaining payload."""
        require_length(data, cls.LENGTH, "LLC/SNAP header")
        dsap, ssap, control, oui, ethertype = struct.unpack(">BBB3sH", data[: cls.LENGTH])
        if dsap != 0xAA or ssap != 0xAA or control != 0x03:
            raise CodecError(
                f"not an LLC/SNAP header: dsap={dsap:#x} ssap={ssap:#x} ctl={control:#x}"
            )
        if oui != b"\x00\x00\x00":
            raise CodecError(f"unsupported SNAP OUI {oui.hex()}")
        return cls(ethertype=ethertype), data[cls.LENGTH :]
