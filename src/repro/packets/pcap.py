"""Classic pcap container (the format tcpdump wrote in the paper's pipeline).

Implements the libpcap 2.4 file format with microsecond timestamps. The
monitor-mode capture in :mod:`repro.mac80211.capture` writes radiotap-framed
802.11 bytes into these files and the occupancy analyzer reads them back —
the same division of labour as tcpdump + tshark in §4.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Optional, Tuple, Union

from repro.errors import CodecError, TruncatedFrameError

#: Magic for microsecond-resolution classic pcap, written big-endian here.
PCAP_MAGIC = 0xA1B2C3D4

#: Linktype for 802.11 frames prefixed with a radiotap header.
LINKTYPE_IEEE802_11_RADIOTAP = 127

#: Linktype for bare 802.11 frames.
LINKTYPE_IEEE802_11 = 105

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet: a timestamp plus raw bytes."""

    timestamp: float
    data: bytes
    original_length: int

    @property
    def truncated(self) -> bool:
        """True when the capture snaplen cut the packet short."""
        return self.original_length > len(self.data)


class PcapWriter:
    """Streams packets into a classic pcap file or file-like object."""

    def __init__(
        self,
        target: Union[str, BinaryIO],
        linktype: int = LINKTYPE_IEEE802_11_RADIOTAP,
        snaplen: int = 65535,
    ) -> None:
        if isinstance(target, str):
            self._fh: BinaryIO = open(target, "wb")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self.linktype = linktype
        self.snaplen = snaplen
        self._count = 0
        self._fh.write(
            _GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen, linktype)
        )

    @property
    def packet_count(self) -> int:
        """Number of records written so far."""
        return self._count

    def write(self, timestamp: float, data: bytes) -> None:
        """Append one packet captured at ``timestamp`` (seconds)."""
        if timestamp < 0:
            raise CodecError(f"negative capture timestamp {timestamp!r}")
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1e6))
        if micros >= 1_000_000:
            seconds += 1
            micros -= 1_000_000
        captured = data[: self.snaplen]
        self._fh.write(
            _RECORD_HEADER.pack(seconds, micros, len(captured), len(data))
        )
        self._fh.write(captured)
        self._count += 1

    def close(self) -> None:
        """Flush and close (closes the file only if this writer opened it)."""
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class PcapReader:
    """Iterates records out of a classic pcap file or file-like object."""

    def __init__(self, source: Union[str, BinaryIO, bytes]) -> None:
        if isinstance(source, str):
            self._fh: BinaryIO = open(source, "rb")
            self._owns_fh = True
        elif isinstance(source, bytes):
            self._fh = io.BytesIO(source)
            self._owns_fh = True
        else:
            self._fh = source
            self._owns_fh = False
        header = self._fh.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise TruncatedFrameError("pcap global header truncated")
        magic, major, minor, _tz, _sig, snaplen, linktype = _GLOBAL_HEADER.unpack(header)
        if magic != PCAP_MAGIC:
            raise CodecError(f"bad pcap magic {magic:#010x}")
        if (major, minor) != (2, 4):
            raise CodecError(f"unsupported pcap version {major}.{minor}")
        self.snaplen = snaplen
        self.linktype = linktype

    def __iter__(self) -> Iterator[PcapRecord]:
        return self

    def __next__(self) -> PcapRecord:
        header = self._fh.read(_RECORD_HEADER.size)
        if not header:
            raise StopIteration
        if len(header) < _RECORD_HEADER.size:
            raise TruncatedFrameError("pcap record header truncated")
        seconds, micros, incl_len, orig_len = _RECORD_HEADER.unpack(header)
        data = self._fh.read(incl_len)
        if len(data) < incl_len:
            raise TruncatedFrameError("pcap record body truncated")
        return PcapRecord(
            timestamp=seconds + micros / 1e6,
            data=data,
            original_length=orig_len,
        )

    def read_all(self) -> List[PcapRecord]:
        """Materialise every remaining record."""
        return list(self)

    def close(self) -> None:
        """Close the underlying file if this reader opened it."""
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
