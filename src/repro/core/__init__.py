"""The PoWiFi core: power-packet injection with queue-aware dropping.

This package is the paper's primary contribution (§3.2): a user-space
injector sending 1500-byte UDP broadcast datagrams at the highest 802.11g
rate with a constant inter-packet delay, an IP-layer gate (``IP_Power``)
that drops a power datagram whenever the wireless interface's transmit queue
is at or above a threshold, and a router that runs one injector per
non-overlapping 2.4 GHz channel so the *cumulative* occupancy approaches a
continuous transmission.
"""

from repro.core.config import InjectorConfig, Scheme
from repro.core.ip_power import IpPowerGate
from repro.core.injector import PowerInjector
from repro.core.occupancy import (
    OccupancyAnalyzer,
    OccupancySeries,
    occupancy_from_pcap,
)
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.core.scheduler import OccupancyCap
from repro.core.schemes import scheme_injector_config
from repro.core.pdos import PdosAttacker, PdosWatchdog
from repro.core.multi_router import MultiRouterDeployment, MultiRouterResult

__all__ = [
    "InjectorConfig",
    "Scheme",
    "IpPowerGate",
    "PowerInjector",
    "OccupancyAnalyzer",
    "OccupancySeries",
    "occupancy_from_pcap",
    "PoWiFiRouter",
    "RouterConfig",
    "OccupancyCap",
    "scheme_injector_config",
    "PdosAttacker",
    "PdosWatchdog",
    "MultiRouterDeployment",
    "MultiRouterResult",
]
