"""Channel-occupancy measurement — the paper's key metric.

§4 defines occupancy from a monitor-interface capture as::

    occupancy = sum_i(size_i / rate_i) / total_duration

over the frames the router transmitted (size in bits, rate in bit/s). Note
this is *payload airtime*: PHY preambles and MAC idle overheads are invisible
to the radiotap arithmetic, so a saturated channel measures below 100 % on a
single channel while the *cumulative* occupancy across three channels can
exceed 100 % (§4, §6).

Two implementations are provided:

* :func:`occupancy_from_pcap` — parses a radiotap pcap (the tshark role);
* :class:`OccupancyAnalyzer` — a live medium observer, cheaper for long runs,
  computing the identical statistic.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.mac80211.medium import Medium, TransmissionRecord
from repro.packets.pcap import PcapReader
from repro.packets.radiotap import RadiotapHeader


@dataclass
class OccupancySeries:
    """Windowed occupancy samples (e.g. one per 60 s in the home study)."""

    window_s: float
    samples: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        """Mean occupancy across windows."""
        if not self.samples:
            raise ConfigurationError("series is empty")
        return sum(self.samples) / len(self.samples)

    def cdf(self) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) points, for the paper's CDF plots."""
        from repro.analysis import empirical_cdf

        return empirical_cdf(self.samples)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile ``q`` in [0, 100]."""
        from repro.analysis import percentile

        if not self.samples:
            raise ConfigurationError("series is empty")
        return percentile(self.samples, q)


def occupancy_from_pcap(
    source: Union[str, bytes, BinaryIO],
    duration_s: Optional[float] = None,
) -> float:
    """Compute Σ size/rate ÷ duration from a radiotap pcap capture.

    Parameters
    ----------
    source:
        Path, raw bytes, or file object of a capture written by
        :class:`repro.mac80211.capture.MonitorCapture` (or real tcpdump
        output restricted to the radiotap fields this library emits).
    duration_s:
        Total observation duration. Defaults to the span between the first
        and last capture timestamps — supply the true duration when the
        capture has idle head/tail time.
    """
    airtime = 0.0
    first: Optional[float] = None
    last: Optional[float] = None
    with PcapReader(source) as reader:
        for record in reader:
            header, frame = RadiotapHeader.decode(record.data)
            if header.rate_mbps <= 0:
                raise ConfigurationError("capture contains a zero-rate frame")
            size_bits = 8 * len(frame)
            airtime += size_bits / (header.rate_mbps * 1e6)
            first = record.timestamp if first is None else first
            last = record.timestamp
    if duration_s is None:
        if first is None or last is None or last <= first:
            raise ConfigurationError(
                "cannot infer duration from a capture with < 2 frames; "
                "pass duration_s explicitly"
            )
        duration_s = last - first
    if duration_s <= 0:
        raise ConfigurationError(f"duration must be > 0 s, got {duration_s}")
    return airtime / duration_s


@dataclass
class _FrameSample:
    time: float
    airtime_s: float


class OccupancyAnalyzer:
    """Live occupancy accounting on one medium.

    Computes the same Σ size/rate statistic as the pcap path, without
    materialising frame bytes. Subscribe one per channel; ask for the overall
    occupancy, a windowed series, or per-window values aligned across
    channels for cumulative occupancy.

    Parameters
    ----------
    medium:
        The channel to observe.
    station_filter:
        Restrict to frames transmitted by this station (the router), as the
        paper's tshark filter does. ``None`` counts every transmitter.
    """

    def __init__(self, medium: Medium, station_filter: Optional[str] = None) -> None:
        self.medium = medium
        self.station_filter = station_filter
        self._samples: List[_FrameSample] = []
        self._started_at = medium.sim.now
        self._airtime_total = 0.0
        metrics = medium.sim.metrics
        labels = dict(channel=medium.channel, station=station_filter or "*")
        self._m_frames = metrics.counter("core.occupancy.frames", **labels)
        self._m_airtime = metrics.counter("core.occupancy.airtime_s", **labels)
        self._m_fraction = metrics.gauge("core.occupancy.fraction", **labels)
        medium.add_observer(self._on_transmission)

    def _on_transmission(self, record: TransmissionRecord) -> None:
        for station_name, frame in record.transmissions:
            if self.station_filter is not None and station_name != self.station_filter:
                continue
            airtime = 8 * frame.mac_bytes / (frame.rate_mbps * 1e6)
            self._samples.append(_FrameSample(record.start, airtime))
            self._airtime_total += airtime
            self._m_frames.inc()
            self._m_airtime.inc(airtime)
            elapsed = self.medium.sim.now - self._started_at
            if elapsed > 0:
                # Running Σ size/rate ÷ elapsed — the paper's occupancy
                # metric as a live gauge (counts the in-flight frame, so it
                # can briefly lead the windowed statistic).
                self._m_fraction.set(self._airtime_total / elapsed)

    @property
    def frame_count(self) -> int:
        """Number of frames counted so far."""
        return len(self._samples)

    def occupancy(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Occupancy over ``[start, end)`` (defaults: observation span)."""
        if start is None:
            start = self._started_at
        if end is None:
            end = self.medium.sim.now
        if end <= start:
            raise ConfigurationError("window must have positive length")
        airtime = sum(s.airtime_s for s in self._samples if start <= s.time < end)
        return airtime / (end - start)

    def series(
        self,
        window_s: float,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> OccupancySeries:
        """Windowed occupancy over the observation period."""
        if window_s <= 0:
            raise ConfigurationError(f"window must be > 0 s, got {window_s}")
        if start is None:
            start = self._started_at
        if end is None:
            end = self.medium.sim.now
        series = OccupancySeries(window_s=window_s)
        t = start
        while t + window_s <= end + 1e-12:
            series.samples.append(self.occupancy(t, t + window_s))
            t += window_s
        return series


def cumulative_series(per_channel: Sequence[OccupancySeries]) -> OccupancySeries:
    """Sum aligned per-channel series into the cumulative occupancy.

    The paper's headline metric: cumulative occupancy across channels 1, 6
    and 11 can exceed 100 % because the three chipsets transmit
    independently (§4).
    """
    if not per_channel:
        raise ConfigurationError("need at least one channel series")
    window = per_channel[0].window_s
    for s in per_channel:
        # Windows are copies of one configured literal, so exact equality
        # is the correct consistency check, not float arithmetic.
        if s.window_s != window:  # lint: ignore[PW005] config equality, not time math
            raise ConfigurationError("series windows differ")
    n = min(len(s.samples) for s in per_channel)
    out = OccupancySeries(window_s=window)
    for i in range(n):
        out.samples.append(sum(s.samples[i] for s in per_channel))
    return out
