"""The PoWiFi router: three chipsets, three channels, one design.

§4's prototype runs three Atheros AR9580 interfaces on channels 1, 6 and 11,
each independently executing the injection algorithm; Internet connectivity
for clients rides channel 1. :class:`PoWiFiRouter` assembles the pieces:
one :class:`~repro.mac80211.station.Station` per channel with the
mac80211-style class-based queue, a beacon source per interface, a
:class:`~repro.core.injector.PowerInjector` per interface when the scheme
asks for one, and an :class:`~repro.core.occupancy.OccupancyAnalyzer` per
channel filtered to the router's own transmissions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import InjectorConfig, Scheme
from repro.core.injector import PowerInjector
from repro.core.occupancy import OccupancyAnalyzer, OccupancySeries, cumulative_series
from repro.core.schemes import scheme_injector_config
from repro.errors import ConfigurationError
from repro.mac80211.beacon import BeaconSource
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.netstack.txqueue import power_vs_client
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class RouterConfig:
    """Static configuration of a PoWiFi router.

    Attributes
    ----------
    scheme:
        Which §4.1 scheme the router runs.
    channels:
        The channels power is injected on (1, 6, 11 in the paper).
    client_channel:
        The channel carrying Internet connectivity (1 in the paper).
    tx_power_dbm:
        Conducted transmit power (30 dBm in the prototype).
    equal_share_rate_mbps:
        Only for :attr:`Scheme.EQUAL_SHARE`.
    injector_override:
        Replace the scheme's stock injector parameters (used by the Fig 5
        sweeps over delay and threshold).
    beacons:
        Whether the interfaces beacon (on in every paper experiment).
    """

    scheme: Scheme = Scheme.POWIFI
    channels: Tuple[int, ...] = (1, 6, 11)
    client_channel: int = 1
    tx_power_dbm: float = 30.0
    equal_share_rate_mbps: Optional[float] = None
    injector_override: Optional[InjectorConfig] = None
    beacons: bool = True

    def __post_init__(self) -> None:
        if not self.channels:
            raise ConfigurationError("router needs at least one channel")
        if self.client_channel not in self.channels:
            raise ConfigurationError(
                f"client channel {self.client_channel} not in {self.channels}"
            )


class PoWiFiRouter:
    """A router instance wired onto per-channel media.

    Parameters
    ----------
    sim:
        Simulation kernel.
    media:
        Mapping channel number -> :class:`Medium`; must cover
        ``config.channels``.
    streams:
        Random-stream factory.
    name:
        Base name; interfaces are ``"<name>:ch<channel>"``.
    """

    def __init__(
        self,
        sim: Simulator,
        media: Dict[int, Medium],
        streams: RandomStreams,
        config: Optional[RouterConfig] = None,
        name: str = "router",
    ) -> None:
        self.sim = sim
        self.config = config or RouterConfig()
        self.name = name
        self.stations: Dict[int, Station] = {}
        self.injectors: Dict[int, PowerInjector] = {}
        self.beacon_sources: Dict[int, BeaconSource] = {}
        self.analyzers: Dict[int, OccupancyAnalyzer] = {}

        missing = [ch for ch in self.config.channels if ch not in media]
        if missing:
            raise ConfigurationError(f"no medium provided for channels {missing}")

        injector_config = self.config.injector_override
        if injector_config is None:
            injector_config = scheme_injector_config(
                self.config.scheme, self.config.equal_share_rate_mbps
            )

        for index, channel in enumerate(self.config.channels):
            station = Station(
                sim,
                name=f"{name}:ch{channel}",
                streams=streams,
                queue_classifier=power_vs_client,
            )
            media[channel].attach(station)
            self.stations[channel] = station
            self.analyzers[channel] = OccupancyAnalyzer(
                media[channel], station_filter=station.name
            )
            if self.config.beacons:
                beacon = BeaconSource(sim, station)
                self.beacon_sources[channel] = beacon
            if injector_config is not None:
                self.injectors[channel] = PowerInjector(
                    sim, station, injector_config, interface_id=index
                )

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Start beaconing and (if the scheme has one) power injection."""
        for beacon in self.beacon_sources.values():
            beacon.start()
        for injector in self.injectors.values():
            injector.start()

    def stop(self) -> None:
        """Stop beacons and injectors."""
        for beacon in self.beacon_sources.values():
            beacon.stop()
        for injector in self.injectors.values():
            injector.stop()

    # -------------------------------------------------------------- traffic

    @property
    def client_station(self) -> Station:
        """The interface carrying Internet connectivity (channel 1)."""
        return self.stations[self.config.client_channel]

    # --------------------------------------------------------------- metrics

    def occupancy_by_channel(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> Dict[int, float]:
        """Occupancy of the router's transmissions per channel."""
        return {
            ch: analyzer.occupancy(start, end)
            for ch, analyzer in self.analyzers.items()
        }

    def cumulative_occupancy(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> float:
        """Sum of per-channel occupancies — the paper's headline metric."""
        return sum(self.occupancy_by_channel(start, end).values())

    def occupancy_series_by_channel(
        self, window_s: float, start: Optional[float] = None, end: Optional[float] = None
    ) -> Dict[int, OccupancySeries]:
        """Windowed per-channel occupancy series."""
        return {
            ch: analyzer.series(window_s, start, end)
            for ch, analyzer in self.analyzers.items()
        }

    def cumulative_occupancy_series(
        self, window_s: float, start: Optional[float] = None, end: Optional[float] = None
    ) -> OccupancySeries:
        """Windowed cumulative occupancy series."""
        return cumulative_series(
            list(self.occupancy_series_by_channel(window_s, start, end).values())
        )
