"""Scheme factory: injector parameters for each evaluated router mode.

§4.1 compares Baseline, BlindUDP, NoQueue and PoWiFi; §4.1(d) adds
EqualShare. Each scheme is entirely described by whether an injector runs
and with what :class:`repro.core.config.InjectorConfig`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import (
    DEFAULT_INTER_PACKET_DELAY_S,
    DEFAULT_QUEUE_THRESHOLD,
    InjectorConfig,
    Scheme,
)
from repro.errors import ConfigurationError


def scheme_injector_config(
    scheme: Scheme,
    equal_share_rate_mbps: Optional[float] = None,
) -> Optional[InjectorConfig]:
    """Injector configuration for ``scheme`` (None = no injector).

    Parameters
    ----------
    scheme:
        The router mode.
    equal_share_rate_mbps:
        Required for :attr:`Scheme.EQUAL_SHARE`: the neighbouring pair's
        bit rate the power packets are matched to.
    """
    if scheme is Scheme.BASELINE:
        return None
    if scheme is Scheme.BLIND_UDP:
        # Saturate at the lowest rate: each 1536-byte frame occupies the
        # channel for ~12.5 ms, so even slow pacing keeps the queue full.
        return InjectorConfig(
            inter_packet_delay_s=DEFAULT_INTER_PACKET_DELAY_S,
            queue_threshold=None,
            rate_mbps=1.0,
        )
    if scheme is Scheme.NO_QUEUE:
        return InjectorConfig(
            inter_packet_delay_s=DEFAULT_INTER_PACKET_DELAY_S,
            queue_threshold=None,
            rate_mbps=54.0,
        )
    if scheme is Scheme.POWIFI:
        return InjectorConfig(
            inter_packet_delay_s=DEFAULT_INTER_PACKET_DELAY_S,
            queue_threshold=DEFAULT_QUEUE_THRESHOLD,
            rate_mbps=54.0,
        )
    if scheme is Scheme.EQUAL_SHARE:
        if equal_share_rate_mbps is None:
            raise ConfigurationError(
                "EqualShare needs the neighbouring pair's bit rate"
            )
        return InjectorConfig(
            inter_packet_delay_s=DEFAULT_INTER_PACKET_DELAY_S,
            queue_threshold=DEFAULT_QUEUE_THRESHOLD,
            rate_mbps=equal_share_rate_mbps,
        )
    raise ConfigurationError(f"unknown scheme {scheme!r}")
