"""The ``IP_Power`` gate: the kernel half of the PoWiFi mechanism.

§3.2 hoists MAC-layer queue state to the IP layer through a shim
(Power_MACshim) so that ``ip_local_out_sk()`` can drop *power* datagrams —
and only power datagrams — when the wireless interface already has enough
frames queued to keep the channel busy. Client traffic is never touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.mac80211.station import Station
from repro.packets.ipv4 import IPv4Packet


@dataclass
class GateStatistics:
    """Counters mirroring what the kernel patch would expose in debugfs."""

    considered: int = 0
    admitted: int = 0
    dropped: int = 0

    @property
    def drop_fraction(self) -> float:
        """Fraction of power datagrams dropped by the gate."""
        if self.considered == 0:
            return 0.0
        return self.dropped / self.considered


class IpPowerGate:
    """Per-interface admission check for power datagrams.

    Parameters
    ----------
    station:
        The wireless interface whose transmit-queue depth gates admission
        (the Power_MACshim query path).
    queue_threshold:
        Datagrams are dropped when ``depth >= queue_threshold``; ``None``
        disables the check entirely (the NoQueue scheme).
    """

    def __init__(self, station: Station, queue_threshold: Optional[int]) -> None:
        if queue_threshold is not None and queue_threshold < 1:
            raise ConfigurationError(
                f"queue threshold must be >= 1 or None, got {queue_threshold}"
            )
        self.station = station
        self.queue_threshold = queue_threshold
        self.stats = GateStatistics()
        metrics = station.sim.metrics
        self._m_considered = metrics.counter(
            "core.ip_power.considered", interface=station.name
        )
        self._m_admitted = metrics.counter(
            "core.ip_power.admitted", interface=station.name
        )
        self._m_dropped = metrics.counter(
            "core.ip_power.dropped", interface=station.name
        )
        self._m_depth_at_check = metrics.histogram(
            "core.ip_power.depth_at_check",
            buckets=(0, 1, 2, 3, 4, 5, 6, 8, 10, 20, 50),
            interface=station.name,
        )

    def admit(self) -> bool:
        """Decide whether the next power datagram may be queued.

        Mirrors the per-packet check in ``ip_local_out_sk()``: admitted when
        the interface queue depth is below the threshold, dropped (with an
        error code back to user space) otherwise.
        """
        stats = self.stats
        stats.considered += 1
        self._m_considered.inc()
        station = self.station
        # station.queue_depth, inlined: this runs once per injection tick.
        depth = station.queue._size + (1 if station._in_flight is not None else 0)
        self._m_depth_at_check.observe(depth)
        threshold = self.queue_threshold
        if threshold is not None and depth >= threshold:
            stats.dropped += 1
            self._m_dropped.inc()
            trace = station.sim.trace
            if trace.wants("core.gate_drop"):
                trace.emit(
                    station.sim.now,
                    station.name,
                    "core.gate_drop",
                    depth=depth,
                    threshold=threshold,
                )
            return False
        stats.admitted += 1
        self._m_admitted.inc()
        return True

    def check_datagram(self, packet: IPv4Packet) -> bool:
        """Byte-level entry point: gate a real IPv4 datagram.

        Non-power datagrams (no IP_Power option) always pass — the gate
        never interferes with client traffic.
        """
        if not packet.is_power_packet:
            return True
        return self.admit()
