"""Configuration objects for the PoWiFi injection mechanism."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.errors import ConfigurationError
from repro.mac80211.rates import validate_rate


class Scheme(Enum):
    """The four router schemes compared in §4.1 plus EqualShare (§4.1(d))."""

    #: No extra traffic at all.
    BASELINE = "baseline"
    #: Saturating UDP broadcast at 1 Mb/s, no queue check.
    BLIND_UDP = "blind_udp"
    #: 54 Mb/s power packets but the queue-threshold check disabled.
    NO_QUEUE = "no_queue"
    #: The full design: 54 Mb/s power packets gated on queue depth.
    POWIFI = "powifi"
    #: Power packets at the *neighbour's* bit rate (fairness baseline, Fig 8).
    EQUAL_SHARE = "equal_share"


#: The paper's tuned queue-depth threshold (§3.2(i)).
DEFAULT_QUEUE_THRESHOLD = 5

#: The paper's chosen inter-packet delay (§3.2(ii)).
DEFAULT_INTER_PACKET_DELAY_S = 100e-6

#: The IP datagram size of power packets.
DEFAULT_POWER_PACKET_BYTES = 1500

#: MAC+LLC+FCS overhead on top of the IP datagram.
MAC_OVERHEAD_BYTES = 24 + 8 + 4


@dataclass(frozen=True)
class InjectorConfig:
    """Parameters of one per-channel power injector.

    Attributes
    ----------
    inter_packet_delay_s:
        The user-space program's pacing between send() calls.
    queue_threshold:
        Drop power packets when the interface queue depth is at or above
        this value; ``None`` disables the check (the NoQueue scheme).
    rate_mbps:
        Wi-Fi bit rate for power packets (54 for PoWiFi, 1 for BlindUDP).
    ip_datagram_bytes:
        IP-layer size of each power datagram.
    syscall_overhead_s:
        Minimum achievable spacing between consecutive user-space sends —
        the kernel-responsiveness floor §3.2(ii) discusses.
    """

    inter_packet_delay_s: float = DEFAULT_INTER_PACKET_DELAY_S
    queue_threshold: Optional[int] = DEFAULT_QUEUE_THRESHOLD
    rate_mbps: float = 54.0
    ip_datagram_bytes: int = DEFAULT_POWER_PACKET_BYTES
    syscall_overhead_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.inter_packet_delay_s < 0:
            raise ConfigurationError(
                f"inter-packet delay must be >= 0, got {self.inter_packet_delay_s}"
            )
        if self.queue_threshold is not None and self.queue_threshold < 1:
            raise ConfigurationError(
                f"queue threshold must be >= 1 (or None), got {self.queue_threshold}"
            )
        validate_rate(self.rate_mbps)
        if self.ip_datagram_bytes < 64:
            raise ConfigurationError(
                f"power datagrams must be >= 64 bytes, got {self.ip_datagram_bytes}"
            )
        if self.syscall_overhead_s < 0:
            raise ConfigurationError("syscall overhead must be >= 0")

    @property
    def mac_frame_bytes(self) -> int:
        """On-air MPDU size of one power frame."""
        return self.ip_datagram_bytes + MAC_OVERHEAD_BYTES

    @property
    def effective_period_s(self) -> float:
        """Actual pacing: the configured delay, floored by syscall overhead."""
        return max(self.inter_packet_delay_s, self.syscall_overhead_s)
