"""The §3.2 selective-transmission mechanism, byte-for-byte.

The paper's kernel patch has three named pieces; this module reproduces
each of them operating on real datagram bytes (the fast descriptor-based
:mod:`repro.core.injector` is equivalent but skips serialisation for long
simulations):

* **Power_Socket** — a UDP broadcast socket whose datagrams carry the
  custom ``IP_Power`` option identifying the target wireless interface;
* **Power_MACshim** — the shim between the IP stack and mac80211 that lets
  the IP layer query a wireless interface's queue status by id;
* **IP_Power** — the per-packet check in ``ip_local_out_sk()`` that drops
  marked datagrams when the interface queue is at/above threshold,
  returning an error code to user space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import InjectorConfig, MAC_OVERHEAD_BYTES
from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.station import Station
from repro.packets.builder import PowerPacketBuilder
from repro.packets.dot11 import MacAddress
from repro.packets.ipv4 import IPv4Packet
from repro.sim.engine import Event, Simulator

#: The error code ``ip_local_out_sk`` returns for a gated power datagram
#: (mirrors a kernel -ENOBUFS back to the user-space sender).
ENOBUFS = 105


class PowerMacShim:
    """Power_MACshim: interface-id -> wireless-queue status queries.

    On socket creation the user-space program stores the integer that
    "uniquely identifies the corresponding wireless interface at the
    router" (§3.2); the IP layer resolves that id here.
    """

    def __init__(self) -> None:
        self._interfaces: Dict[int, Station] = {}

    def register(self, interface_id: int, station: Station) -> None:
        """Expose a wireless interface to the IP layer."""
        if interface_id in self._interfaces:
            raise ConfigurationError(
                f"interface id {interface_id} already registered"
            )
        self._interfaces[interface_id] = station

    def queue_depth(self, interface_id: int) -> int:
        """The pending-queue depth for ``interface_id``."""
        return self._station(interface_id).queue_depth

    def station(self, interface_id: int) -> Station:
        """The wireless interface behind ``interface_id``."""
        return self._station(interface_id)

    def _station(self, interface_id: int) -> Station:
        try:
            return self._interfaces[interface_id]
        except KeyError:
            raise ConfigurationError(
                f"no wireless interface registered under id {interface_id}"
            ) from None


@dataclass
class IpLocalOutStats:
    """Counters for the IP-layer transmit path."""

    client_datagrams: int = 0
    power_admitted: int = 0
    power_dropped: int = 0


class IpLocalOut:
    """The ``ip_local_out_sk()`` hook with the IP_Power check.

    Every outgoing datagram passes through :meth:`send`. Datagrams carrying
    the IP_Power option are gated on the target interface's queue depth;
    everything else passes untouched (the design never penalises client
    traffic).
    """

    def __init__(
        self,
        shim: PowerMacShim,
        queue_threshold: Optional[int],
        power_rate_mbps: float = 54.0,
    ) -> None:
        if queue_threshold is not None and queue_threshold < 1:
            raise ConfigurationError("queue threshold must be >= 1 or None")
        self.shim = shim
        self.queue_threshold = queue_threshold
        self.power_rate_mbps = power_rate_mbps
        self.stats = IpLocalOutStats()

    def send(self, packet: IPv4Packet) -> int:
        """Transmit ``packet``; returns 0 or an error code (ENOBUFS).

        The check is applied "after the kernel has determined a route and
        therefore an interface for the packet" (§3.2) — here the IP_Power
        option's interface id is that routing decision.
        """
        if not packet.is_power_packet:
            self.stats.client_datagrams += 1
            return 0
        interface_id = packet.power_option.interface_id
        if (
            self.queue_threshold is not None
            and self.shim.queue_depth(interface_id) >= self.queue_threshold
        ):
            self.stats.power_dropped += 1
            return ENOBUFS
        station = self.shim.station(interface_id)
        raw = packet.encode()
        frame = FrameJob(
            mac_bytes=len(raw) + MAC_OVERHEAD_BYTES,
            rate_mbps=self.power_rate_mbps,
            kind=FrameKind.POWER,
            broadcast=True,
            flow="power",
            meta={"interface_id": interface_id},
        )
        station.enqueue(frame)
        self.stats.power_admitted += 1
        return 0


class PowerSocket:
    """Power_Socket: the user-space UDP broadcast socket.

    ``send()`` builds the next 1500-byte IP_Power-marked datagram and hands
    it to the IP layer, surfacing the kernel's verdict like a syscall
    return value would.
    """

    def __init__(
        self,
        ip_local_out: IpLocalOut,
        interface_id: int,
        router_mac: str = "02:00:00:00:00:01",
        ip_datagram_bytes: int = 1500,
    ) -> None:
        self.ip_local_out = ip_local_out
        self.interface_id = interface_id
        self.builder = PowerPacketBuilder(
            interface_id=interface_id,
            router_mac=MacAddress.from_string(router_mac),
            ip_datagram_bytes=ip_datagram_bytes,
        )
        self.sent = 0
        self.rejected = 0

    def send(self) -> int:
        """Send one power datagram; returns the kernel's error code (0=ok)."""
        code = self.ip_local_out.send(self.builder.build_ip_datagram())
        if code == 0:
            self.sent += 1
        else:
            self.rejected += 1
        return code


class UserSpaceInjector:
    """The §3.2 user-space program, running the full byte path.

    Equivalent to :class:`repro.core.injector.PowerInjector` but every
    datagram is built, serialised and gated through the byte-level
    Power_Socket → ip_local_out → Power_MACshim pipeline. Used by the
    fidelity tests; the descriptor-based injector remains the fast path.
    """

    def __init__(
        self,
        sim: Simulator,
        socket: PowerSocket,
        config: InjectorConfig,
    ) -> None:
        self.sim = sim
        self.socket = socket
        self.config = config
        self._timer: Optional[Event] = None
        self._running = False

    def start(self) -> None:
        """Start the send loop."""
        if self._running:
            return
        self._running = True
        self._timer = self.sim.schedule(0.0, self._tick, name="byte_inject")

    def stop(self) -> None:
        """Stop the loop."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        self.socket.send()
        self._timer = self.sim.schedule(
            self.config.effective_period_s, self._tick, name="byte_inject"
        )
