"""Occupancy-cap extension (§4/§6 future feature, implemented here).

The paper observes that cumulative occupancy above 100 % buys nothing for
harvesting and notes "one can implement simple algorithms that would scale
back the transmission rate for power packets to ensure that the cumulative
occupancy remains less than 100 %. We do not currently implement this
feature." This module implements it: a feedback controller samples the
router's cumulative occupancy and multiplicatively adjusts every injector's
inter-packet delay to hold the cumulative occupancy at a target.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.router import PoWiFiRouter
from repro.errors import ConfigurationError
from repro.sim.engine import Event, Simulator


class OccupancyCap:
    """Feedback controller holding cumulative occupancy at a target.

    Parameters
    ----------
    sim, router:
        Kernel and the router whose injectors are steered.
    target:
        Desired cumulative occupancy (e.g. 0.98 for "just under 100 %").
    sample_interval_s:
        Control period; each tick measures the last interval's cumulative
        occupancy and nudges the injector delays.
    gain:
        Multiplicative step per tick; larger reacts faster but oscillates.
    min_delay_s, max_delay_s:
        Clamp on the steered inter-packet delay.
    """

    def __init__(
        self,
        sim: Simulator,
        router: PoWiFiRouter,
        target: float = 0.98,
        sample_interval_s: float = 1.0,
        gain: float = 0.5,
        min_delay_s: float = 20e-6,
        max_delay_s: float = 20e-3,
    ) -> None:
        if not (0.0 < target):
            raise ConfigurationError(f"target must be > 0, got {target}")
        if sample_interval_s <= 0:
            raise ConfigurationError("sample interval must be > 0")
        if not router.injectors:
            raise ConfigurationError("router has no injectors to steer")
        if min_delay_s <= 0 or max_delay_s <= min_delay_s:
            raise ConfigurationError("need 0 < min_delay_s < max_delay_s")
        self.sim = sim
        self.router = router
        self.target = target
        self.sample_interval_s = sample_interval_s
        self.gain = gain
        self.min_delay_s = min_delay_s
        self.max_delay_s = max_delay_s
        self.history: List[float] = []
        self._timer: Optional[Event] = None
        self._window_start = sim.now
        self._running = False

    def start(self) -> None:
        """Begin the control loop."""
        if self._running:
            return
        self._running = True
        self._window_start = self.sim.now
        self._timer = self.sim.schedule(
            self.sample_interval_s, self._tick, name="occupancy_cap"
        )

    def stop(self) -> None:
        """Stop steering (injector delays keep their last value)."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        measured = self.router.cumulative_occupancy(self._window_start, now)
        self.history.append(measured)
        self._window_start = now
        # Multiplicative-increase / multiplicative-decrease on the delay:
        # occupancy too high -> slow the injectors down, and vice versa.
        error = measured - self.target
        factor = 1.0 + self.gain * error
        factor = min(max(factor, 0.5), 2.0)
        for injector in self.router.injectors.values():
            new_delay = injector.config.effective_period_s * factor
            new_delay = min(max(new_delay, self.min_delay_s), self.max_delay_s)
            injector.set_inter_packet_delay(new_delay)
        self._timer = self.sim.schedule(
            self.sample_interval_s, self._tick, name="occupancy_cap"
        )
