"""Multiple PoWiFi routers in range of each other (§8(c)).

The paper argues that co-located PoWiFi routers need not time-multiplex
their power traffic: power packets are broadcast and never decoded, so
collisions between them are harmless — each router keeps transmitting and
the cumulative occupancy at every harvester stays high. This module stands
up N routers on shared media so that claim can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import Scheme
from repro.core.occupancy import OccupancyAnalyzer
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.errors import ConfigurationError
from repro.mac80211.medium import Medium
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@dataclass
class MultiRouterResult:
    """Measured occupancies of a multi-router deployment."""

    #: Per-router cumulative occupancy (their own transmissions only).
    per_router_cumulative: Dict[str, float]
    #: Occupancy of *all* power transmissions per channel — what a harvester
    #: actually experiences (it cannot tell routers apart).
    aggregate_by_channel: Dict[int, float]
    #: Fraction of power frames that collided with another router's frames.
    collision_fraction: float

    @property
    def aggregate_cumulative(self) -> float:
        """Summed aggregate occupancy across channels."""
        return sum(self.aggregate_by_channel.values())


class MultiRouterDeployment:
    """N PoWiFi routers sharing the channels 1/6/11 media.

    Parameters
    ----------
    sim, streams:
        Kernel and randomness.
    router_count:
        How many co-located routers to stand up.
    channels:
        Channels every router injects on.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        router_count: int = 2,
        channels: Tuple[int, ...] = (1, 6, 11),
    ) -> None:
        if router_count < 1:
            raise ConfigurationError(f"need >= 1 router, got {router_count}")
        self.sim = sim
        self.media: Dict[int, Medium] = {
            ch: Medium(sim, channel=ch) for ch in channels
        }
        self.routers: List[PoWiFiRouter] = []
        for i in range(router_count):
            config = RouterConfig(
                scheme=Scheme.POWIFI, channels=channels, client_channel=channels[0]
            )
            self.routers.append(
                PoWiFiRouter(sim, self.media, streams, config, name=f"router{i}")
            )
        # Aggregate analyzers see every transmitter (station_filter=None).
        self.aggregate_analyzers: Dict[int, OccupancyAnalyzer] = {
            ch: OccupancyAnalyzer(self.media[ch]) for ch in channels
        }

    def run(self, duration_s: float) -> MultiRouterResult:
        """Run all routers concurrently and measure."""
        for router in self.routers:
            router.start()
        self.sim.run(until=duration_s)
        per_router = {
            router.name: router.cumulative_occupancy() for router in self.routers
        }
        aggregate = {
            ch: analyzer.occupancy()
            for ch, analyzer in self.aggregate_analyzers.items()
        }
        sent = 0
        collided = 0
        for router in self.routers:
            for injector in router.injectors.values():
                sent += injector.sent
                collided += injector.collided
        return MultiRouterResult(
            per_router_cumulative=per_router,
            aggregate_by_channel=aggregate,
            collision_fraction=(collided / sent if sent else 0.0),
        )
