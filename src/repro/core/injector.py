"""The user-space power-packet injector.

One :class:`PowerInjector` runs per wireless interface (§4: three Atheros
chipsets independently run the algorithm on channels 1, 6 and 11). It loops:
build a 1500-byte UDP broadcast datagram carrying the ``IP_Power`` option,
hand it to the IP layer, and sleep for the configured inter-packet delay.
The IP layer (:class:`repro.core.ip_power.IpPowerGate`) may bounce the send
with an error code when the interface queue is full enough already; the
injector just keeps its cadence.

Idle-tick fast-forward
----------------------
The tick cadence (~10 µs of sim time) makes ``power_inject`` by far the
hottest event kind in router-scale runs, yet most ticks are *no-ops on the
simulation*: the gate bounces them (queue at threshold) or, with the gate
disabled, the interface queue tail-drops them. Both outcomes touch only
counters and the depth histogram — they schedule nothing and perturb no
random stream. When a tick ends in one of those states the injector goes
**dormant**: it cancels its timer and instead *watches* the station's queue
depth (``DeviceQueue.on_change`` + ``Station.on_depth_change``). The moment
a tick could behave differently — depth falls below the threshold, the
saturated class gains room, a stall/overflow fault opens, the pacing is
retuned, or the loop stops — it settles every skipped tick in closed form
and resumes live ticking at the exact time the next tick would have fired.

Settlement is byte-exact, not approximate: tick times follow the same
``t += period`` float recurrence the live loop produces, counters advance by
the same amounts, the depth-at-check histogram replays per-depth segments
via :meth:`~repro.obs.metrics.Histogram.observe_many` (identical reservoir
state included), frame ids the saturated path would have consumed are
consumed (:func:`repro.mac80211.frames.consume_frame_ids`), and the
every-64th-tick metric sync is replicated boundary-for-boundary. Equal-seed
runs therefore produce byte-identical results and metric exports with the
fast-forward on. Fast-forward is bypassed whenever its preconditions fail:
a trace subscription wants per-tick records (``core.gate_drop`` /
``mac.drop``), an ``on_event`` debug hook is installed, a stall window is
open, or a forced-overflow fault window is active (see
``docs/performance.md``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import InjectorConfig
from repro.core.ip_power import IpPowerGate
from repro.mac80211.frames import FrameJob, FrameKind, consume_frame_ids
from repro.mac80211.station import Station
from repro.sim.engine import Event, Simulator

#: Consecutive no-op ticks before the injector goes dormant. Entering and
#: leaving dormancy costs roughly this many live ticks of bookkeeping, so
#: short idle runs are cheaper to tick through live.
IDLE_STREAK_BEFORE_SLEEP = 4

#: A settled spell at least this many ticks long marks the workload as
#: steadily saturated: the next dormancy engages after a single idle tick
#: instead of waiting out the full hysteresis streak. Purely a performance
#: policy — dormancy is invisible, so any streak choice yields identical
#: results; the adaptation only avoids re-paying the streak on every drain
#: cycle of a long saturated phase.
LONG_SPELL_TICKS = 8


class _Dormancy:
    """Bookkeeping for one fast-forward window.

    ``breaks`` is the queue-depth breakpoint list: ``(time, depth)`` pairs
    recorded by the depth watcher, where ``depth`` holds from ``time`` until
    the next entry. Settlement walks virtual ticks against it so the depth
    histogram sees exactly what per-tick gate checks would have seen.
    """

    __slots__ = ("mode", "next_tick", "period", "breaks", "sat_class")

    def __init__(
        self,
        mode: str,
        next_tick: float,
        period: float,
        breaks: List[Tuple[float, int]],
        sat_class: Optional[str],
    ) -> None:
        self.mode = mode  # "gated" (threshold bounce) | "saturated" (tail drop)
        self.next_tick = next_tick
        self.period = period
        self.breaks = breaks
        self.sat_class = sat_class


class PowerInjector:
    """Paced injection of power frames onto one wireless interface.

    Parameters
    ----------
    sim:
        Simulation kernel.
    station:
        The wireless interface (one per channel).
    config:
        Injector tuning — delay, threshold, rate, datagram size.
    interface_id:
        Identifier baked into the IP_Power option for this interface.
    """

    def __init__(
        self,
        sim: Simulator,
        station: Station,
        config: InjectorConfig,
        interface_id: int = 0,
    ) -> None:
        self.sim = sim
        self.station = station
        self.config = config
        self.interface_id = interface_id
        #: Shared by every frame this injector builds: ``meta`` is read-only
        #: downstream (captures and reporters only ``.get`` from it), and one
        #: dict allocation per tick is measurable at millions of ticks.
        self._frame_meta = {"interface_id": interface_id}
        self.gate = IpPowerGate(station, config.queue_threshold)
        self._sent = 0
        self._dropped_by_gate = 0
        self._collided = 0
        self._ticks = 0
        self.stalled_ticks = 0
        self._stalled_until = 0.0
        self._timer: Optional[Event] = None
        self._running = False
        self._synced_ticks = 0
        self._synced_gated = 0
        self._dormant: Optional[_Dormancy] = None
        self._idle_streak = 0
        self._spell_ticks = 0
        self._last_spell_ticks = 0
        metrics = sim.metrics
        self._obs_on = metrics.enabled
        self._m_ticks = metrics.counter("core.injector.ticks", interface=station.name)
        self._m_admitted = metrics.counter(
            "core.injector.admitted", interface=station.name
        )
        self._m_gated = metrics.counter("core.injector.gated", interface=station.name)
        self._m_sent = metrics.counter("core.injector.sent", interface=station.name)
        self._m_collided = metrics.counter(
            "core.injector.collided", interface=station.name
        )
        self._m_duty_cycle = metrics.gauge(
            "core.injector.duty_cycle", interface=station.name
        )
        self._m_stalls = metrics.counter("core.injector.stalls", interface=station.name)
        # A dormant injector has no event on the heap: settle skipped ticks
        # whenever the kernel hands control back so post-run reads (drivers,
        # metric exporters) always see fully materialised state.
        sim.add_run_end_hook(self._settle_at_rest)

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Start the injection loop."""
        if self._running:
            return
        self._running = True
        self._timer = self.sim.schedule_periodic(
            self.config.effective_period_s, self._tick, name="power_inject"
        )

    def stop(self) -> None:
        """Stop the loop (queued power frames still drain)."""
        self._running = False
        if self._dormant is not None:
            self._settle(self.sim.now, inclusive=not self.sim._running)
            self._unwatch()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._sync_metrics()

    @property
    def running(self) -> bool:
        """True while the injection loop is active."""
        return self._running

    def stall_for(self, duration_s: float) -> None:
        """Freeze injection for ``duration_s`` sim seconds from now.

        The fault hook behind ``world.injector.stall`` (§7: the user-space
        injector loses its cadence when the router CPU is saturated).
        Stalled ticks keep the timer alive but neither consult the gate
        nor enqueue — they are tallied separately in :attr:`stalled_ticks`
        so the duty-cycle accounting is untouched. A dormant injector wakes
        first: stalled ticks differ from gated ones, so they must run live.
        """
        if self._dormant is not None:
            self._wake()
        until = self.sim.now + duration_s
        if until > self._stalled_until:
            self._stalled_until = until
        self._m_stalls.inc()

    @property
    def stalled(self) -> bool:
        """True while an injected stall window is open."""
        return self.sim.now < self._stalled_until

    # ------------------------------------------------- settled-state readers

    @property
    def ticks(self) -> int:
        """Injection ticks so far (skipped idle ticks settled on read)."""
        self._settle_now()
        return self._ticks

    @property
    def sent(self) -> int:
        """Power frames that left the MAC (collided broadcasts included)."""
        self._settle_now()
        return self._sent

    @property
    def collided(self) -> int:
        """Power frames whose broadcast collided."""
        self._settle_now()
        return self._collided

    @property
    def dropped_by_gate(self) -> int:
        """Ticks the IP_Power gate bounced."""
        self._settle_now()
        return self._dropped_by_gate

    @property
    def duty_cycle(self) -> float:
        """Fraction of injection ticks the IP_Power gate admitted."""
        self._settle_now()
        if self._ticks == 0:
            return 0.0
        return (self._ticks - self._dropped_by_gate) / self._ticks

    # ----------------------------------------------------------------- loop

    def _sync_metrics(self) -> None:
        """Flush tick/gate tallies to the registry.

        The injection loop runs every ~10 us of sim time, so per-tick
        instrument updates would dominate instrumentation cost; tallies are
        kept in plain attributes and flushed every 64th tick (and on stop).
        """
        if self._ticks == self._synced_ticks:
            return
        admitted = self._ticks - self._dropped_by_gate
        synced_admitted = self._synced_ticks - self._synced_gated
        self._m_ticks.inc(self._ticks - self._synced_ticks)
        self._m_admitted.inc(admitted - synced_admitted)
        self._m_gated.inc(self._dropped_by_gate - self._synced_gated)
        # The admitted fraction of injection ticks — the injector's duty
        # cycle, which the §3.2 feedback loop keeps just high enough to
        # saturate the channel without starving clients.
        self._m_duty_cycle.set(admitted / self._ticks)
        self._synced_ticks = self._ticks
        self._synced_gated = self._dropped_by_gate

    def _tick(self) -> None:
        if not self._running:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        sim = self.sim
        if sim._now < self._stalled_until:
            self.stalled_ticks += 1
            return  # the periodic timer keeps the cadence
        self._ticks += 1
        dormant_mode = None
        sat_class = None
        station = self.station
        if self.gate.admit():
            config = self.config
            frame = FrameJob(
                mac_bytes=config.mac_frame_bytes,
                rate_mbps=config.rate_mbps,
                kind=FrameKind.POWER,
                broadcast=True,
                flow="power",
                on_complete=self._on_complete,
                meta=self._frame_meta,
            )
            if not station.enqueue(frame):
                queue = station.queue
                if (
                    self.gate.queue_threshold is None
                    and not queue.forced_overflow
                    and not sim.trace.wants("mac.drop")
                ):
                    dormant_mode = "saturated"
                    sat_class = queue.classifier(frame)
        else:
            self._dropped_by_gate += 1
            if not sim.trace.wants("core.gate_drop"):
                dormant_mode = "gated"
        if not self._ticks & 63:
            self._sync_metrics()
        if dormant_mode is None:
            self._idle_streak = 0
            return
        # Hysteresis: only go dormant after a run of idle ticks. Sleep/wake
        # bookkeeping costs a few live ticks' worth of work, so it pays off
        # for the long idle stretches of a saturated channel but would slow
        # down workloads whose queue depth oscillates around the threshold
        # every few ticks (TCP sawtooth) — those stay live. Once a spell
        # proves long (LONG_SPELL_TICKS), drain cycles of the same phase
        # re-enter dormancy after a single idle tick.
        self._idle_streak += 1
        needed = (
            1 if self._last_spell_ticks >= LONG_SPELL_TICKS
            else IDLE_STREAK_BEFORE_SLEEP
        )
        if (
            self._idle_streak >= needed
            and sim.on_event is None
            and sim._now >= self._stalled_until
        ):
            self._idle_streak = 0
            self._sleep(dormant_mode, sat_class)

    def _on_complete(self, frame: FrameJob, success: bool, time: float) -> None:
        self._sent += 1
        self._m_sent.inc()
        if not success:
            # A collided broadcast still delivered RF energy; we only count
            # it for §8c-style coexistence statistics.
            self._collided += 1
            self._m_collided.inc()

    # ----------------------------------------------------------- fast-forward

    def _sleep(self, mode: str, sat_class: Optional[str]) -> None:
        """Enter dormancy: cancel the timer, watch depth instead of ticking."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        station = self.station
        period = self.config.effective_period_s
        self._dormant = _Dormancy(
            mode=mode,
            next_tick=self.sim.now + period,
            period=period,
            breaks=[(self.sim.now, station.queue_depth)],
            sat_class=sat_class,
        )
        station.queue.on_change = self._depth_event
        station.on_depth_change = self._depth_event
        self._spell_ticks = 0

    def _unwatch(self) -> None:
        self._dormant = None
        self.station.queue.on_change = None
        self.station.on_depth_change = None

    def _depth_event(self) -> None:
        """Queue/in-flight state moved while dormant: record, maybe wake."""
        dormancy = self._dormant
        if dormancy is None:  # pragma: no cover - stale hook, defensive
            return
        station = self.station
        queue = station.queue
        # station.queue_depth, inlined: this watcher runs on every queue
        # change of a dormant interface, which tracks the MAC event rate.
        depth = queue._size + (1 if station._in_flight is not None else 0)
        breaks = dormancy.breaks
        if depth != breaks[-1][1]:
            breaks.append((self.sim._now, depth))
        if dormancy.mode == "gated":
            if depth < self.gate.queue_threshold:
                self._wake()
        elif (
            queue.forced_overflow
            or queue.depth_of(dormancy.sat_class) < queue.capacity
        ):
            self._wake()

    def _wake(self) -> None:
        """Settle skipped ticks and resume live ticking at the next slot."""
        dormancy = self._dormant
        if dormancy is None:
            return
        self._settle(self.sim.now, inclusive=False)
        self._last_spell_ticks = self._spell_ticks
        next_tick = dormancy.next_tick
        self._unwatch()
        if not self._running:
            return
        timer = self.sim.schedule_at(next_tick, self._tick, name="power_inject")
        timer.period = self.config.effective_period_s
        self._timer = timer

    def _settle_now(self) -> None:
        if self._dormant is not None:
            self._settle(self.sim.now, inclusive=not self.sim._running)

    def _settle_at_rest(self) -> None:
        """Run-end hook: materialise skipped ticks up to the final clock."""
        if self._dormant is not None:
            self._settle(self.sim.now, inclusive=True)

    def _settle(self, upto: float, inclusive: bool) -> None:
        """Apply every virtual tick at time < ``upto`` (≤ when inclusive).

        Exactly replicates what the live ticks would have done: the same
        ``t += period`` time recurrence, the same per-tick depth histogram
        observations (grouped per depth segment via ``observe_many``), the
        same counter totals, frame-id consumption (saturated mode) and
        64-tick metric syncs. The injector stays dormant afterwards; waking
        is :meth:`_wake`'s job.
        """
        dormancy = self._dormant
        tick_time = dormancy.next_tick
        if not (tick_time <= upto if inclusive else tick_time < upto):
            return
        period = dormancy.period
        breaks = dormancy.breaks
        n_breaks = len(breaks)
        observe_many = self.gate._m_depth_at_check.observe_many
        index = 0
        seg_depth = breaks[0][1]
        seg_count = 0
        total = 0
        while tick_time <= upto if inclusive else tick_time < upto:
            while index + 1 < n_breaks and breaks[index + 1][0] <= tick_time:
                index += 1
            depth = breaks[index][1]
            if depth != seg_depth:
                if seg_count:
                    observe_many(seg_depth, seg_count)
                seg_depth = depth
                seg_count = 1
            else:
                seg_count += 1
            total += 1
            tick_time += period
        if seg_count:
            observe_many(seg_depth, seg_count)
        dormancy.next_tick = tick_time
        if index:
            del breaks[:index]
        if not total:
            return
        self._spell_ticks += total
        prev_ticks = self._ticks
        self._ticks += total
        gate = self.gate
        gate.stats.considered += total
        gate._m_considered.inc(total)
        if dormancy.mode == "gated":
            self._dropped_by_gate += total
            gate.stats.dropped += total
            gate._m_dropped.inc(total)
        else:
            gate.stats.admitted += total
            gate._m_admitted.inc(total)
            consume_frame_ids(total)
            queue = self.station.queue
            queue.total_tail_dropped += total
            queue._m_dropped.inc(total)
            station = self.station
            station.frames_dropped += total
            station._m_dropped.inc(total)
            self._sent += total
            self._m_sent.inc(total)
            self._collided += total
            self._m_collided.inc(total)
        # Replicate the every-64th-tick syncs the live loop would have run.
        boundaries = (self._ticks >> 6) - (prev_ticks >> 6)
        if boundaries:
            boundary_ticks = (self._ticks >> 6) << 6
            if dormancy.mode == "gated":
                boundary_gated = self._dropped_by_gate - (self._ticks - boundary_ticks)
            else:
                boundary_gated = self._dropped_by_gate
            boundary_admitted = boundary_ticks - boundary_gated
            self._m_ticks.inc(boundary_ticks - self._synced_ticks)
            self._m_admitted.inc(
                boundary_admitted - (self._synced_ticks - self._synced_gated)
            )
            self._m_gated.inc(boundary_gated - self._synced_gated)
            if boundaries > 1 and self._obs_on:
                # Intermediate boundary syncs each counted one gauge update;
                # only the last value survives, exactly as live.
                self._m_duty_cycle.updates += boundaries - 1
            self._m_duty_cycle.set(boundary_admitted / boundary_ticks)
            self._synced_ticks = boundary_ticks
            self._synced_gated = boundary_gated

    # --------------------------------------------------------------- tuning

    def set_inter_packet_delay(self, delay_s: float) -> None:
        """Retune the pacing (used by the occupancy-cap extension)."""
        if self._dormant is not None:
            # Settle under the old cadence; the already-committed next tick
            # keeps its old-period time, exactly like the live loop where
            # the next tick was scheduled before the retune.
            self._wake()
        self.config = InjectorConfig(
            inter_packet_delay_s=delay_s,
            queue_threshold=self.config.queue_threshold,
            rate_mbps=self.config.rate_mbps,
            ip_datagram_bytes=self.config.ip_datagram_bytes,
            syscall_overhead_s=self.config.syscall_overhead_s,
        )
        if self._timer is not None:
            self._timer.period = self.config.effective_period_s
