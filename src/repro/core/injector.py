"""The user-space power-packet injector.

One :class:`PowerInjector` runs per wireless interface (§4: three Atheros
chipsets independently run the algorithm on channels 1, 6 and 11). It loops:
build a 1500-byte UDP broadcast datagram carrying the ``IP_Power`` option,
hand it to the IP layer, and sleep for the configured inter-packet delay.
The IP layer (:class:`repro.core.ip_power.IpPowerGate`) may bounce the send
with an error code when the interface queue is full enough already; the
injector just keeps its cadence.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import InjectorConfig
from repro.core.ip_power import IpPowerGate
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.station import Station
from repro.sim.engine import Event, Simulator


class PowerInjector:
    """Paced injection of power frames onto one wireless interface.

    Parameters
    ----------
    sim:
        Simulation kernel.
    station:
        The wireless interface (one per channel).
    config:
        Injector tuning — delay, threshold, rate, datagram size.
    interface_id:
        Identifier baked into the IP_Power option for this interface.
    """

    def __init__(
        self,
        sim: Simulator,
        station: Station,
        config: InjectorConfig,
        interface_id: int = 0,
    ) -> None:
        self.sim = sim
        self.station = station
        self.config = config
        self.interface_id = interface_id
        self.gate = IpPowerGate(station, config.queue_threshold)
        self.sent = 0
        self.dropped_by_gate = 0
        self.collided = 0
        self.ticks = 0
        self.stalled_ticks = 0
        self._stalled_until = 0.0
        self._timer: Optional[Event] = None
        self._running = False
        self._synced_ticks = 0
        self._synced_gated = 0
        metrics = sim.metrics
        self._m_ticks = metrics.counter("core.injector.ticks", interface=station.name)
        self._m_admitted = metrics.counter(
            "core.injector.admitted", interface=station.name
        )
        self._m_gated = metrics.counter("core.injector.gated", interface=station.name)
        self._m_sent = metrics.counter("core.injector.sent", interface=station.name)
        self._m_collided = metrics.counter(
            "core.injector.collided", interface=station.name
        )
        self._m_duty_cycle = metrics.gauge(
            "core.injector.duty_cycle", interface=station.name
        )
        self._m_stalls = metrics.counter("core.injector.stalls", interface=station.name)

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Start the injection loop."""
        if self._running:
            return
        self._running = True
        self._timer = self.sim.schedule(0.0, self._tick, name="power_inject")

    def stop(self) -> None:
        """Stop the loop (queued power frames still drain)."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._sync_metrics()

    @property
    def running(self) -> bool:
        """True while the injection loop is active."""
        return self._running

    def stall_for(self, duration_s: float) -> None:
        """Freeze injection for ``duration_s`` sim seconds from now.

        The fault hook behind ``world.injector.stall`` (§7: the user-space
        injector loses its cadence when the router CPU is saturated).
        Stalled ticks keep the timer alive but neither consult the gate
        nor enqueue — they are tallied separately in :attr:`stalled_ticks`
        so the duty-cycle accounting is untouched.
        """
        until = self.sim.now + duration_s
        if until > self._stalled_until:
            self._stalled_until = until
        self._m_stalls.inc()

    @property
    def stalled(self) -> bool:
        """True while an injected stall window is open."""
        return self.sim.now < self._stalled_until

    @property
    def duty_cycle(self) -> float:
        """Fraction of injection ticks the IP_Power gate admitted."""
        if self.ticks == 0:
            return 0.0
        return (self.ticks - self.dropped_by_gate) / self.ticks

    # ----------------------------------------------------------------- loop

    def _sync_metrics(self) -> None:
        """Flush tick/gate tallies to the registry.

        The injection loop runs every ~10 us of sim time, so per-tick
        instrument updates would dominate instrumentation cost; tallies are
        kept in plain attributes and flushed every 64th tick (and on stop).
        """
        if self.ticks == self._synced_ticks:
            return
        admitted = self.ticks - self.dropped_by_gate
        synced_admitted = self._synced_ticks - self._synced_gated
        self._m_ticks.inc(self.ticks - self._synced_ticks)
        self._m_admitted.inc(admitted - synced_admitted)
        self._m_gated.inc(self.dropped_by_gate - self._synced_gated)
        # The admitted fraction of injection ticks — the injector's duty
        # cycle, which the §3.2 feedback loop keeps just high enough to
        # saturate the channel without starving clients.
        self._m_duty_cycle.set(admitted / self.ticks)
        self._synced_ticks = self.ticks
        self._synced_gated = self.dropped_by_gate

    def _tick(self) -> None:
        if not self._running:
            return
        if self.stalled:
            self.stalled_ticks += 1
            self._timer = self.sim.schedule(
                self.config.effective_period_s, self._tick, name="power_inject"
            )
            return
        self.ticks += 1
        if self.gate.admit():
            frame = FrameJob(
                mac_bytes=self.config.mac_frame_bytes,
                rate_mbps=self.config.rate_mbps,
                kind=FrameKind.POWER,
                broadcast=True,
                flow="power",
                on_complete=self._on_complete,
                meta={"interface_id": self.interface_id},
            )
            self.station.enqueue(frame)
        else:
            self.dropped_by_gate += 1
        if not self.ticks & 63:
            self._sync_metrics()
        self._timer = self.sim.schedule(
            self.config.effective_period_s, self._tick, name="power_inject"
        )

    def _on_complete(self, frame: FrameJob, success: bool, time: float) -> None:
        self.sent += 1
        self._m_sent.inc()
        if not success:
            # A collided broadcast still delivered RF energy; we only count
            # it for §8c-style coexistence statistics.
            self.collided += 1
            self._m_collided.inc()

    # --------------------------------------------------------------- tuning

    def set_inter_packet_delay(self, delay_s: float) -> None:
        """Retune the pacing (used by the occupancy-cap extension)."""
        self.config = InjectorConfig(
            inter_packet_delay_s=delay_s,
            queue_threshold=self.config.queue_threshold,
            rate_mbps=self.config.rate_mbps,
            ip_datagram_bytes=self.config.ip_datagram_bytes,
            syscall_overhead_s=self.config.syscall_overhead_s,
        )
