"""Power denial-of-service (§8(d)) — attack model and a countermeasure.

The paper anticipates a "power denial-of-service" (PDoS) attack: a rogue
device generates signals purely to trip the PoWiFi router's carrier sense,
starving harvesters of the power traffic the router would otherwise send.
This module implements the attack as a saturating jammer station, and a
simple detection countermeasure the paper's discussion invites: an
occupancy watchdog that flags windows where the router's achieved power
occupancy collapses while the medium's busy fraction stays high — the
signature that airtime is being consumed by traffic that carries no data
for anyone (or at least none for this BSS).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.sim.engine import Event, Simulator
from repro.sim.rng import RandomStreams


class PdosAttacker:
    """A rogue station saturating the channel to starve harvesters.

    The cheapest effective attack the §8(d) discussion implies: long frames
    at a low bit rate, maximising the airtime each transmission denies the
    router. The attacker is still 802.11-compliant (it carrier-senses), so
    it cannot be distinguished from a legitimately busy neighbour at the
    MAC level — which is exactly why detection must be statistical.

    Parameters
    ----------
    sim, medium, streams:
        Kernel, the channel under attack, randomness.
    frame_bytes, rate_mbps:
        Attack frame shape; defaults maximise airtime per transmission.
    duty:
        Fraction of its transmit opportunities the attacker uses (1.0 is
        full saturation).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        streams: RandomStreams,
        frame_bytes: int = 1536,
        rate_mbps: float = 1.0,
        duty: float = 1.0,
        name: str = "pdos-attacker",
    ) -> None:
        if not (0.0 < duty <= 1.0):
            raise ConfigurationError(f"duty must be in (0, 1], got {duty}")
        self.sim = sim
        self.station = Station(sim, name=name, streams=streams)
        medium.attach(self.station)
        self.frame_bytes = frame_bytes
        self.rate_mbps = rate_mbps
        self.duty = duty
        self.rng = streams.stream(f"pdos:{name}")
        self.frames_sent = 0
        self._running = False

    def start(self) -> None:
        """Begin the attack (keeps the queue topped up)."""
        if self._running:
            return
        self._running = True
        self._refill()

    def stop(self) -> None:
        """Cease fire (queued frames drain)."""
        self._running = False

    def _refill(self) -> None:
        if not self._running:
            return
        if self.rng.random() <= self.duty:
            frame = FrameJob(
                mac_bytes=self.frame_bytes,
                rate_mbps=self.rate_mbps,
                kind=FrameKind.BACKGROUND,
                broadcast=True,
                flow="pdos",
                on_complete=self._sent,
            )
            self.station.enqueue(frame)
        else:
            # Skip this opportunity; check back shortly.
            self.sim.schedule(1e-3, self._refill, name="pdos_idle")

    def _sent(self, frame: FrameJob, success: bool, time: float) -> None:
        self.frames_sent += 1
        self._refill()


@dataclass
class PdosAlert:
    """One watchdog detection."""

    time_s: float
    power_occupancy: float
    medium_busy_fraction: float


class PdosWatchdog:
    """Statistical PDoS detector at the router.

    Every ``window_s`` it compares the router's achieved power occupancy on
    a channel against the medium's physical busy fraction. Legitimate load
    consumes airtime *and* leaves the ratio in a normal band; a PDoS jammer
    pushes the medium busy while the router's share collapses. When the
    share drops below ``share_threshold`` of the busy airtime for
    ``consecutive_windows`` windows, an alert fires — the hook a defending
    router would use to e.g. switch its power traffic to another channel.

    Parameters
    ----------
    sim, medium:
        Kernel and the monitored channel.
    occupancy_of_router:
        Callable returning the router's power occupancy over a window
        (typically ``analyzer.occupancy(start, end)``).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        occupancy_of_router,
        window_s: float = 1.0,
        share_threshold: float = 0.25,
        consecutive_windows: int = 2,
    ) -> None:
        if window_s <= 0:
            raise ConfigurationError("window must be > 0")
        if not (0.0 < share_threshold < 1.0):
            raise ConfigurationError("share threshold must be in (0, 1)")
        if consecutive_windows < 1:
            raise ConfigurationError("need >= 1 consecutive window")
        self.sim = sim
        self.medium = medium
        self.occupancy_of_router = occupancy_of_router
        self.window_s = window_s
        self.share_threshold = share_threshold
        self.consecutive_windows = consecutive_windows
        self.alerts: List[PdosAlert] = []
        self._suspicious_streak = 0
        self._window_start = sim.now
        self._busy_at_window_start = medium.total_busy_time
        self._timer: Optional[Event] = None
        self._running = False

    @property
    def under_attack(self) -> bool:
        """True when the detector currently flags a PDoS condition."""
        return self._suspicious_streak >= self.consecutive_windows

    def start(self) -> None:
        """Arm the watchdog."""
        if self._running:
            return
        self._running = True
        self._window_start = self.sim.now
        self._busy_at_window_start = self.medium.total_busy_time
        self._timer = self.sim.schedule(self.window_s, self._tick, name="pdos_watchdog")

    def stop(self) -> None:
        """Disarm."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        elapsed = now - self._window_start
        busy = (self.medium.total_busy_time - self._busy_at_window_start) / elapsed
        power = self.occupancy_of_router(self._window_start, now)
        self._window_start = now
        self._busy_at_window_start = self.medium.total_busy_time
        # Suspicious: the air is busy but the router's share has collapsed.
        if busy > 0.5 and power < self.share_threshold * busy:
            self._suspicious_streak += 1
            if self._suspicious_streak >= self.consecutive_windows:
                self.alerts.append(
                    PdosAlert(
                        time_s=now,
                        power_occupancy=power,
                        medium_busy_fraction=busy,
                    )
                )
        else:
            self._suspicious_streak = 0
        self._timer = self.sim.schedule(self.window_s, self._tick, name="pdos_watchdog")
