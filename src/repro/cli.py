"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list                 # show experiment ids
    python -m repro fig5                 # run one experiment, print a report
    python -m repro fig14 --seed 3
    python -m repro run-all --jobs 4     # every paper artifact, in parallel
    python -m repro run-all --ids fig5,fig14 --no-cache
    python -m repro run-all --retries 2 --task-timeout 60 \
        --fault-plan worker.crash:1,worker.hang:1@20   # chaos drill
    python -m repro run-all --live       # stream run_live.jsonl while running
    python -m repro run-all --slo-spec slos/fig7.json --ids fig7
    python -m repro watch                # tail + render a --live event stream
    python -m repro watch --once --json  # one machine-readable snapshot
    python -m repro slo --input run_manifest.json --strict   # SLO gate
    python -m repro slo --spec slos/violation_demo.json
    python -m repro dash --input run_manifest.json --out dash.html
    python -m repro quickstart --duration 2.0
    python -m repro metrics fig07        # run + export metrics JSONL
    python -m repro metrics --input run_metrics.jsonl --top 10 --sort wall
    python -m repro profile fig07 --flame flame.txt   # per-kind attribution
    python -m repro trace fig07 --kinds mac.tx,core.gate_drop
    python -m repro spans fig05          # run + span JSONL + flame-style tree
    python -m repro spans --input run_spans.jsonl
    python -m repro compare old_manifest.json run_manifest.json
    python -m repro fig5 --no-obs        # instrumentation off
    python -m repro lint src/repro       # determinism/unit static analysis

Reports mirror the benchmark outputs; heavy experiments accept reduced
scales through the driver defaults. Experiment ids tolerate zero padding
(``fig07`` == ``fig7``).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError, InjectedFault
from repro.experiments.registry import EXPERIMENTS, get_spec
from repro.obs import runtime as obs_runtime

#: Zero-padded experiment ids (``fig07``) normalise to registry keys
#: (``fig7``); already-canonical ids like ``fig10`` pass through.
_PADDED_ID_RE = re.compile(r"^(fig|sec|table)0+(\d\w*)$")


def normalize_experiment_id(experiment: str) -> str:
    """Map ``fig07``/``fig06a``-style ids onto the registry's ``fig7``/``fig6a``."""
    match = _PADDED_ID_RE.match(experiment.lower())
    if match:
        return match.group(1) + match.group(2)
    return experiment


def _run_driver(experiment: str, seed: int):
    """Run one registered experiment driver, with the seed when accepted.

    Seed routing consults the registry spec instead of catching
    ``TypeError`` (which would also have swallowed genuine signature bugs
    inside a driver).
    """
    spec = get_spec(experiment)
    driver = spec.resolve()
    if spec.accepts_seed():
        return driver(seed=seed)
    return driver()


def _report_fig5(result) -> List[str]:
    lines = ["threshold  " + "  ".join(f"{d:>6.0f}us" for d, _ in next(iter(result.curves.values())))]
    for threshold, curve in sorted(result.curves.items()):
        lines.append(
            f"{threshold:>9}  " + "  ".join(f"{100 * occ:>7.1f}%" for _, occ in curve)
        )
    return lines


def _report_fig14(study) -> List[str]:
    lines = []
    for home in study.homes:
        lines.append(
            f"home {home.profile.index} ({home.profile.neighboring_aps:>2} APs): "
            f"mean cumulative {100 * home.mean_cumulative:6.1f} %"
        )
    low, high = study.mean_cumulative_range
    lines.append(f"range {100 * low:.0f}-{100 * high:.0f} %  (paper: 78-127 %)")
    return lines


def _report_fig1(result) -> List[str]:
    return [
        f"received power: {result.received_power_dbm:6.1f} dBm",
        f"peak voltage:   {1e3 * result.peak_voltage_v:6.1f} mV",
        f"300 mV crossed: {result.crossed_threshold}",
    ]


def _report_fig9(pair) -> List[str]:
    return [
        f"{r.name}: worst in-band return loss {r.worst_in_band_db:6.1f} dB "
        f"(spec < -10 dB: {r.meets_spec})"
        for r in pair
    ]


def _report_fig10(pair) -> List[str]:
    lines = []
    for result in pair:
        lines.append(
            f"{result.name}: sensitivity {result.worst_sensitivity_dbm:6.1f} dBm, "
            f"output at +4 dBm {1e6 * result.output_at(6, 4):6.1f} uW"
        )
    return lines


def _report_fig11(result) -> List[str]:
    return [
        f"battery-free range:       {result.battery_free_range_feet:5.1f} ft",
        f"battery-recharging range: {result.battery_recharging_range_feet:5.1f} ft",
        "reads/s at 10 ft: "
        f"{result.battery_free[10]:.2f} (free) / {result.battery_recharging[10]:.2f} (recharging)",
    ]


def _report_fig12(result) -> List[str]:
    return [
        f"battery-free range:       {result.battery_free_range_feet:5.1f} ft",
        f"battery-recharging range: {result.battery_recharging_range_feet:5.1f} ft",
    ]


def _report_fig13(result) -> List[str]:
    return [
        f"{name:<14} {minutes:6.1f} min/frame"
        for name, minutes in result.inter_frame_minutes.items()
    ]


def _report_fig15(result) -> List[str]:
    return [
        f"home {index}: median {result.median(index):5.2f} reads/s"
        for index in sorted(result.samples_by_home)
    ]


def _report_table1(result) -> List[str]:
    return [result.as_text(), f"matches paper: {result.matches_paper}"]


def _report_fig8(result) -> List[str]:
    lines = []
    for scheme, curve in result.throughput.items():
        rendered = "  ".join(f"{r:g}:{v:.1f}" for r, v in sorted(curve.items()))
        lines.append(f"{scheme.value:<12} {rendered}")
    return lines


def _report_sec8a(result) -> List[str]:
    return [
        f"average current: {result.average_current_ma:5.2f} mA",
        f"charge in 2.5 h: {result.charge_percent_after:5.1f} %",
    ]


def _report_sec8c(study) -> List[str]:
    return [
        f"{count} router(s): aggregate cumulative "
        f"{100 * study.aggregate_cumulative(count):6.1f} %"
        for count in sorted(study.by_count)
    ]


def _report_generic(result) -> List[str]:
    return [repr(result)]


_REPORTERS: Dict[str, Callable] = {
    "fig1": _report_fig1,
    "fig5": _report_fig5,
    "fig8": _report_fig8,
    "fig9": _report_fig9,
    "fig10": _report_fig10,
    "fig11": _report_fig11,
    "fig12": _report_fig12,
    "fig13": _report_fig13,
    "fig14": _report_fig14,
    "fig15": _report_fig15,
    "table1": _report_table1,
    "sec8a": _report_sec8a,
    "sec8c": _report_sec8c,
}


def _cmd_list() -> int:
    print("available experiments:")
    for key in sorted(EXPERIMENTS):
        print(f"  {key:<8} -> {EXPERIMENTS[key]}")
    print("  quickstart (built-in demo)")
    print("  report     (run everything, emit markdown)")
    print("  run-all    (every experiment, parallel + cached; see docs/running.md)")
    print("  profile    (per-kind attribution + flame output; see docs/observability.md)")
    print("  watch      (render a run-all --live event stream)")
    print("  slo        (evaluate SLO specs against a run manifest; CI gate)")
    print("  dash       (render a static HTML observatory for a run)")
    return 0


def _cmd_quickstart(duration: float, seed: int) -> int:
    from repro import quickstart_powifi

    result = quickstart_powifi(duration_s=duration, seed=seed)
    for channel, occupancy in sorted(result.occupancy_by_channel.items()):
        print(f"channel {channel:>2}: {100 * occupancy:5.1f} %")
    print(f"cumulative: {100 * result.cumulative_occupancy:5.1f} %")
    print(f"power frames: {result.power_frames_sent}")
    return 0


def _resolve_experiment(experiment: str) -> Optional[str]:
    """Canonical registry key for ``experiment``, or None with a stderr note."""
    key = normalize_experiment_id(experiment)
    if key not in EXPERIMENTS:
        print(f"unknown experiment {experiment!r}; try 'list'", file=sys.stderr)
        return None
    return key


def _cmd_run_all(argv: List[str], no_obs: bool) -> int:
    """``repro run-all``: regenerate every paper artifact, parallel + cached.

    The full workflow (cache semantics, ``--jobs`` guidance, manifest
    layout) is documented in ``docs/running.md``.
    """
    from repro.obs.history import (
        DEFAULT_HISTORY_DIR,
        append_history,
        build_history_record,
        write_bench_snapshot,
    )
    from repro.runner import DEFAULT_CACHE_DIR, ResultCache, run_all, write_manifest

    parser = argparse.ArgumentParser(
        prog="repro run-all",
        description="Run all (or selected) experiments in parallel with "
        "content-addressed result caching.",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: cpu count; 1 = in-process)",
    )
    parser.add_argument(
        "--ids",
        default=None,
        help="comma-separated experiment ids (default: all 17)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="drop every cache entry before running",
    )
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument(
        "--report",
        default="run_manifest.json",
        help="manifest output path (default: run_manifest.json)",
    )
    parser.add_argument(
        "--span-detail",
        action="store_true",
        help="also record hot-path spans (per-transmission mac80211)",
    )
    parser.add_argument(
        "--history-dir",
        default=DEFAULT_HISTORY_DIR,
        help=f"perf-history directory (default: {DEFAULT_HISTORY_DIR})",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the perf_history.jsonl append and BENCH snapshot",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts per task after a crash/raise/timeout (default: 0)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog limit per task; a hung worker is terminated and the "
        "task retried (default: no timeout; ignored at --jobs 1)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults: a spec string like "
        "'worker.crash:1,worker.hang:1@20' or a .json plan file "
        "(see docs/robustness.md)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for fault target selection (default: --seed)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="stream lifecycle events to run_live.jsonl next to the "
        "manifest ('python -m repro watch' renders them live)",
    )
    parser.add_argument(
        "--slo-spec",
        action="append",
        default=None,
        metavar="PATH",
        help="SLO spec file to evaluate (repeatable; replaces the "
        "registry defaults — see docs/observability.md)",
    )
    parser.add_argument(
        "--no-slo",
        action="store_true",
        help="skip SLO evaluation entirely (no registry defaults)",
    )
    args = parser.parse_args(argv)
    obs_runtime.configure(enabled=not no_obs, span_detail=args.span_detail)

    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults import parse_fault_plan
        from repro.faults import runtime as faults_runtime

        try:
            fault_plan = parse_fault_plan(
                args.fault_plan,
                seed=args.seed if args.fault_seed is None else args.fault_seed,
            )
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        faults_runtime.reset()
        if fault_plan.wants("manifest.interrupt"):
            faults_runtime.arm("manifest.interrupt")
        print(f"fault plan: {fault_plan.describe()} (seed={fault_plan.seed})")

    # SLO specs: None lets run_all load the registry defaults; an explicit
    # --slo-spec list replaces them and must parse (a spec the operator
    # named is configuration, so its failure is an error, unlike absent
    # defaults); --no-slo disables evaluation. Either way the specs never
    # change results or the exit status — 'repro slo' is the gate.
    slo_specs = None
    if args.no_slo:
        slo_specs = []
    elif args.slo_spec:
        from repro.errors import ObservabilityError
        from repro.obs.slo import load_spec

        slo_specs = []
        for spec_path in args.slo_spec:
            try:
                slo_specs.append(load_spec(spec_path))
            except (OSError, ObservabilityError) as exc:
                print(f"run-all: SLO spec {spec_path}: {exc}", file=sys.stderr)
                return 2

    ids = None
    if args.ids is not None:
        ids = [token for token in args.ids.split(",") if token.strip()]
    if args.clear_cache:
        removed = ResultCache(args.cache_dir).clear()
        print(f"cleared {removed} cache entries from {args.cache_dir}")

    live_sink = None
    live_path = None
    if args.live:
        from repro.obs.live import LIVE_FILENAME, LiveSink, expected_walls

        report_dir = os.path.dirname(os.path.abspath(args.report))
        live_path = os.path.join(report_dir, LIVE_FILENAME)
        history_file = os.path.join(
            args.history_dir, "perf_history.jsonl"
        )
        live_sink = LiveSink(live_path, expected_walls=expected_walls(history_file))
        print(f"live: streaming events to {live_path}")
    try:
        result = run_all(
            ids=ids,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            seed=args.seed,
            progress=print,
            retries=args.retries,
            task_timeout_s=args.task_timeout,
            fault_plan=fault_plan,
            live_sink=live_sink,
            slo_specs=slo_specs,
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        manifest = write_manifest(result, args.report)
    except InjectedFault as exc:
        # The manifest.interrupt fault point fired between temp write and
        # rename: the previous manifest (if any) is guaranteed intact.
        # Retrying completes the write — exactly the recovery an operator
        # performs after a mid-write kill.
        print(f"manifest write interrupted ({exc}); retrying", file=sys.stderr)
        manifest = write_manifest(result, args.report)
    if result.interrupted:
        print("run interrupted; manifest records partial results", file=sys.stderr)
    totals = manifest["totals"]
    print(
        f"== run-all == {totals['ok']}/{totals['experiments']} ok, "
        f"{totals['cache_hits']} from cache, wall {totals['wall_s']:.2f}s "
        f"(jobs={result.jobs})"
    )
    print(f"manifest: {args.report}")
    slo_counts = manifest["slo"]["counts"]
    if any(slo_counts.values()):
        print(
            f"slo: {slo_counts['ok']} ok, {slo_counts['violated']} violated, "
            f"{slo_counts['skipped']} skipped "
            f"(advisory here; gate with 'repro slo --input {args.report}')"
        )
    if result.spans_dropped or result.live_dropped:
        print(
            f"dropped telemetry: {result.spans_dropped} span(s), "
            f"{result.live_dropped} live event(s) (see manifest totals)"
        )
    if live_path is not None:
        print(f"live: {live_path}")

    # Sidecar telemetry next to the manifest: the span tree and the
    # parent-process metrics snapshot (worker snapshots are summarised
    # inside the manifest's parts[] entries).
    report_dir = os.path.dirname(os.path.abspath(args.report))
    spans_path = os.path.join(report_dir, "run_spans.jsonl")
    metrics_path = os.path.join(report_dir, "run_metrics.jsonl")
    if not no_obs:
        with open(spans_path, "w", encoding="utf-8") as handle:
            for record in result.spans:
                handle.write(json.dumps(record) + "\n")
        obs_runtime.get_registry().to_jsonl(metrics_path)
        print(f"spans: {spans_path} ({len(result.spans)} records)")
        print(f"metrics: {metrics_path}")

    if not args.no_history:
        record = build_history_record(manifest)
        history_path = append_history(record, args.history_dir)
        bench_path = write_bench_snapshot(record, args.history_dir)
        print(f"history: {history_path} (+1 record), {bench_path}")
    return 0 if result.ok else 1


def _cmd_campaign(argv: List[str], no_obs: bool) -> int:
    """``repro campaign run|status|results``: journaled parameter sweeps.

    Spec schema, journal format and resume/quarantine semantics are
    documented in ``docs/campaigns.md``.
    """
    if not argv or argv[0] not in ("run", "status", "results"):
        print(
            "usage: repro campaign {run|status|results} ... "
            "(see docs/campaigns.md)",
            file=sys.stderr,
        )
        return 2
    verb, rest = argv[0], argv[1:]
    if verb == "run":
        return _cmd_campaign_run(rest, no_obs)
    if verb == "status":
        return _cmd_campaign_status(rest)
    return _cmd_campaign_results(rest)


def _cmd_campaign_run(argv: List[str], no_obs: bool) -> int:
    """``repro campaign run``: execute (or resume) one campaign spec."""
    from repro.campaign import load_campaign_spec, run_campaign
    from repro.campaign.manager import MANIFEST_FILENAME, write_manifest as write_campaign_manifest
    from repro.runner import DEFAULT_CACHE_DIR

    parser = argparse.ArgumentParser(
        prog="repro campaign run",
        description="Expand a campaign spec into content-addressed points "
        "and run them to completion under a crash-safe journal.",
    )
    parser.add_argument(
        "--spec",
        required=True,
        metavar="PATH",
        help="campaign spec JSON (see docs/campaigns.md for the schema)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: cpu count; 1 = in-process)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign master seed (fault selection and retry backoff; "
        "point seeds come from the spec's 'seeds' list)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts per point before quarantine (default: 1)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog limit per point lease; an overdue lease is "
        "reclaimed and the point retried (default: no timeout)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="cadence of journal heartbeats for in-flight leases "
        "(default: 2.0)",
    )
    parser.add_argument(
        "--report",
        default=MANIFEST_FILENAME,
        metavar="PATH",
        help=f"campaign manifest output path (default: {MANIFEST_FILENAME})",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="journal path (default: campaign.jsonl next to --report)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="fold an existing journal and only run missing points "
        "(the default; spelled out for scripts that mean it)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="move any existing journal aside and start generation 1 "
        "(the result cache still applies unless --no-cache)",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults, e.g. "
        "'campaign.point.poison:1,worker.crash:1' (see docs/robustness.md)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="seed for fault target selection (default: --seed)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="stream lifecycle events to run_live.jsonl next to the "
        "manifest ('python -m repro watch' renders them live)",
    )
    args = parser.parse_args(argv)
    obs_runtime.configure(enabled=not no_obs)
    if args.resume and args.fresh:
        print("campaign run: --resume and --fresh conflict", file=sys.stderr)
        return 2

    try:
        spec = load_campaign_spec(args.spec)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    fault_plan = None
    if args.fault_plan is not None:
        from repro.faults import parse_fault_plan
        from repro.faults import runtime as faults_runtime

        try:
            fault_plan = parse_fault_plan(
                args.fault_plan,
                seed=args.seed if args.fault_seed is None else args.fault_seed,
            )
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        faults_runtime.reset()
        print(f"fault plan: {fault_plan.describe()} (seed={fault_plan.seed})")

    report_dir = os.path.dirname(os.path.abspath(args.report))
    journal_path = args.journal or os.path.join(report_dir, "campaign.jsonl")

    live_sink = None
    live_path = None
    if args.live:
        from repro.obs.live import LIVE_FILENAME, LiveSink

        live_path = os.path.join(report_dir, LIVE_FILENAME)
        live_sink = LiveSink(live_path)
        print(f"live: streaming events to {live_path}")

    try:
        result = run_campaign(
            spec,
            jobs=args.jobs,
            seed=args.seed,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            retries=args.retries,
            task_timeout_s=args.task_timeout,
            heartbeat_s=args.heartbeat,
            fault_plan=fault_plan,
            live_sink=live_sink,
            journal_path=journal_path,
            resume=not args.fresh,
            progress=print,
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if result.interrupted:
        print(
            "campaign interrupted; journal preserved — rerun with --resume "
            f"to continue ({journal_path})",
            file=sys.stderr,
        )
        return 130

    write_campaign_manifest(args.report, result.manifest)
    totals = result.manifest["totals"]
    cached = sum(1 for o in result.outcomes if o.cached)
    print(
        f"== campaign {spec.name} == {totals['ok']}/{totals['points']} ok, "
        f"{totals['quarantined']} quarantined, {cached} from cache, "
        f"wall {result.wall_s:.2f}s (generation {result.generations})"
    )
    for outcome in result.quarantined:
        print(
            f"quarantined: {outcome.point.label} "
            f"({outcome.error or 'no further detail'})"
        )
    print(f"manifest: {args.report}")
    print(f"journal: {journal_path}")
    if live_path is not None:
        print(f"live: {live_path}")
    # Quarantined points degrade the campaign, they do not fail it: the
    # sweep completed and reported them, which is the contract.
    return 0


def _cmd_campaign_status(argv: List[str]) -> int:
    """``repro campaign status``: fold the journal into a progress report."""
    from repro.campaign import fold_journal, load_campaign_spec

    parser = argparse.ArgumentParser(
        prog="repro campaign status",
        description="Reconstruct campaign progress from its journal "
        "(read-only; safe while a campaign runs).",
    )
    parser.add_argument(
        "--journal",
        default="campaign.jsonl",
        metavar="PATH",
        help="journal path (default: campaign.jsonl)",
    )
    parser.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="campaign spec, to also report not-yet-started points",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the status as JSON instead of text",
    )
    args = parser.parse_args(argv)
    state = fold_journal(args.journal)
    status: dict = {
        "journal": args.journal,
        "exists": state.exists,
        "corrupt": state.corrupt,
        "torn_tail": state.torn_tail,
        "generations": state.generations,
        "records": state.records,
        "dropped": state.dropped,
        "last_seq": state.last_seq,
        "done": len(state.done),
        "quarantined": len(state.quarantined),
        "in_flight": len(state.leases),
        "finished": state.finished is not None,
    }
    if state.campaign is not None:
        status["campaign"] = state.campaign.get("campaign")
        status["seed"] = state.campaign.get("seed")
    if args.spec:
        try:
            from repro.runner.cache import code_fingerprint

            spec = load_campaign_spec(args.spec)
            points = spec.expand(code_fingerprint())
            terminal = state.terminal_keys()
            status["points"] = len(points)
            status["pending"] = sum(
                1 for point in points if point.key not in terminal
            )
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(status, sort_keys=True))
        return 0
    if not state.exists:
        print(f"campaign status: no journal at {args.journal}")
        return 1
    name = status.get("campaign", "?")
    print(
        f"== campaign {name} == generation {state.generations}, "
        f"{len(state.done)} done, {len(state.quarantined)} quarantined, "
        f"{len(state.leases)} in flight"
        + (f", {status['pending']}/{status['points']} pending" if "pending" in status else "")
    )
    print(
        f"journal: {state.records} record(s), last seq {state.last_seq}, "
        f"{state.dropped} dropped"
        + (", torn tail tolerated" if state.torn_tail else "")
        + (", CORRUPT (will be quarantined on next run)" if state.corrupt else "")
    )
    if state.finished is not None:
        done = state.finished
        print(
            f"finished: ok={done.get('ok', '?')} "
            f"quarantined={done.get('quarantined', '?')} "
            f"wall={done.get('wall_s', '?')}s"
        )
    return 0


def _cmd_campaign_results(argv: List[str]) -> int:
    """``repro campaign results``: flatten a campaign manifest into rows."""
    from repro.campaign import point_rows, render_rows, rows_to_csv
    from repro.campaign.results import load_campaign_manifest

    parser = argparse.ArgumentParser(
        prog="repro campaign results",
        description="Flatten a campaign manifest's per-point results "
        "(axes, domain metrics, SLO verdicts) into row-oriented tables.",
    )
    parser.add_argument(
        "--input",
        default="campaign_manifest.json",
        metavar="PATH",
        help="campaign manifest to read (default: campaign_manifest.json)",
    )
    parser.add_argument(
        "--format",
        choices=("table", "csv", "json"),
        default="table",
        help="output format (default: table)",
    )
    parser.add_argument(
        "--experiment",
        default=None,
        metavar="ID",
        help="only rows for one experiment id",
    )
    args = parser.parse_args(argv)
    try:
        manifest = load_campaign_manifest(args.input)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    rows = point_rows(manifest, experiment=args.experiment)
    if args.format == "json":
        print(json.dumps(rows, sort_keys=True))
    elif args.format == "csv":
        sys.stdout.write(rows_to_csv(rows))
    else:
        print(render_rows(rows))
    return 0


def _cmd_metrics(argv: List[str], no_obs: bool) -> int:
    """``repro metrics``: run + export metrics, or triage an existing export.

    Two modes: ``metrics <experiment>`` runs the driver and writes the
    metrics JSONL; ``metrics --input run_metrics.jsonl`` re-reads a
    previous export's engine records and prints the hottest event kinds —
    quick triage without re-running anything.
    """
    from repro.obs.profile import (
        render_attribution,
        rows_from_engine,
        rows_from_metrics_jsonl,
        sort_rows,
    )

    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Run one experiment and export its metrics as JSONL, "
        "or triage the hot event kinds of an existing export.",
    )
    parser.add_argument(
        "experiment", nargs="?", default=None, help="experiment id (see 'list')"
    )
    parser.add_argument(
        "--input",
        default=None,
        help="triage an existing metrics JSONL instead of running",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--output", default=None, help="JSONL path (default: metrics_<id>.jsonl)"
    )
    parser.add_argument(
        "--top", type=int, default=5, help="hot callbacks to print (0 disables)"
    )
    parser.add_argument(
        "--sort",
        choices=("wall", "count"),
        default="wall",
        help="hot-kind ordering (default: wall)",
    )
    args = parser.parse_args(argv)
    if (args.experiment is None) == (args.input is None):
        print("metrics: give exactly one of <experiment> or --input", file=sys.stderr)
        return 2

    if args.input is not None:
        from repro.errors import ObservabilityError

        try:
            rows = rows_from_metrics_jsonl(args.input)
        except (OSError, ObservabilityError) as exc:
            print(f"metrics: cannot read {args.input}: {exc}", file=sys.stderr)
            return 2
        print(f"== metrics triage: {args.input} ==")
        print(
            render_attribution(
                rows, sort=args.sort, top=args.top if args.top > 0 else None
            )
        )
        return 0

    key = _resolve_experiment(args.experiment)
    if key is None:
        return 2
    obs_runtime.configure(enabled=not no_obs)
    _run_driver(key, args.seed)

    output = args.output or f"metrics_{key}.jsonl"
    engine = obs_runtime.aggregate_engine_stats()
    with open(output, "w", encoding="utf-8") as handle:
        count = obs_runtime.get_registry().to_jsonl(handle)
        handle.write(json.dumps(engine) + "\n")
    print(f"== {key} metrics ==")
    print(f"wrote {count + 1} records to {output}")
    print(
        f"simulators {engine['simulators']}, dispatched {engine['dispatched']}, "
        f"cancelled {engine['cancelled']}, "
        f"heap high-water {engine['heap_high_watermark']}"
    )
    hot = sort_rows(rows_from_engine(engine), sort=args.sort)
    for row in hot[: max(0, args.top)]:
        print(
            f"  {row.kind:<24} {row.count:>9} calls  {row.wall_s:9.4f} s"
        )
    return 0


def _cmd_profile(argv: List[str], no_obs: bool) -> int:
    """``repro profile``: per-kind attribution table + collapsed stacks.

    Either runs one experiment under the ambient profiler or re-reads a v4+
    ``run_manifest.json`` (``--input``) whose parts carry ``engine.profile``
    sections. See ``docs/observability.md`` for the table and the
    collapsed-stack (flamegraph.pl / speedscope) format.
    """
    import time as _time

    from repro.obs.profile import (
        aggregate_rows,
        render_attribution,
        rows_from_engine,
        rows_from_manifest,
        write_flame,
    )

    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Attribute wall-clock and dispatch counts to "
        "(event kind, component, experiment part); optionally emit "
        "collapsed stacks for flamegraph.pl / speedscope.",
    )
    parser.add_argument(
        "experiment", nargs="?", default=None, help="experiment id (see 'list')"
    )
    parser.add_argument(
        "--input",
        default=None,
        help="profile an existing run_manifest.json instead of running",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--top", type=int, default=None, help="kinds to print (default: all)"
    )
    parser.add_argument(
        "--sort",
        choices=("wall", "count"),
        default="wall",
        help="table ordering (default: wall)",
    )
    parser.add_argument(
        "--flame",
        default=None,
        metavar="PATH",
        help="write collapsed-stack output for flamegraph.pl / speedscope",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the attribution rows as JSON"
    )
    args = parser.parse_args(argv)
    if (args.experiment is None) == (args.input is None):
        print("profile: give exactly one of <experiment> or --input", file=sys.stderr)
        return 2

    if args.input is not None:
        try:
            with open(args.input, encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"profile: cannot read {args.input}: {exc}", file=sys.stderr)
            return 2
        rows = rows_from_manifest(manifest)
        total_wall = float(manifest.get("totals", {}).get("wall_s", 0.0)) or None
        title = args.input
    else:
        if no_obs:
            print("profiling requires observability; drop --no-obs", file=sys.stderr)
            return 2
        key = _resolve_experiment(args.experiment)
        if key is None:
            return 2
        obs_runtime.configure(enabled=True)
        started = _time.perf_counter()
        _run_driver(key, args.seed)
        total_wall = _time.perf_counter() - started
        rows = rows_from_engine(
            obs_runtime.aggregate_engine_stats(), experiment=key, part="all"
        )
        title = key

    if not rows:
        print(
            f"profile: no attribution data in {title} "
            "(cache-only, --no-obs, or pre-v4 manifest)",
            file=sys.stderr,
        )
        return 2
    if args.json:
        print(
            json.dumps(
                [row.to_record() for row in aggregate_rows(rows, by_part=True)],
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(f"== profile: {title} ==")
        print(
            render_attribution(
                aggregate_rows(rows),
                total_wall_s=total_wall,
                sort=args.sort,
                top=args.top,
            )
        )
    if args.flame is not None:
        count = write_flame(aggregate_rows(rows, by_part=True), args.flame)
        print(f"flame: wrote {count} stacks to {args.flame}")
    return 0


def _cmd_watch(argv: List[str]) -> int:
    """``repro watch``: tail and render a ``run-all --live`` event stream."""
    import time as _time

    from repro.obs.live import (
        LIVE_FILENAME,
        WatchState,
        render_board,
        replay,
        snapshot,
        tail_jsonl,
    )

    parser = argparse.ArgumentParser(
        prog="repro watch",
        description="Render the live event stream a 'run-all --live' "
        "invocation writes, refreshing until the run completes.",
    )
    parser.add_argument(
        "--dir",
        default=".",
        help="directory holding run_live.jsonl and its sidecars (default: .)",
    )
    parser.add_argument(
        "--file", default=None, help=f"explicit event-log path (overrides --dir/{LIVE_FILENAME})"
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="refresh period (default: 0.5)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render the current snapshot once and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="with --once: emit the snapshot as JSON instead of the board",
    )
    args = parser.parse_args(argv)
    if args.json and not args.once:
        print("watch: --json requires --once", file=sys.stderr)
        return 2
    live_path = args.file or os.path.join(args.dir, LIVE_FILENAME)
    sidecar_dir = os.path.dirname(os.path.abspath(live_path))
    spans_path = os.path.join(sidecar_dir, "run_spans.jsonl")
    metrics_path = os.path.join(sidecar_dir, "run_metrics.jsonl")

    if args.once and not os.path.exists(live_path):
        print(f"watch: no event stream at {live_path}", file=sys.stderr)
        return 2

    state = WatchState()
    offset = 0
    spans_seen = 0
    spans_offset = 0
    metrics_seen = 0
    metrics_offset = 0
    waiting_note = False
    while True:
        if not os.path.exists(live_path):
            if not waiting_note:
                print(f"watch: waiting for {live_path} ...")
                waiting_note = True
            _time.sleep(max(0.05, args.interval))
            continue
        records, offset = tail_jsonl(live_path, offset)
        state = replay(records, state)
        span_records, spans_offset = tail_jsonl(spans_path, spans_offset)
        spans_seen += len(span_records)
        metric_records, metrics_offset = tail_jsonl(metrics_path, metrics_offset)
        metrics_seen += len(metric_records)
        if args.json:
            print(
                json.dumps(
                    snapshot(
                        state,
                        spans_seen=spans_seen or None,
                        metrics_seen=metrics_seen or None,
                    ),
                    sort_keys=True,
                )
            )
        else:
            print(
                render_board(
                    state,
                    spans_seen=spans_seen or None,
                    metrics_seen=metrics_seen or None,
                )
            )
        if state.finished or args.once:
            return 0
        _time.sleep(max(0.05, args.interval))


def _cmd_trace(argv: List[str], no_obs: bool) -> int:
    """``repro trace <experiment> --kinds ...``: export the event trace."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run one experiment and export its trace as JSONL.",
    )
    parser.add_argument("experiment", help="experiment id (see 'list')")
    parser.add_argument(
        "--kinds",
        default="all",
        help="comma-separated trace kinds (e.g. mac.tx,core.gate_drop) or 'all'",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--output", default=None, help="JSONL path (default: trace_<id>.jsonl)"
    )
    args = parser.parse_args(argv)
    key = _resolve_experiment(args.experiment)
    if key is None:
        return 2
    if no_obs:
        print("trace export requires observability; drop --no-obs", file=sys.stderr)
        return 2
    kinds = (
        None
        if args.kinds == "all"
        else tuple(k for k in args.kinds.split(",") if k)
    )
    obs_runtime.configure(enabled=True, trace_kinds=kinds)
    _run_driver(key, args.seed)

    trace = obs_runtime.get_trace()
    output = args.output or f"trace_{key}.jsonl"
    count = trace.to_jsonl(output)
    print(f"== {key} trace ==")
    print(f"wrote {count} records to {output}")
    for kind in sorted(trace.kinds()):
        print(f"  {kind:<24} {len(trace.filter(kind=kind)):>9}")
    return 0


def _cmd_spans(argv: List[str], no_obs: bool) -> int:
    """``repro spans``: run an experiment (or load a JSONL export) and
    render the span tree; see ``docs/observability.md`` for the schema."""
    from repro.obs.metrics import Histogram
    from repro.obs.spans import render_span_tree

    parser = argparse.ArgumentParser(
        prog="repro spans",
        description="Run one experiment and render its hierarchical span "
        "trace as a flame-style tree (or render an existing spans JSONL).",
    )
    parser.add_argument(
        "experiment", nargs="?", default=None, help="experiment id (see 'list')"
    )
    parser.add_argument(
        "--input", default=None, help="render an existing spans JSONL instead"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--output", default=None, help="JSONL path (default: spans_<id>.jsonl)"
    )
    parser.add_argument(
        "--max-depth", type=int, default=None, help="truncate the tree below this depth"
    )
    parser.add_argument(
        "--detail",
        action="store_true",
        help="also record hot-path spans (per-transmission mac80211)",
    )
    args = parser.parse_args(argv)
    if (args.experiment is None) == (args.input is None):
        print("spans: give exactly one of <experiment> or --input", file=sys.stderr)
        return 2

    if args.input is not None:
        try:
            with open(args.input, encoding="utf-8") as handle:
                records = [json.loads(line) for line in handle if line.strip()]
        except (OSError, json.JSONDecodeError) as exc:
            print(f"spans: cannot read {args.input}: {exc}", file=sys.stderr)
            return 2
    else:
        if no_obs:
            print("span tracing requires observability; drop --no-obs", file=sys.stderr)
            return 2
        key = _resolve_experiment(args.experiment)
        if key is None:
            return 2
        obs_runtime.configure(enabled=True, span_detail=args.detail)
        with obs_runtime.span("cli.spans.run", experiment=key, seed=args.seed):
            _run_driver(key, args.seed)
        recorder = obs_runtime.get_spans()
        output = args.output or f"spans_{key}.jsonl"
        count = recorder.to_jsonl(output)
        records = recorder.to_records()
        print(f"== {key} spans ==")
        print(f"wrote {count} records to {output}")
        if recorder.dropped:
            print(f"note: {recorder.dropped} spans beyond the retention cap")

    print(render_span_tree(records, max_depth=args.max_depth))
    walls = Histogram("cli.spans.wall_s", ())
    for record in records:
        if record.get("wall_s") is not None:
            walls.observe(record["wall_s"])
    if walls.count:
        print(
            f"{walls.count} closed spans: p50 {walls.percentile(50.0):.4f}s, "
            f"p95 {walls.percentile(95.0):.4f}s, max {walls.max:.4f}s"
        )
    return 0


def _cmd_compare(argv: List[str]) -> int:
    """``repro compare a b``: diff two manifests/history records.

    Exit codes: 0 clean, 1 regression or determinism drift, 2 bad input —
    designed to gate CI (see ``docs/observability.md``).
    """
    from repro.errors import ObservabilityError
    from repro.obs.compare import (
        DEFAULT_MIN_WALL_S,
        DEFAULT_WALL_THRESHOLD,
        compare_runs,
        load_run,
        render_compare,
    )

    parser = argparse.ArgumentParser(
        prog="repro compare",
        description="Diff two run manifests / perf-history records: "
        "wall-clock regressions, metric deltas, determinism drift.",
    )
    parser.add_argument("base", help="baseline manifest/BENCH json or history jsonl")
    parser.add_argument("new", help="candidate manifest/BENCH json or history jsonl")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_WALL_THRESHOLD,
        help=f"relative wall-clock regression threshold (default {DEFAULT_WALL_THRESHOLD})",
    )
    parser.add_argument(
        "--min-wall",
        type=float,
        default=DEFAULT_MIN_WALL_S,
        help=f"ignore wall deltas when both runs are under this (default {DEFAULT_MIN_WALL_S}s)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the raw report as JSON"
    )
    args = parser.parse_args(argv)
    try:
        base = load_run(args.base)
        new = load_run(args.new)
        report = compare_runs(
            base, new, wall_threshold=args.threshold, min_wall_s=args.min_wall
        )
    except (OSError, ObservabilityError, json.JSONDecodeError, KeyError) as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_compare(report))
    return 1 if report["regressed"] else 0


def _cmd_slo(argv: List[str]) -> int:
    """``repro slo``: evaluate SLO specs against a run manifest (the gate).

    Re-evaluates post-hoc from the manifest's per-experiment ``domain``
    metric streams (schema v5), so a spec can be tightened or swapped
    without re-running anything. Exit codes: 0 all objectives met, 1 any
    violated (or, under ``--strict``, skipped), 2 bad input — designed to
    gate CI (see ``docs/observability.md``).
    """
    from repro.errors import ObservabilityError
    from repro.obs import slo as slo_mod
    from repro.runner.manifest import MANIFEST_FILENAME

    parser = argparse.ArgumentParser(
        prog="repro slo",
        description="Evaluate SLO specs against a run manifest's domain "
        "metric streams; exit nonzero on violation.",
    )
    parser.add_argument(
        "--input",
        default=MANIFEST_FILENAME,
        help=f"run manifest to evaluate (default: {MANIFEST_FILENAME})",
    )
    parser.add_argument(
        "--spec",
        action="append",
        default=None,
        metavar="PATH",
        help="SLO spec file (repeatable; default: the registry defaults "
        "of every experiment in the manifest)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="run_metrics.jsonl for registry:... metric references "
        "(default: next to the manifest when present)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat skipped objectives (missing metrics, failed "
        "experiments) as failures",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the slo section as JSON"
    )
    args = parser.parse_args(argv)

    try:
        with open(args.input, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"slo: cannot read {args.input}: {exc}", file=sys.stderr)
        return 2
    experiment_ids = [
        entry.get("id", "") for entry in manifest.get("experiments", [])
    ]

    try:
        if args.spec:
            specs = [slo_mod.load_spec(path) for path in args.spec]
        else:
            specs = slo_mod.load_default_specs(experiment_ids)
    except (OSError, ObservabilityError) as exc:
        print(f"slo: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print(
            f"slo: no specs to evaluate for {args.input} "
            "(no registry defaults; pass --spec)",
            file=sys.stderr,
        )
        return 2

    metrics_path = args.metrics
    if metrics_path is None:
        candidate = os.path.join(
            os.path.dirname(os.path.abspath(args.input)), "run_metrics.jsonl"
        )
        metrics_path = candidate if os.path.exists(candidate) else None
    registry_records = None
    if metrics_path is not None:
        try:
            with open(metrics_path, encoding="utf-8") as handle:
                registry_records = [
                    json.loads(line) for line in handle if line.strip()
                ]
        except (OSError, json.JSONDecodeError) as exc:
            print(f"slo: cannot read {metrics_path}: {exc}", file=sys.stderr)
            return 2

    section = slo_mod.evaluate_manifest(
        manifest, specs, registry_records=registry_records
    )
    if args.json:
        print(json.dumps(section, indent=2, sort_keys=True))
    else:
        print(f"== slo: {args.input} ==")
        print(slo_mod.render_section(section))
    return slo_mod.exit_code(section, strict=args.strict)


def _cmd_dash(argv: List[str]) -> int:
    """``repro dash``: render the static HTML observatory for one run."""
    from repro.obs.dash import DASH_FILENAME, write_dash
    from repro.runner.manifest import MANIFEST_FILENAME

    parser = argparse.ArgumentParser(
        prog="repro dash",
        description="Render a run manifest (plus perf-history and metrics "
        "sidecars) as one dependency-free static HTML dashboard.",
    )
    parser.add_argument(
        "--input",
        default=MANIFEST_FILENAME,
        help=f"run manifest to render (default: {MANIFEST_FILENAME})",
    )
    parser.add_argument(
        "--out",
        default=DASH_FILENAME,
        help=f"output HTML path (default: {DASH_FILENAME})",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="PATH",
        help="perf_history.jsonl for the trend section "
        "(default: benchmarks/results/perf_history.jsonl)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="run_metrics.jsonl for the energy-ledger section "
        "(default: next to the manifest)",
    )
    args = parser.parse_args(argv)
    try:
        out = write_dash(
            args.input,
            args.out,
            history_path=args.history,
            metrics_path=args.metrics,
        )
    except (OSError, json.JSONDecodeError) as exc:
        print(f"dash: cannot render {args.input}: {exc}", file=sys.stderr)
        return 2
    print(f"dash: wrote {out}")
    return 0


def main(argv: List[str] = None) -> int:
    """Entry point for ``python -m repro``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    no_obs = "--no-obs" in argv
    if no_obs:
        argv = [arg for arg in argv if arg != "--no-obs"]
    if argv and argv[0] == "run-all":
        # Dispatched before experiment parsing, like the other subcommands
        # whose names can never collide with an experiment id.
        return _cmd_run_all(argv[1:], no_obs)
    if argv and argv[0] == "campaign":
        return _cmd_campaign(argv[1:], no_obs)
    if argv and argv[0] == "metrics":
        return _cmd_metrics(argv[1:], no_obs)
    if argv and argv[0] == "profile":
        return _cmd_profile(argv[1:], no_obs)
    if argv and argv[0] == "watch":
        return _cmd_watch(argv[1:])
    if argv and argv[0] == "trace":
        return _cmd_trace(argv[1:], no_obs)
    if argv and argv[0] == "spans":
        return _cmd_spans(argv[1:], no_obs)
    if argv and argv[0] == "compare":
        return _cmd_compare(argv[1:])
    if argv and argv[0] == "slo":
        return _cmd_slo(argv[1:])
    if argv and argv[0] == "dash":
        return _cmd_dash(argv[1:])
    if argv and argv[0] == "lint":
        # Dispatched before experiment parsing so the subcommand name can
        # never collide with an experiment id (see docs/lint.md).
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="PoWiFi reproduction: run the paper's experiments.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'quickstart', 'report', or 'list'",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--duration", type=float, default=2.0, help="quickstart duration (s)"
    )
    args = parser.parse_args(argv)
    obs_runtime.configure(enabled=not no_obs)

    if args.experiment == "list":
        return _cmd_list()
    if args.experiment == "report":
        from repro.experiments.report import generate_report

        print(generate_report())
        return 0
    if args.experiment == "quickstart":
        return _cmd_quickstart(args.duration, args.seed)
    key = _resolve_experiment(args.experiment)
    if key is None:
        return 2

    result = _run_driver(key, args.seed)
    reporter = _REPORTERS.get(key, _report_generic)
    print(f"== {key} ==")
    for line in reporter(result):
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
