"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list                 # show experiment ids
    python -m repro fig5                 # run one experiment, print a report
    python -m repro fig14 --seed 3
    python -m repro quickstart --duration 2.0

Reports mirror the benchmark outputs; heavy experiments accept reduced
scales through the driver defaults.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.experiments.registry import EXPERIMENTS, get_experiment


def _report_fig5(result) -> List[str]:
    lines = ["threshold  " + "  ".join(f"{d:>6.0f}us" for d, _ in next(iter(result.curves.values())))]
    for threshold, curve in sorted(result.curves.items()):
        lines.append(
            f"{threshold:>9}  " + "  ".join(f"{100 * occ:>7.1f}%" for _, occ in curve)
        )
    return lines


def _report_fig14(study) -> List[str]:
    lines = []
    for home in study.homes:
        lines.append(
            f"home {home.profile.index} ({home.profile.neighboring_aps:>2} APs): "
            f"mean cumulative {100 * home.mean_cumulative:6.1f} %"
        )
    low, high = study.mean_cumulative_range
    lines.append(f"range {100 * low:.0f}-{100 * high:.0f} %  (paper: 78-127 %)")
    return lines


def _report_fig1(result) -> List[str]:
    return [
        f"received power: {result.received_power_dbm:6.1f} dBm",
        f"peak voltage:   {1e3 * result.peak_voltage_v:6.1f} mV",
        f"300 mV crossed: {result.crossed_threshold}",
    ]


def _report_fig9(pair) -> List[str]:
    return [
        f"{r.name}: worst in-band return loss {r.worst_in_band_db:6.1f} dB "
        f"(spec < -10 dB: {r.meets_spec})"
        for r in pair
    ]


def _report_fig10(pair) -> List[str]:
    lines = []
    for result in pair:
        lines.append(
            f"{result.name}: sensitivity {result.worst_sensitivity_dbm:6.1f} dBm, "
            f"output at +4 dBm {1e6 * result.output_at(6, 4):6.1f} uW"
        )
    return lines


def _report_fig11(result) -> List[str]:
    return [
        f"battery-free range:       {result.battery_free_range_feet:5.1f} ft",
        f"battery-recharging range: {result.battery_recharging_range_feet:5.1f} ft",
        "reads/s at 10 ft: "
        f"{result.battery_free[10]:.2f} (free) / {result.battery_recharging[10]:.2f} (recharging)",
    ]


def _report_fig12(result) -> List[str]:
    return [
        f"battery-free range:       {result.battery_free_range_feet:5.1f} ft",
        f"battery-recharging range: {result.battery_recharging_range_feet:5.1f} ft",
    ]


def _report_fig13(result) -> List[str]:
    return [
        f"{name:<14} {minutes:6.1f} min/frame"
        for name, minutes in result.inter_frame_minutes.items()
    ]


def _report_fig15(result) -> List[str]:
    return [
        f"home {index}: median {result.median(index):5.2f} reads/s"
        for index in sorted(result.samples_by_home)
    ]


def _report_table1(result) -> List[str]:
    return [result.as_text(), f"matches paper: {result.matches_paper}"]


def _report_fig8(result) -> List[str]:
    lines = []
    for scheme, curve in result.throughput.items():
        rendered = "  ".join(f"{r:g}:{v:.1f}" for r, v in sorted(curve.items()))
        lines.append(f"{scheme.value:<12} {rendered}")
    return lines


def _report_sec8a(result) -> List[str]:
    return [
        f"average current: {result.average_current_ma:5.2f} mA",
        f"charge in 2.5 h: {result.charge_percent_after:5.1f} %",
    ]


def _report_sec8c(study) -> List[str]:
    return [
        f"{count} router(s): aggregate cumulative "
        f"{100 * study.aggregate_cumulative(count):6.1f} %"
        for count in sorted(study.by_count)
    ]


def _report_generic(result) -> List[str]:
    return [repr(result)]


_REPORTERS: Dict[str, Callable] = {
    "fig1": _report_fig1,
    "fig5": _report_fig5,
    "fig8": _report_fig8,
    "fig9": _report_fig9,
    "fig10": _report_fig10,
    "fig11": _report_fig11,
    "fig12": _report_fig12,
    "fig13": _report_fig13,
    "fig14": _report_fig14,
    "fig15": _report_fig15,
    "table1": _report_table1,
    "sec8a": _report_sec8a,
    "sec8c": _report_sec8c,
}


def _cmd_list() -> int:
    print("available experiments:")
    for key in sorted(EXPERIMENTS):
        print(f"  {key:<8} -> {EXPERIMENTS[key]}")
    print("  quickstart (built-in demo)")
    print("  report     (run everything, emit markdown)")
    return 0


def _cmd_quickstart(duration: float, seed: int) -> int:
    from repro import quickstart_powifi

    result = quickstart_powifi(duration_s=duration, seed=seed)
    for channel, occupancy in sorted(result.occupancy_by_channel.items()):
        print(f"channel {channel:>2}: {100 * occupancy:5.1f} %")
    print(f"cumulative: {100 * result.cumulative_occupancy:5.1f} %")
    print(f"power frames: {result.power_frames_sent}")
    return 0


def main(argv: List[str] = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PoWiFi reproduction: run the paper's experiments.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'quickstart', 'report', or 'list'",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--duration", type=float, default=2.0, help="quickstart duration (s)"
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        return _cmd_list()
    if args.experiment == "report":
        from repro.experiments.report import generate_report

        print(generate_report())
        return 0
    if args.experiment == "quickstart":
        return _cmd_quickstart(args.duration, args.seed)
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; try 'list'",
            file=sys.stderr,
        )
        return 2

    driver = get_experiment(args.experiment)
    try:
        result = driver(seed=args.seed)
    except TypeError:
        # Drivers without a seed parameter (pure-analytic experiments).
        result = driver()
    reporter = _REPORTERS.get(args.experiment, _report_generic)
    print(f"== {args.experiment} ==")
    for line in reporter(result):
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
