"""Task model: the unit of work the runner schedules, caches, and executes.

A :class:`TaskSpec` is one driver call — either a whole experiment
(``part="all"``) or one slice of a sweep decomposition
(:mod:`repro.experiments.sweeps`). Specs are plain picklable data so they
cross the ``ProcessPoolExecutor`` boundary; :func:`execute_task` is the
module-level worker entry point (bound methods and closures cannot be
submitted to a process pool).

Telemetry crosses the pool boundary in both directions. Outbound, the
parent attaches a :class:`SpanContext` — the root span id to graft under, a
per-task span-id prefix, and the observability mode, which is how
``--no-obs`` reaches workers (they re-import ``repro`` with default runtime
state, so the parent's escape hatch would otherwise be silently lost).
Inbound, :class:`TaskOutcome` carries the result plus the worker's finished
span records, metrics snapshot, and engine profile for the parent to merge.

Live telemetry rides alongside: when ``run-all --live`` is active the
parent attaches a :class:`~repro.obs.live.LivePublisher` so the worker can
announce ``part.running`` the moment the driver starts (the parent knows a
task was *submitted*; only the worker knows it is *executing*). Publishing
is strictly best-effort — queue-full or channel-failure increments the
publisher's drop counter, which returns in the outcome so the manifest can
report truncation.

Fault injection rides the same channel: the parent binds the
:class:`~repro.faults.plan.FaultDirective`\\ s a
:class:`~repro.faults.plan.FaultPlan` assigned to this task, and the worker
detonates them around the driver call (:mod:`repro.faults.inject`). A
retried attempt is handed a clean spec, so injected infrastructure faults
are one-shot by construction.
"""

from __future__ import annotations

import contextlib
import gc
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.registry import resolve_target
from repro.faults.inject import fire_worker_faults, sabotage_outcome
from repro.faults.plan import FaultDirective
from repro.obs import runtime as obs_runtime


@dataclass(frozen=True)
class SpanContext:
    """Observability context serialised into a pool worker.

    Attributes
    ----------
    root_id:
        Span id of the parent's ``runner.run_all`` root; the worker's task
        span grafts under it so merged records form one tree.
    prefix:
        Span-id prefix unique to this task (``"t03."``), guaranteeing
        worker-minted ids never collide with the parent's or each other's.
    obs_enabled:
        The parent's observability mode; ``False`` propagates ``--no-obs``.
    span_detail:
        Whether hot-path (per-transmission) span sites record in the worker.
    """

    root_id: Optional[str]
    prefix: str
    obs_enabled: bool = True
    span_detail: bool = False


@dataclass
class TaskOutcome:
    """Everything one executed task ships back to the parent."""

    result: Any
    wall_s: float
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    engine: Dict[str, Any] = field(default_factory=dict)
    #: Spans the worker's recorder discarded at its retention cap.
    spans_dropped: int = 0
    #: Live events the worker's publisher could not enqueue.
    live_dropped: int = 0


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable driver call.

    Attributes
    ----------
    experiment_id:
        Canonical registry id this task contributes to.
    part:
        ``"all"`` for a monolithic run, else the sweep part name
        (``"threshold=1"``, ``"home=3"``...).
    target:
        ``"module:callable"`` driver reference.
    kwargs:
        Complete keyword arguments (the seed, when the driver takes one,
        is already baked in by the planner or sweep factory).
    seed:
        The run's seed, recorded for the manifest; ``None`` when the
        driver is pure-analytic and takes no seed.
    obs:
        Observability context, set only for tasks bound for a pool worker.
        ``None`` (the default, and always at ``--jobs 1``) executes the
        driver against the caller's ambient runtime state. Excluded from
        cache keys by construction — :func:`~repro.runner.cache.cache_key`
        consumes the identity fields explicitly.
    faults:
        Armed fault directives for *this attempt* (empty on the fault-free
        path and on every retry). Excluded from cache keys like ``obs``;
        infrastructure faults never change result bytes, only how (and how
        often) the result was obtained.
    live:
        Live-telemetry publisher, set only when the parent runs with a
        live sink and this task is pool-bound. Excluded from cache keys
        like ``obs``; publishing is best-effort and never changes results.
    attempt:
        1-based attempt number, labelled onto the worker's task span so a
        span tree distinguishes a retry from a first try.
    """

    experiment_id: str
    part: str
    target: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    obs: Optional[SpanContext] = None
    faults: Tuple[FaultDirective, ...] = ()
    live: Optional[Any] = None
    attempt: int = 1

    @property
    def label(self) -> str:
        """The ``experiment:part`` label fault plans assign against."""
        return f"{self.experiment_id}:{self.part}"


@contextlib.contextmanager
def _gc_paused():
    """Pause the cyclic garbage collector around one driver call.

    The simulators allocate millions of short-lived, overwhelmingly acyclic
    objects (frames, events, transmission records); generation-0 collections
    spend several percent of a long run scanning them for cycles that cannot
    exist. Reference counting still frees everything promptly while the
    collector is off. On exit the collector is restored to its prior state
    and run once, so any genuine cycles a driver did create are reclaimed
    before the next task executes.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()
            gc.collect()


def execute_task(spec: TaskSpec) -> TaskOutcome:
    """Run one task; returns a :class:`TaskOutcome`.

    Runs in a worker process for parallel plans and in the parent for
    ``--jobs 1``; both paths call the exact same driver with the exact same
    kwargs, which is what makes the two modes byte-identical. Only the
    telemetry handling differs:

    * ``spec.obs`` set (pool worker) — reconfigure this process's runtime
      to the parent's mode, open a ``runner.task`` span grafted under the
      parent's root, and snapshot spans/metrics/engine stats into the
      outcome for the parent to merge.
    * ``spec.obs`` unset (in-process) — run the driver plainly; the
      caller's ambient recorders already capture everything, so the
      outcome carries empty telemetry.

    Armed fault directives detonate here: pre-driver faults (raise, crash,
    hang) before the timed region, result sabotage after it. In-process
    execution degrades process-killing faults to raises — the orchestrator
    must survive its own chaos.
    """
    driver = resolve_target(spec.target)
    if spec.obs is None:
        fire_worker_faults(spec.faults, in_process=True)
        started = time.perf_counter()
        with _gc_paused():
            result = driver(**spec.kwargs)
        result = sabotage_outcome(spec.faults, result, in_process=True)
        return TaskOutcome(result=result, wall_s=time.perf_counter() - started)

    ctx = spec.obs
    obs_runtime.configure(
        enabled=ctx.obs_enabled,
        span_prefix=ctx.prefix,
        span_detail=ctx.span_detail,
    )
    if spec.live is not None:
        # Announce before faults detonate: a task about to hang or crash
        # is exactly the one the watch board must show as running.
        spec.live.part_running(spec.experiment_id, spec.part, spec.attempt)
    spans = obs_runtime.get_spans()
    task_span = spans.begin(
        "runner.task",
        parent_id=ctx.root_id,
        experiment=spec.experiment_id,
        part=spec.part,
        attempt=spec.attempt,
    )
    started = time.perf_counter()
    try:
        fire_worker_faults(spec.faults, in_process=False)
        with _gc_paused():
            result = driver(**spec.kwargs)
    except BaseException:
        spans.end(task_span, status="error")
        raise
    wall_s = time.perf_counter() - started
    spans.end(task_span)
    result = sabotage_outcome(spec.faults, result, in_process=False)
    return TaskOutcome(
        result=result,
        wall_s=wall_s,
        spans=spans.to_records(),
        metrics=obs_runtime.get_registry().snapshot(),
        engine=obs_runtime.aggregate_engine_stats(),
        spans_dropped=spans.dropped,
        live_dropped=spec.live.dropped if spec.live is not None else 0,
    )
