"""Task model: the unit of work the runner schedules, caches, and executes.

A :class:`TaskSpec` is one driver call — either a whole experiment
(``part="all"``) or one slice of a sweep decomposition
(:mod:`repro.experiments.sweeps`). Specs are plain picklable data so they
cross the ``ProcessPoolExecutor`` boundary; :func:`execute_task` is the
module-level worker entry point (bound methods and closures cannot be
submitted to a process pool).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.experiments.registry import resolve_target


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable driver call.

    Attributes
    ----------
    experiment_id:
        Canonical registry id this task contributes to.
    part:
        ``"all"`` for a monolithic run, else the sweep part name
        (``"threshold=1"``, ``"home=3"``...).
    target:
        ``"module:callable"`` driver reference.
    kwargs:
        Complete keyword arguments (the seed, when the driver takes one,
        is already baked in by the planner or sweep factory).
    seed:
        The run's seed, recorded for the manifest; ``None`` when the
        driver is pure-analytic and takes no seed.
    """

    experiment_id: str
    part: str
    target: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None


def execute_task(spec: TaskSpec) -> Tuple[Any, float]:
    """Run one task; returns ``(result, wall_s)``.

    Runs in a worker process for parallel plans and in the parent for
    ``--jobs 1``; both paths call the exact same driver with the exact same
    kwargs, which is what makes the two modes byte-identical.
    """
    driver = resolve_target(spec.target)
    started = time.perf_counter()
    result = driver(**spec.kwargs)
    return result, time.perf_counter() - started
