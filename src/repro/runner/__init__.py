"""Parallel experiment runner with content-addressed result caching.

The orchestration layer over the experiment registry: one call (or
``python -m repro run-all``) regenerates every table and figure of the
paper's evaluation, fanning independent experiments — and the sweep parts
inside them — across worker processes, replaying unchanged runs from the
on-disk cache, and recording the whole run in ``run_manifest.json``.

Public surface:

* :func:`~repro.runner.core.run_all` / :class:`~repro.runner.core.RunAllResult`
  — orchestrate a run;
* :class:`~repro.runner.cache.ResultCache`,
  :func:`~repro.runner.cache.cache_key`,
  :func:`~repro.runner.cache.code_fingerprint` — the cache layer;
* :func:`~repro.runner.manifest.write_manifest` — the run record.

See ``docs/running.md`` for the end-to-end workflow and
``docs/architecture.md`` for where this sits in the layering (above
``experiments/``; nothing below it knows it exists).
"""

from repro.runner.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
    canonical_config,
    code_fingerprint,
)
from repro.runner.core import (
    ExperimentRun,
    PartRun,
    RunAllResult,
    resolve_ids,
    run_all,
)
from repro.runner.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    write_manifest,
)
from repro.runner.tasks import SpanContext, TaskOutcome, TaskSpec, execute_task

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
    "ExperimentRun",
    "PartRun",
    "ResultCache",
    "RunAllResult",
    "SpanContext",
    "TaskOutcome",
    "TaskSpec",
    "build_manifest",
    "cache_key",
    "canonical_config",
    "code_fingerprint",
    "execute_task",
    "resolve_ids",
    "run_all",
    "write_manifest",
]
