"""Deterministic retry backoff shared by the runner and campaign manager.

A retried attempt used to requeue immediately, which is exactly wrong for
the two real failure families retries exist for: a transient resource spike
(immediate retry lands in the same spike) and a thundering herd after a
pool rebuild (every requeued task re-submits in the same tick). Classic
jittered exponential backoff fixes both — but ``random.uniform`` jitter
would make fault runs unreproducible, and this repo's contract is that a
flaky-looking failure can always be replayed from its seed.

So the jitter is drawn from :class:`repro.sim.rng.RandomStreams`, keyed by
``(seed, task label, attempt)``: the same attempt of the same task under
the same seed always waits the same time, on every machine, while distinct
tasks still spread out. Delays are observable on the
``runner.retry.backoff_s`` histogram.
"""

from __future__ import annotations

from repro.sim.rng import RandomStreams, derive_seed

#: First-retry backoff window (seconds); doubles per attempt.
DEFAULT_BASE_S = 0.05

#: Ceiling on one backoff window (seconds) — retries are bounded anyway,
#: so the cap only stops a deep retry budget from stalling the tail.
DEFAULT_CAP_S = 2.0


def backoff_s(
    seed: int,
    label: str,
    attempt: int,
    base_s: float = DEFAULT_BASE_S,
    cap_s: float = DEFAULT_CAP_S,
) -> float:
    """Seconds to wait before retrying ``label``'s ``attempt``-th failure.

    Exponential window (``base_s * 2**(attempt-1)``, capped at ``cap_s``)
    with deterministic half-jitter: the delay lands in ``[window/2,
    window)``, drawn from a named RNG stream so equal ``(seed, label,
    attempt)`` always produce the equal delay.

    >>> backoff_s(0, "fig9:all", 1) == backoff_s(0, "fig9:all", 1)
    True
    >>> 0.025 <= backoff_s(0, "fig9:all", 1) < 0.05
    True
    """
    attempt = max(1, int(attempt))
    window = min(float(cap_s), float(base_s) * (2.0 ** (attempt - 1)))
    rng = RandomStreams(derive_seed(int(seed), "retry-backoff")).stream(
        f"{label}#{attempt}"
    )
    return window * (0.5 + 0.5 * rng.random())
