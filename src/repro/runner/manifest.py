"""``run_manifest.json``: the machine-readable record of one run-all.

One manifest per invocation, schema-versioned so downstream tooling can
rely on its shape (``tests/test_runner_run_all.py`` pins the key set).
Each ``experiments[]`` entry corresponds to one row of EXPERIMENTS.md's
summary table — ``id`` here is the lowercase form of that table's "Exp."
column (``fig6a`` ↔ "Fig 6a", ``sec8a`` ↔ "§8(a)", ``table1`` ↔
"Table 1") — so a manifest diff answers "which paper artifacts changed
and why" directly.

The ``result_sha256`` field hashes the pickled merged result object: two
runs regenerated the same artifact if and only if the hashes match, which
is how the parallel-equals-sequential guarantee is audited in practice —
and, since the robustness PR, how the chaos invariant is audited too:
a faulted run's hashes must match the fault-free run's byte for byte.

A manifest is written even when the run was cut short (SIGINT/SIGTERM) or
beaten up by injected faults; ``interrupted``, ``faults`` and the per-part
``attempts``/``failure_kind`` fields record exactly how the run degraded.
The write itself is atomic (:func:`repro.obs.ioutil.write_atomic`), so the
file on disk is always either the previous complete manifest or the new
one — never a torn hybrid.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List

from repro.obs.ioutil import write_atomic
from repro.obs.slo import section_from_rows
from repro.obs.spans import SPAN_SCHEMA_VERSION
from repro.runner.core import RunAllResult

#: Bump on any breaking change to the manifest layout.
#: v2 (span tracing PR): per-part ``engine``/``metrics`` summaries, a
#: top-level ``spans`` section, and ``events_dispatched`` in totals.
#: v3 (robustness PR): per-part ``attempts``/``timed_out``/``failure_kind``/
#: ``error``, top-level ``interrupted``/``retries``/``task_timeout_s``, and
#: ``faults`` + ``cache.quarantined`` sections.
#: v4 (profiler PR): per-part ``engine.profile`` attribution maps
#: (per event kind: component, dispatch count, sampled wall, sim-time
#: bounds) and ``spans_dropped``/``live_dropped`` in totals.
#: v5 (SLO PR): per-experiment ``domain`` metric streams extracted from
#: merged results, and a top-level ``slo`` section (per-objective status,
#: signed margin, worst window) evaluated from the registry-default and
#: explicitly passed SLO specs. Both are pure functions of the results:
#: equal seeds produce byte-identical sections.
MANIFEST_SCHEMA_VERSION = 5

#: Default output filename.
MANIFEST_FILENAME = "run_manifest.json"

#: Required keys of every ``experiments[]`` entry (schema contract).
EXPERIMENT_KEYS = (
    "id",
    "runtime_class",
    "seed",
    "cache_hit",
    "duration_s",
    "shape_ok",
    "shape_detail",
    "result_sha256",
    "error",
    "domain",
    "parts",
)

#: Required keys of every ``parts[]`` entry.
PART_KEYS = (
    "part",
    "key",
    "cache_hit",
    "duration_s",
    "engine",
    "metrics",
    "attempts",
    "timed_out",
    "failure_kind",
    "error",
)


def _part_engine(engine: Dict[str, Any]) -> Dict[str, Any]:
    """Compact per-part engine summary plus the attribution profile.

    Headline numbers as before; ``profile`` maps each event kind the part
    dispatched to its owning component, exact dispatch count, sampled
    wall-clock and sim-time bounds — the raw material of ``repro profile``
    and the per-kind baselines in ``perf_history.jsonl``. Empty for cache
    hits and ``--no-obs`` parts (simulators then keep no profile at all).
    """
    counts = engine.get("callback_counts") or {}
    walls = engine.get("callback_wall_s") or {}
    components = engine.get("callback_components") or {}
    bounds = engine.get("callback_sim_bounds") or {}
    profile = {}
    for kind in sorted(counts):
        window = bounds.get(kind)
        profile[kind] = {
            "component": str(components.get(kind, "")),
            "count": int(counts[kind]),
            "wall_s": round(float(walls.get(kind, 0.0)), 6),
            "sim_first_s": None if window is None else window[0],
            "sim_last_s": None if window is None else window[1],
        }
    return {
        "simulators": int(engine.get("simulators", 0)),
        "dispatched": int(engine.get("dispatched", 0)),
        "cancelled": int(engine.get("cancelled", 0)),
        "heap_high_watermark": int(engine.get("heap_high_watermark", 0)),
        "profile": profile,
    }


def _part_metrics(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Surface a worker's metrics snapshot as a manifest-sized summary.

    Counters are summed across label sets by name (the worker ran exactly
    one task, so the totals are that task's); other instrument kinds are
    only counted — their full records live in the ``run_metrics.jsonl``
    sidecar, not the manifest.
    """
    counters: Dict[str, float] = {}
    for record in records:
        if record.get("type") == "counter":
            name = record["name"]
            counters[name] = counters.get(name, 0.0) + float(record.get("value", 0.0))
    return {
        "records": len(records),
        "counter_totals": {name: counters[name] for name in sorted(counters)},
    }


def build_manifest(run: RunAllResult) -> Dict[str, Any]:
    """Render a :class:`~repro.runner.core.RunAllResult` as manifest data."""
    experiments = []
    for record in run.runs:
        experiments.append(
            {
                "id": record.id,
                "runtime_class": record.runtime,
                "seed": record.seed,
                "cache_hit": record.cache_hit,
                "duration_s": round(record.duration_s, 6),
                "shape_ok": record.shape_ok,
                "shape_detail": record.shape_detail,
                "result_sha256": record.result_sha256,
                "error": record.error,
                "domain": record.domain,
                "parts": [
                    {
                        "part": part.part,
                        "key": part.key,
                        "cache_hit": part.cache_hit,
                        "duration_s": round(part.duration_s, 6),
                        "engine": _part_engine(part.engine),
                        "metrics": _part_metrics(part.metrics),
                        "attempts": part.attempts,
                        "timed_out": part.timed_out,
                        "failure_kind": part.failure_kind,
                        "error": part.error,
                    }
                    for part in record.parts
                ],
            }
        )
    events_dispatched = sum(
        part["engine"]["dispatched"] for entry in experiments for part in entry["parts"]
    )
    retried_parts = sum(
        1 for entry in experiments for part in entry["parts"] if part["attempts"] > 1
    )
    return {
        "schema": MANIFEST_SCHEMA_VERSION,
        "generated_unix_s": round(time.time(), 3),
        "jobs": run.jobs,
        "seed": run.seed,
        "code_fingerprint": run.code_fingerprint,
        "interrupted": run.interrupted,
        "retries": run.retries,
        "task_timeout_s": run.task_timeout_s,
        "cache": {
            "enabled": run.cache_enabled,
            "dir": run.cache_dir,
            "experiments_hit": run.cache_hits,
            "quarantined": list(run.quarantined),
        },
        "faults": {
            "plan": run.fault_plan,
            "events": list(run.fault_events),
        },
        "totals": {
            "experiments": len(run.runs),
            "ok": sum(1 for record in run.runs if record.ok),
            "failed": sum(1 for record in run.runs if not record.ok),
            "cache_hits": run.cache_hits,
            "wall_s": round(run.wall_s, 3),
            "events_dispatched": events_dispatched,
            "retried_parts": retried_parts,
            "spans_dropped": run.spans_dropped,
            "live_dropped": run.live_dropped,
        },
        "spans": {
            "schema": SPAN_SCHEMA_VERSION,
            "count": len(run.spans),
            "records": run.spans,
        },
        "slo": section_from_rows(run.slo_rows, run.slo_spec_paths),
        "experiments": experiments,
    }


def write_manifest(run: RunAllResult, path: str = MANIFEST_FILENAME) -> Dict[str, Any]:
    """Build the manifest, write it atomically, and return it.

    Routed through :func:`repro.obs.ioutil.write_atomic` with the
    ``manifest.interrupt`` fault point armed-checkable between temp write
    and rename: a run killed (or faulted) mid-write leaves the previous
    manifest intact rather than a truncated JSON.
    """
    manifest = build_manifest(run)
    write_atomic(
        path,
        json.dumps(manifest, indent=2, sort_keys=False) + "\n",
        fault_point="manifest.interrupt",
    )
    return manifest
