"""Content-addressed on-disk cache for experiment results.

Every runner task (one experiment, or one sweep part of it) is addressed by
a SHA-256 :func:`cache_key` over five inputs:

* the experiment id and part name,
* the driver's ``"module:callable"`` target,
* the fully resolved keyword arguments (canonicalised, order-independent),
* the seed,
* a :func:`code_fingerprint` of the whole ``repro`` source tree.

Identical inputs therefore replay instantly from ``.repro_cache/`` while
*any* change to the configuration, the seed, or the library source
invalidates exactly the runs it could have affected (the fingerprint is
deliberately whole-tree: cheaper and safer than per-module dependency
tracing — a one-line kernel change invalidates everything, which is the
conservative direction). Entries are pickled result objects with a JSON
metadata sidecar; unreadable entries are treated as misses and *quarantined*
(moved aside, counted, reported — never silently destroyed), so a corrupted
cache degrades to observable re-execution, never to wrong results and never
to an evidence-free disappearance.

Cache layout::

    .repro_cache/
      objects/
        <key>.pkl    # pickled result object
        <key>.json   # metadata: experiment, part, seed, duration, size
      quarantine/
        <key>.pkl    # unreadable entries moved here by get() for autopsy

See ``docs/running.md`` for the user-facing semantics and invalidation
rules.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import runtime as obs_runtime
from repro.obs.ioutil import write_atomic

#: Bump when the key construction or entry layout changes; stale-schema
#: entries then simply never match again.
CACHE_SCHEMA_VERSION = 1

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def code_fingerprint(package_root: Optional[Path] = None) -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Files are folded in sorted-relative-path order with NUL separators, so
    the fingerprint is stable across machines and processes and changes
    whenever any source byte, file name, or file set changes.

    >>> fingerprint = code_fingerprint()
    >>> fingerprint == code_fingerprint()
    True
    >>> len(fingerprint)
    64
    """
    if package_root is None:
        import repro

        package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(path.relative_to(package_root).as_posix().encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def canonical_config(value: Any) -> Any:
    """Reduce driver kwargs to a JSON-safe, order-independent form.

    Dicts sort by key, tuples become lists, enums become ``Class.NAME``,
    dataclasses fold in their type name and fields; anything else falls
    back to ``repr``. Two kwargs dicts canonicalise equal exactly when the
    driver cannot tell them apart.
    """
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical_config(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, dict):
        return {str(key): canonical_config(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [canonical_config(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def cache_key(
    experiment_id: str,
    part: str,
    target: str,
    kwargs: Dict[str, Any],
    seed: Optional[int],
    fingerprint: str,
) -> str:
    """The content address of one task's result (64 hex chars)."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "experiment": experiment_id,
            "part": part,
            "target": target,
            "config": canonical_config(kwargs),
            "seed": seed,
            "code": fingerprint,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """The ``.repro_cache/`` store: pickled results addressed by key.

    Writes are atomic (temp file + ``os.replace``,
    :func:`repro.obs.ioutil.write_atomic`) so a parallel run interrupted
    mid-write can never leave a truncated entry that later reads as a hit.
    Reads that *do* find a corrupt entry (torn by a power loss, a bad disk,
    or an injected ``cache.corrupt`` fault) quarantine it under
    ``quarantine/``, count it on ``runner.cache.corrupt``, and report a
    miss — the entry stays available for autopsy instead of vanishing.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        #: Keys quarantined by this instance, in discovery order (the
        #: runner drains this to emit one progress line per event).
        self.quarantine_events: List[str] = []

    def _object_path(self, key: str) -> Path:
        return self.objects / f"{key}.pkl"

    def _meta_path(self, key: str) -> Path:
        return self.objects / f"{key}.json"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, result)``; corrupt or unreadable entries count as misses
        and are quarantined (see :meth:`quarantine`)."""
        path = self._object_path(key)
        try:
            with open(path, "rb") as handle:
                return True, pickle.load(handle)
        except FileNotFoundError:
            return False, None
        except Exception:
            # Truncated/corrupt entry: move it aside so it cannot mask
            # re-execution, while keeping the bytes for post-mortems.
            self.quarantine(key)
            return False, None

    def quarantine(self, key: str) -> None:
        """Move one entry (object + sidecar) into ``quarantine/``."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for path in (self._object_path(key), self._meta_path(key)):
            try:
                os.replace(path, self.quarantine_dir / path.name)
            except OSError:
                pass
        self.quarantine_events.append(key)
        obs_runtime.get_registry().counter("runner.cache.corrupt").inc()

    def corrupt_entry(self, key: str) -> bool:
        """Deliberately truncate one stored entry (fault injection / tests).

        Returns False when no entry exists. The damage mimics a torn write:
        the object file keeps its first few bytes, which is exactly the
        shape :meth:`get` must survive.
        """
        path = self._object_path(key)
        if not path.exists():
            return False
        with open(path, "r+b") as handle:
            handle.truncate(4)
        return True

    def put(self, key: str, result: Any, meta: Optional[Dict[str, Any]] = None) -> None:
        """Store one result and its metadata sidecar atomically."""
        self.objects.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self._write_atomic(self._object_path(key), payload)
        record = dict(meta or {})
        record["size_bytes"] = len(payload)
        record["schema"] = CACHE_SCHEMA_VERSION
        self._write_atomic(
            self._meta_path(key),
            (json.dumps(record, sort_keys=True) + "\n").encode("utf-8"),
        )

    def _write_atomic(self, path: Path, payload: bytes) -> None:
        # Thin wrapper kept for API stability; the shared implementation
        # lives in repro.obs.ioutil so every artifact writer agrees on the
        # crash-safety contract.
        write_atomic(path, payload)

    def contains(self, key: str) -> bool:
        """Whether an entry exists (without loading it)."""
        return self._object_path(key).exists()

    def discard(self, key: str) -> None:
        """Remove one entry (both object and sidecar), if present."""
        for path in (self._object_path(key), self._meta_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def keys(self) -> Iterator[str]:
        """All stored entry keys."""
        if not self.objects.is_dir():
            return iter(())
        return (path.stem for path in self.objects.glob("*.pkl"))

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        removed = 0
        for key in list(self.keys()):
            self.discard(key)
            removed += 1
        return removed
