"""The orchestrator: plan, cache-check, fan out, merge, shape-check.

:func:`run_all` regenerates any subset of the paper's 17 registry
experiments in one call:

1. **Plan** — each experiment becomes one task, or several independent
   part tasks when its :class:`~repro.experiments.registry.ExperimentSpec`
   declares a sweep decomposition (Fig 5 by threshold, Fig 6 by scheme,
   Fig 14 by home, ...).
2. **Cache check** — every task's :func:`~repro.runner.cache.cache_key`
   is probed against the content-addressed store; hits replay instantly,
   corrupt entries are quarantined and re-executed.
3. **Execute** — remaining tasks fan out over a
   ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` workers), slowest
   runtime class first so the pool drains evenly. ``jobs=1`` runs the same
   plan in-process; both modes produce byte-identical results because
   every task builds its own simulator from the same seed.
4. **Merge + check** — part results are merged in canonical order and the
   experiment's shape check validates the paper's headline claim.

The execution stage is hardened against worker failure (this is the layer
the chaos CI job beats on, see ``docs/robustness.md``):

* a **watchdog** enforces ``task_timeout_s`` per task — a hung worker is
  terminated with its pool and the innocent in-flight tasks are requeued
  uncharged;
* failures retry up to ``retries`` extra attempts, with per-part attempt
  counts recorded for the manifest; injected fault directives are stripped
  before requeue, so retried attempts always run clean;
* a **BrokenProcessPool** (worker killed by the OS, by a crash fault, or
  by the OOM killer) rebuilds the pool and requeues what never finished;
* SIGINT/SIGTERM degrade gracefully: the run stops submitting, marks
  unfinished tasks ``interrupted``, and returns a partial
  :class:`RunAllResult` the CLI still flushes as a valid manifest. A
  second signal aborts hard.

Per-task wall-clock, retry/failure and cache hit/miss/corrupt counts flow
through the shared ``repro.obs`` metrics registry (``runner.*``
instruments); the caller gets a :class:`RunAllResult` from which
``run_manifest.json`` is rendered (:mod:`repro.runner.manifest`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.registry import (
    RUNTIME_CLASSES,
    SPECS,
    ExperimentSpec,
    get_spec,
    resolve_target,
)
from repro.faults.plan import FaultDirective, FaultPlan, WORKER_FAULT_POINTS
from repro.obs import runtime as obs_runtime
from repro.runner.backoff import backoff_s
from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
    code_fingerprint,
)
from repro.runner.tasks import SpanContext, TaskOutcome, TaskSpec, execute_task

#: Progress callback type: receives one formatted line per event.
ProgressFn = Callable[[str], None]

#: How often the pool loop wakes to run the watchdog when nothing
#: completes (seconds). Completions interrupt the wait immediately.
_POLL_INTERVAL_S = 0.25


@dataclass
class PartRun:
    """Outcome of one task (one sweep part, or the whole experiment)."""

    part: str
    key: str
    cache_hit: bool
    duration_s: float
    #: Engine profile attributed to this task: worker-local aggregate for
    #: pool tasks, tracked-simulator delta for in-process tasks, ``{}`` for
    #: cache hits.
    engine: Dict[str, Any] = field(default_factory=dict)
    #: The executing worker's full metrics snapshot (pool tasks only; the
    #: parent's ambient registry already holds in-process telemetry).
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    #: Execution attempts consumed (0 for cache hits, 1 for a clean run,
    #: more when retries fired).
    attempts: int = 0
    #: Whether any attempt tripped the watchdog.
    timed_out: bool = False
    #: Classification of the *final* failure (``error`` / ``timeout`` /
    #: ``pool_broken`` / ``interrupted``); ``None`` when the part succeeded.
    failure_kind: Optional[str] = None
    #: Final failure message, ``None`` when the part succeeded.
    error: Optional[str] = None


@dataclass
class ExperimentRun:
    """Outcome of one experiment: merged result plus per-part records."""

    id: str
    runtime: str
    seed: Optional[int]
    parts: List[PartRun]
    result: Any = None
    result_sha256: str = ""
    duration_s: float = 0.0
    cache_hit: bool = False
    shape_ok: Optional[bool] = None
    shape_detail: str = ""
    error: Optional[str] = None
    #: Domain metric streams extracted from the merged result
    #: (:func:`repro.obs.slo.domain_metrics`); ``{}`` when the experiment
    #: failed or has no extractor. Cache hits still carry domain metrics —
    #: extraction runs on the loaded result, not on execution.
    domain: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Ran without error and passed (or had no) shape check."""
        return self.error is None and self.shape_ok is not False


@dataclass
class RunAllResult:
    """Everything one ``run-all`` invocation produced."""

    runs: List[ExperimentRun]
    jobs: int
    seed: int
    cache_enabled: bool
    cache_dir: Optional[str]
    code_fingerprint: str
    wall_s: float = 0.0
    #: Span records produced by this invocation (root ``runner.run_all``
    #: plus everything recorded, adopted, or synthesized beneath it).
    spans: List[Dict[str, Any]] = field(default_factory=list)
    #: Extra attempts allowed per task (the ``--retries`` setting).
    retries: int = 0
    #: Watchdog limit per task in seconds (``None`` = no watchdog).
    task_timeout_s: Optional[float] = None
    #: Whether SIGINT/SIGTERM cut the run short (the result is then
    #: partial: unfinished tasks carry ``failure_kind="interrupted"``).
    interrupted: bool = False
    #: Compact description of the injected fault plan (``None`` when the
    #: run was fault-free).
    fault_plan: Optional[str] = None
    #: One record per fault binding/firing this run observed.
    fault_events: List[Dict[str, Any]] = field(default_factory=list)
    #: Cache keys quarantined as corrupt during the probe phase.
    quarantined: List[str] = field(default_factory=list)
    #: Span records lost to retention caps (parent recorder + workers).
    spans_dropped: int = 0
    #: Live events workers failed to enqueue on the streaming channel.
    live_dropped: int = 0
    #: Evaluated SLO objective rows, sorted by (experiment, id); the
    #: manifest's ``slo`` section is assembled from these.
    slo_rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Paths of the SLO specs that produced :attr:`slo_rows`.
    slo_spec_paths: List[str] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        """Experiments served entirely from cache."""
        return sum(1 for run in self.runs if run.cache_hit)

    @property
    def ok(self) -> bool:
        """Whether every experiment ran and shape-checked clean."""
        return all(run.ok for run in self.runs)

    def run_for(self, experiment_id: str) -> ExperimentRun:
        """Lookup of one experiment's run record."""
        for run in self.runs:
            if run.id == experiment_id:
                return run
        raise KeyError(experiment_id)


@dataclass
class _Planned:
    """One experiment's task list plus how to reassemble the result."""

    spec: ExperimentSpec
    seed: Optional[int]
    tasks: List[TaskSpec]
    keys: List[str]
    merge: Optional[Callable[[Sequence[Any]], Any]]
    #: Planning failure (broken target/sweep reference); recorded on the
    #: experiment's run instead of sinking the whole invocation.
    error: Optional[str] = None


@dataclass
class _TaskState:
    """Mutable per-task execution bookkeeping (attempts, faults, fate)."""

    task: TaskSpec
    key: str
    rank: int
    faults: Tuple[FaultDirective, ...] = ()
    attempts: int = 0
    timed_out: bool = False
    failure_kind: Optional[str] = None
    error: Optional[str] = None
    #: ``perf_counter`` timestamp before which a retry must not re-submit
    #: (seeded backoff; 0.0 = immediately eligible).
    ready_at: float = 0.0

    @property
    def label(self) -> str:
        return self.task.label


class _InterruptGuard:
    """Flag-based SIGINT/SIGTERM handling for graceful degradation.

    The first signal sets :attr:`triggered`; the run loop notices, stops
    submitting, and unwinds to flush a partial manifest. A second signal
    raises ``KeyboardInterrupt`` so an operator can still abort hard.
    Installation is skipped silently off the main thread (``signal.signal``
    refuses there), which keeps ``run_all`` usable from test harnesses and
    embedding code.
    """

    _SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.triggered = False
        self._previous: Dict[int, Any] = {}
        self._pid = os.getpid()

    def _handle(self, signum: int, frame: Any) -> None:
        if os.getpid() != self._pid:
            # A forked pool worker inherited this handler; restore the
            # default disposition and re-deliver so the worker dies
            # silently instead of spraying a KeyboardInterrupt traceback
            # when the parent terminates its pool.
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        if self.triggered:
            raise KeyboardInterrupt
        self.triggered = True

    def __enter__(self) -> "_InterruptGuard":
        for signum in self._SIGNALS:
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # not the main thread
                break
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except ValueError:
                pass


def _plan_experiment(spec: ExperimentSpec, seed: int, fingerprint: str) -> _Planned:
    """Decompose one experiment into tasks and compute their cache keys."""
    try:
        return _plan_tasks(spec, seed, fingerprint)
    except ConfigurationError as exc:
        return _Planned(
            spec=spec, seed=None, tasks=[], keys=[], merge=None, error=str(exc)
        )


def _plan_tasks(spec: ExperimentSpec, seed: int, fingerprint: str) -> _Planned:
    if spec.sweep is not None:
        factory = resolve_target(spec.sweep)
        sweep_plan = factory(seed)
        tasks = [
            TaskSpec(
                experiment_id=spec.id,
                part=part.name,
                target=part.target,
                kwargs=dict(part.kwargs),
                seed=seed if "seed" in part.kwargs else None,
            )
            for part in sweep_plan.parts
        ]
        merge: Optional[Callable[[Sequence[Any]], Any]] = sweep_plan.merge
    else:
        accepts_seed = spec.accepts_seed()
        kwargs: Dict[str, Any] = {"seed": seed} if accepts_seed else {}
        tasks = [
            TaskSpec(
                experiment_id=spec.id,
                part="all",
                target=spec.target,
                kwargs=kwargs,
                seed=seed if accepts_seed else None,
            )
        ]
        merge = None
    keys = [
        cache_key(t.experiment_id, t.part, t.target, t.kwargs, t.seed, fingerprint)
        for t in tasks
    ]
    return _Planned(
        spec=spec,
        seed=seed if any(t.seed is not None for t in tasks) else None,
        tasks=tasks,
        keys=keys,
        merge=merge,
    )


def resolve_ids(ids: Optional[Sequence[str]]) -> List[str]:
    """Normalise a user id list to canonical registry order.

    ``None`` selects every registered experiment. Unknown ids raise
    :class:`~repro.errors.ConfigurationError`; duplicates collapse.
    """
    from repro.cli import normalize_experiment_id

    if ids is None:
        return list(SPECS)
    requested = []
    for raw in ids:
        key = normalize_experiment_id(raw.strip())
        if key not in SPECS:
            raise ConfigurationError(
                f"unknown experiment {raw!r}; known: {sorted(SPECS)}"
            )
        if key not in requested:
            requested.append(key)
    return [key for key in SPECS if key in requested]


def _runtime_rank(spec: ExperimentSpec) -> int:
    return RUNTIME_CLASSES.index(spec.runtime)


def _shape_check(spec: ExperimentSpec, result: Any) -> Tuple[Optional[bool], str]:
    """Run the experiment's shape check, reporting its own failures."""
    if spec.check is None:
        return None, ""
    try:
        check = resolve_target(spec.check)
        ok, detail = check(result)
        return bool(ok), detail
    except Exception as exc:  # a broken check must not sink the run
        return False, f"shape check raised {type(exc).__name__}: {exc}"


def run_all(
    ids: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    cache_dir: str = DEFAULT_CACHE_DIR,
    seed: int = 0,
    progress: Optional[ProgressFn] = None,
    retries: int = 0,
    task_timeout_s: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    live_sink: Optional[Any] = None,
    slo_specs: Optional[Sequence[Any]] = None,
) -> RunAllResult:
    """Regenerate the selected experiments, in parallel and cached.

    Parameters
    ----------
    ids:
        Experiment ids to run (``None`` = all 17). Ids tolerate zero
        padding exactly like the single-experiment CLI.
    jobs:
        Worker processes. ``None`` uses ``os.cpu_count()``; the effective
        count never exceeds the number of pending tasks, and ``1`` runs
        everything in-process (no pool).
    use_cache:
        ``False`` neither reads nor writes ``.repro_cache/``.
    cache_dir:
        Cache root (``.repro_cache`` by default).
    seed:
        Master seed handed to every seed-accepting driver.
    progress:
        Optional callback receiving one structured line per completed
        task and per completed experiment (the CLI passes ``print``).
    retries:
        Extra attempts per task after a failure (crash, raise, timeout,
        broken pool). ``0`` preserves fail-fast-per-task behaviour.
    task_timeout_s:
        Watchdog limit on one task's wall clock. Exceeding it counts the
        attempt as ``timeout``, terminates the worker pool, requeues the
        innocent in-flight tasks uncharged, and retries the culprit if
        attempts remain. ``None`` (default) disables the watchdog; it is
        also ignored in-process (``jobs=1`` cannot preempt itself).
    fault_plan:
        A :class:`~repro.faults.plan.FaultPlan` whose infrastructure
        directives are deterministically bound to tasks and detonated
        during execution. Tasks carrying worker directives are forced to
        execute even on a warm cache (a fault that never fires tests
        nothing); retried attempts always run clean.
    live_sink:
        A :class:`~repro.obs.live.LiveSink` to stream lifecycle events
        into (``run.start`` / ``part.state`` / ``fault`` / ``run.done``).
        Pool workers additionally publish their own ``running``
        transitions over a bounded queue. ``None`` (default) streams
        nothing; the sink never influences execution or results.
    slo_specs:
        :class:`~repro.obs.slo.SloSpec` objects to evaluate against each
        experiment's domain metrics as it merges. ``None`` (default) loads
        the registry-declared default spec of every selected experiment
        (missing spec files are skipped); pass ``[]`` to disable SLO
        evaluation entirely. Evaluation is pure observation — it never
        changes results, hashes, or the run's exit status.
    """
    started = time.perf_counter()
    ordered_ids = resolve_ids(ids)
    fingerprint = code_fingerprint()
    cache = ResultCache(cache_dir) if use_cache else None
    registry = obs_runtime.get_registry()
    spans = obs_runtime.get_spans()
    emit = progress or (lambda line: None)
    retries = max(0, int(retries))
    max_attempts = retries + 1

    # Everything this invocation records nests under one root span; spans
    # already present on the recorder (earlier runs in this process) are
    # excluded from the returned records by id.
    prior_ids = {record["span_id"] for record in spans.to_records()}
    root_span = spans.begin(
        "runner.run_all", experiments=len(ordered_ids), seed=seed
    )

    planned = [_plan_experiment(get_spec(key), seed, fingerprint) for key in ordered_ids]

    # Resolve the SLO specs up front so a malformed default surfaces as a
    # progress warning, never as a failed run (explicit specs are validated
    # by the CLI before reaching here).
    from repro.obs import slo as slo_mod

    if slo_specs is None:
        try:
            slo_specs = slo_mod.load_default_specs(ordered_ids)
        except Exception as exc:
            emit(f"[slo] skipping default specs: {exc}")
            slo_specs = []
    specs_by_experiment: Dict[str, List[Any]] = {}
    for slo_spec in slo_specs:
        specs_by_experiment.setdefault(slo_spec.experiment, []).append(slo_spec)
    slo_rows: List[Dict[str, Any]] = []

    # Bind fault directives to task labels before the cache probe: the
    # cache.corrupt point must damage entries ahead of their probe, and
    # worker-directive targets skip the cache so their faults actually fire.
    fault_events: List[Dict[str, Any]] = []
    assignment: Dict[str, Tuple[FaultDirective, ...]] = {}
    if fault_plan is not None:
        all_labels = [t.label for plan in planned for t in plan.tasks]
        assignment = fault_plan.assign(all_labels)
        for label in sorted(assignment):
            for directive in assignment[label]:
                fault_events.append(
                    {"point": directive.point, "task": label, "param": directive.param}
                )

    # Cache probe: hits load immediately, misses queue for execution.
    results: Dict[str, Tuple[Any, float]] = {}  # key -> (result, wall_s)
    errors: Dict[str, str] = {}  # key -> error text
    hits: Dict[str, bool] = {}
    pending: List[_TaskState] = []
    quarantined_before = 0

    def _drain_quarantine(label: str) -> None:
        nonlocal quarantined_before
        if cache is None:
            return
        for key in cache.quarantine_events[quarantined_before:]:
            emit(f"[cache] quarantined corrupt entry {key[:12]} ({label}); re-executing")
        quarantined_before = len(cache.quarantine_events)

    for plan in planned:
        rank = _runtime_rank(plan.spec)
        for task, key in zip(plan.tasks, plan.keys):
            directives = assignment.get(task.label, ())
            worker_directives = tuple(
                d for d in directives if d.point in WORKER_FAULT_POINTS
            )
            if cache is not None and any(
                d.point == "cache.corrupt" for d in directives
            ):
                fired = cache.corrupt_entry(key)
                fault_events.append(
                    {"point": "cache.corrupt", "task": task.label, "fired": fired}
                )
            hit = False
            if cache is not None and not worker_directives:
                hit, value = cache.get(key)
                _drain_quarantine(task.label)
                if hit:
                    results[key] = (value, 0.0)
                    registry.counter("runner.cache.hits").inc()
            hits[key] = hit
            if not hit:
                registry.counter("runner.cache.misses").inc()
                pending.append(
                    _TaskState(task=task, key=key, rank=rank, faults=worker_directives)
                )

    # Longest-processing-time-first: slow experiments enter the pool first
    # so the run's tail is not one straggler on an otherwise idle pool.
    pending.sort(key=lambda state: -state.rank)
    total_tasks = len(pending)
    effective_jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    effective_jobs = max(1, min(effective_jobs, max(total_tasks, 1)))

    # Stream the opening roster: the run header, every cache hit, every
    # queued task, and the bound fault directives. From here on the sink
    # receives each state transition as it happens.
    if live_sink is not None:
        live_sink.emit(
            "run.start",
            ids=list(ordered_ids),
            experiments=len(planned),
            tasks=total_tasks,
            jobs=effective_jobs,
            seed=seed,
            retries=retries,
        )
        for plan in planned:
            for task, key in zip(plan.tasks, plan.keys):
                if hits[key]:
                    live_sink.part_state(task.experiment_id, task.part, "cached")
        for state in pending:
            live_sink.part_state(state.task.experiment_id, state.task.part, "queued")
        for event in fault_events:
            live_sink.emit("fault", **event)

    outcomes: Dict[str, TaskOutcome] = {}  # key -> executed-task telemetry
    completed = 0
    worker_spans_dropped = 0
    live_dropped = 0

    def _record(state: _TaskState, outcome: TaskOutcome) -> None:
        nonlocal completed, worker_spans_dropped, live_dropped
        completed += 1
        worker_spans_dropped += outcome.spans_dropped
        live_dropped += outcome.live_dropped
        state.failure_kind = None
        state.error = None
        results[state.key] = (outcome.result, outcome.wall_s)
        outcomes[state.key] = outcome
        if live_sink is not None:
            live_sink.part_state(
                state.task.experiment_id,
                state.task.part,
                "done",
                wall_s=round(outcome.wall_s, 3),
                attempt=state.attempts,
            )
        registry.histogram(
            "runner.part.wall_s", experiment=state.task.experiment_id
        ).observe(outcome.wall_s)
        registry.counter("runner.parts.executed").inc()
        emit(
            f"[task {completed}/{total_tasks}] {state.label} "
            f"{outcome.wall_s:.2f}s"
            + (f" (attempt {state.attempts})" if state.attempts > 1 else "")
        )
        if cache is not None:
            cache.put(
                state.key,
                outcome.result,
                meta={
                    "experiment": state.task.experiment_id,
                    "part": state.task.part,
                    "target": state.task.target,
                    "seed": state.task.seed,
                    "duration_s": round(outcome.wall_s, 6),
                },
            )

    def _fail_or_retry(
        state: _TaskState,
        kind: str,
        message: str,
        queue: Deque[_TaskState],
        synthesize_span: bool,
    ) -> None:
        """Route one failed attempt: requeue it clean, or record the loss.

        Pool workers that die take their span records with them, so the
        parent synthesizes an error-status ``runner.task`` span here —
        failures must be at least as observable as successes.
        """
        if synthesize_span:
            synth = spans.begin(
                "runner.task",
                parent_id=root_span.span_id if spans.enabled else None,
                experiment=state.task.experiment_id,
                part=state.task.part,
                attempt=state.attempts,
                synthesized=True,
            )
            spans.end(synth, status="error", failure=kind)
        if state.attempts < max_attempts:
            delay_s = backoff_s(seed, state.label, state.attempts)
            state.ready_at = time.perf_counter() + delay_s
            if live_sink is not None:
                live_sink.part_state(
                    state.task.experiment_id,
                    state.task.part,
                    "retrying",
                    attempt=state.attempts,
                    kind=kind,
                    backoff_s=round(delay_s, 4),
                )
            registry.counter(
                "runner.parts.retried", experiment=state.task.experiment_id
            ).inc()
            registry.histogram(
                "runner.retry.backoff_s", experiment=state.task.experiment_id
            ).observe(delay_s)
            emit(
                f"[retry] {state.label} attempt {state.attempts}/{max_attempts} "
                f"failed ({kind}: {message}); requeueing in {delay_s:.3f}s"
            )
            # Directives are one-shot: the retried attempt runs clean.
            state.faults = ()
            queue.append(state)
            return
        state.failure_kind = kind
        state.error = message
        errors[state.key] = message
        if live_sink is not None:
            live_sink.part_state(
                state.task.experiment_id,
                state.task.part,
                "failed",
                attempt=state.attempts,
                kind=kind,
                error=message,
            )
        registry.counter(
            "runner.parts.failed", experiment=state.task.experiment_id
        ).inc()
        emit(
            f"[task] {state.label} FAILED after "
            f"{state.attempts} attempt(s) ({kind}): {message}"
        )

    queue: Deque[_TaskState] = deque(pending)
    interrupted = False

    with _InterruptGuard() as guard:
        if effective_jobs == 1:
            # In-process: the ambient recorders capture everything directly;
            # the task span lives on the parent recorder and engine work is
            # attributed per-task by diffing the tracked-simulator list.
            # Process-killing faults degrade to raises (the "worker" here is
            # the orchestrator itself) and the watchdog is inert — a single
            # thread cannot preempt its own driver call.
            while queue and not guard.triggered:
                state = queue.popleft()
                wait_s = state.ready_at - time.perf_counter()
                if wait_s > 0:
                    time.sleep(wait_s)
                state.attempts += 1
                if live_sink is not None:
                    live_sink.part_state(
                        state.task.experiment_id,
                        state.task.part,
                        "running",
                        attempt=state.attempts,
                    )
                sims_before = len(obs_runtime.simulator_stats())
                task_span = spans.begin(
                    "runner.task",
                    parent_id=root_span.span_id if spans.enabled else None,
                    experiment=state.task.experiment_id,
                    part=state.task.part,
                    attempt=state.attempts,
                )
                spec = replace(
                    state.task, faults=state.faults, attempt=state.attempts
                )
                try:
                    outcome = execute_task(spec)
                except Exception as exc:
                    spans.end(task_span, status="error")
                    _fail_or_retry(
                        state,
                        "error",
                        f"{type(exc).__name__}: {exc}",
                        queue,
                        synthesize_span=False,
                    )
                    continue
                spans.end(task_span)
                outcome.engine = obs_runtime.aggregate_engine_stats(
                    obs_runtime.simulator_stats()[sims_before:]
                )
                _record(state, outcome)
        elif queue:
            # Pool fan-out: each task ships a SpanContext so the worker
            # process mirrors the parent's observability mode (workers
            # re-import repro with default runtime state — --no-obs must
            # propagate) and mints span ids under a collision-free per-task
            # prefix. Submission is bounded to the worker count so a task's
            # submit time approximates its start time — that is what the
            # watchdog deadline is measured from.
            pool = ProcessPoolExecutor(max_workers=effective_jobs)
            in_flight: Dict[Any, _TaskState] = {}  # future -> state
            deadlines: Dict[Any, float] = {}  # future -> submit time
            task_index = 0
            live_channel = None
            if live_sink is not None:
                from repro.obs.live import LiveChannel

                # Best-effort: a sandbox that cannot spawn the manager
                # process costs the `running` transitions, nothing else.
                try:
                    live_channel = LiveChannel()
                except Exception:
                    live_channel = None

            def _rebuild_pool(requeued: int) -> None:
                nonlocal pool
                registry.counter("runner.pool.rebuilds").inc()
                emit(f"[pool] rebuilding worker pool ({requeued} task(s) requeued)")
                stale = list((getattr(pool, "_processes", None) or {}).values())
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
                for proc in stale:
                    # Private attr, hence best-effort: without it a hung
                    # worker lingers until process exit, which is survivable.
                    try:
                        proc.terminate()
                    except Exception:
                        pass
                pool = ProcessPoolExecutor(max_workers=effective_jobs)

            def _submit(state: _TaskState) -> None:
                nonlocal task_index
                task_index += 1
                state.attempts += 1
                ctx = SpanContext(
                    root_id=root_span.span_id if spans.enabled else None,
                    prefix=f"t{task_index:02d}.",
                    obs_enabled=obs_runtime.enabled(),
                    span_detail=spans.detail,
                )
                spec = replace(
                    state.task,
                    obs=ctx,
                    faults=state.faults,
                    live=(
                        live_channel.publisher()
                        if live_channel is not None
                        else None
                    ),
                    attempt=state.attempts,
                )
                try:
                    future = pool.submit(execute_task, spec)
                except BrokenProcessPool:
                    _rebuild_pool(requeued=0)
                    future = pool.submit(execute_task, spec)
                in_flight[future] = state
                deadlines[future] = time.perf_counter()
                if live_sink is not None:
                    live_sink.part_state(
                        state.task.experiment_id,
                        state.task.part,
                        "submitted",
                        attempt=state.attempts,
                    )

            def _pop_ready() -> Optional[_TaskState]:
                # FIFO among eligible tasks; a backing-off retry parks in
                # place without blocking fresh work behind it. ``wait``
                # below ticks every poll interval, so a queue of
                # not-yet-ready retries paces itself instead of spinning.
                now = time.perf_counter()
                for index, state in enumerate(queue):
                    if state.ready_at <= now:
                        del queue[index]
                        return state
                return None

            try:
                while (queue or in_flight) and not guard.triggered:
                    while (
                        queue
                        and len(in_flight) < effective_jobs
                        and not guard.triggered
                    ):
                        state = _pop_ready()
                        if state is None:
                            break
                        _submit(state)
                    if not in_flight:
                        # Everything pending is backing off; wait() would
                        # return instantly on an empty set and spin.
                        time.sleep(_POLL_INTERVAL_S)
                        continue
                    done, _ = wait(
                        set(in_flight),
                        timeout=_POLL_INTERVAL_S,
                        return_when=FIRST_COMPLETED,
                    )
                    if live_channel is not None:
                        for record in live_channel.drain():
                            live_sink.ingest(record)
                    broken = False
                    for future in done:
                        state = in_flight.pop(future)
                        deadlines.pop(future, None)
                        try:
                            outcome = future.result()
                        except BrokenProcessPool as exc:
                            broken = True
                            _fail_or_retry(
                                state,
                                "pool_broken",
                                "worker process died mid-task "
                                f"({type(exc).__name__})",
                                queue,
                                synthesize_span=True,
                            )
                        except Exception as exc:
                            _fail_or_retry(
                                state,
                                "error",
                                f"{type(exc).__name__}: {exc}",
                                queue,
                                synthesize_span=True,
                            )
                        else:
                            spans.adopt(outcome.spans)
                            _record(state, outcome)
                    overdue: List[Any] = []
                    if task_timeout_s is not None:
                        now = time.perf_counter()
                        overdue = [
                            future
                            for future, submitted in deadlines.items()
                            if now - submitted > task_timeout_s
                        ]
                    if broken or overdue:
                        # The pool is unusable (broken) or harbouring a hung
                        # worker (overdue): charge the culprits, requeue the
                        # innocents uncharged, and start a fresh pool.
                        for future in overdue:
                            state = in_flight.pop(future)
                            deadlines.pop(future, None)
                            state.timed_out = True
                            emit(
                                f"[watchdog] {state.label} exceeded "
                                f"{task_timeout_s:.1f}s; terminating its pool"
                            )
                            _fail_or_retry(
                                state,
                                "timeout",
                                f"exceeded task timeout {task_timeout_s:.1f}s",
                                queue,
                                synthesize_span=True,
                            )
                        for future, state in list(in_flight.items()):
                            if broken:
                                # A broken pool reports the same exception
                                # for every in-flight future; charge them all
                                # rather than guess the culprit.
                                _fail_or_retry(
                                    state,
                                    "pool_broken",
                                    "worker pool broke while task was in flight",
                                    queue,
                                    synthesize_span=True,
                                )
                            else:
                                # Innocent victim of a watchdog rebuild: the
                                # attempt never ran to completion through no
                                # fault of its own, so it is not charged.
                                state.attempts -= 1
                                queue.append(state)
                        requeued = len(in_flight)
                        in_flight.clear()
                        deadlines.clear()
                        _rebuild_pool(requeued)
            finally:
                if live_channel is not None:
                    for record in live_channel.drain():
                        live_sink.ingest(record)
                    live_channel.close()
                # Snapshot the worker processes BEFORE shutdown: the
                # executor nulls out ``_processes`` as part of shutdown,
                # and an unterminated hung worker would block interpreter
                # exit (atexit joins the pool's management thread).
                stale = list((getattr(pool, "_processes", None) or {}).values())
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
                if guard.triggered:
                    for proc in stale:
                        try:
                            proc.terminate()
                        except Exception:
                            pass

        interrupted = guard.triggered

    if interrupted:
        emit("[interrupt] signal received; flushing partial results")
        for state in pending:
            if state.key not in results and state.key not in errors:
                state.failure_kind = "interrupted"
                state.error = "interrupted before completion"
                errors[state.key] = state.error
                if live_sink is not None:
                    live_sink.part_state(
                        state.task.experiment_id, state.task.part, "interrupted"
                    )

    # Merge parts, shape-check, and assemble the per-experiment records.
    states_by_key = {state.key: state for state in pending}
    runs: List[ExperimentRun] = []
    for index, plan in enumerate(planned, start=1):
        parts = []
        for task, key in zip(plan.tasks, plan.keys):
            state = states_by_key.get(key)
            parts.append(
                PartRun(
                    part=task.part,
                    key=key,
                    cache_hit=hits[key],
                    duration_s=results[key][1] if key in results else 0.0,
                    engine=outcomes[key].engine if key in outcomes else {},
                    metrics=outcomes[key].metrics if key in outcomes else [],
                    attempts=state.attempts if state else 0,
                    timed_out=state.timed_out if state else False,
                    failure_kind=state.failure_kind if state else None,
                    error=state.error if state else None,
                )
            )
        run = ExperimentRun(
            id=plan.spec.id,
            runtime=plan.spec.runtime,
            seed=plan.seed,
            parts=parts,
            duration_s=sum(p.duration_s for p in parts),
            cache_hit=bool(parts) and all(p.cache_hit for p in parts),
        )
        failed = [
            (task.part, errors[key])
            for task, key in zip(plan.tasks, plan.keys)
            if key in errors
        ]
        if plan.error is not None:
            run.error = plan.error
        elif failed:
            run.error = "; ".join(f"{part}: {message}" for part, message in failed)
        else:
            part_results = [results[key][0] for key in plan.keys]
            run.result = (
                plan.merge(part_results) if plan.merge is not None else part_results[0]
            )
            run.result_sha256 = hashlib.sha256(
                pickle.dumps(run.result, protocol=pickle.HIGHEST_PROTOCOL)
            ).hexdigest()
            run.shape_ok, run.shape_detail = _shape_check(plan.spec, run.result)
            run.domain = slo_mod.domain_metrics(run.id, run.result)
        runs.append(run)
        # Online SLO evaluation: verdicts stream out the moment the
        # experiment merges, so `repro watch` shows SLO state mid-run.
        experiment_specs = specs_by_experiment.get(run.id, [])
        if experiment_specs:
            rows = slo_mod.evaluate_specs(
                experiment_specs,
                {run.id: run.domain},
                errors={run.id: run.error},
            )
            slo_rows.extend(rows)
            violated = sum(1 for row in rows if row["status"] == "violated")
            if violated:
                emit(
                    f"[slo] {run.id}: {violated}/{len(rows)} objective(s) violated"
                )
            if live_sink is not None:
                live_sink.emit(
                    "experiment.slo",
                    experiment=run.id,
                    ok=sum(1 for row in rows if row["status"] == "ok"),
                    violated=violated,
                    skipped=sum(1 for row in rows if row["status"] == "skipped"),
                    objectives=[
                        {
                            "id": row["id"],
                            "status": row["status"],
                            "margin": row["margin"],
                        }
                        for row in rows
                    ],
                )
        status = "ok" if run.ok else "FAIL"
        source = "hit" if run.cache_hit else ("partial" if any(p.cache_hit for p in parts) else "run")
        emit(
            f"[{index}/{len(planned)}] {run.id:<7} {status:<4} cache={source:<7} "
            f"{run.duration_s:7.2f}s  {run.error or run.shape_detail}"
        )

    wall_s = time.perf_counter() - started
    registry.gauge("runner.run.wall_s").set(wall_s)
    registry.gauge("runner.run.experiments").set(len(runs))
    ok_count = sum(1 for run in runs if run.ok)
    spans.end(
        root_span, ok=ok_count, failed=len(runs) - ok_count, interrupted=interrupted
    )
    run_spans = [
        record
        for record in spans.to_records()
        if record["span_id"] not in prior_ids
    ]
    spans_dropped = spans.dropped + worker_spans_dropped
    slo_rows.sort(key=lambda row: (row["experiment"], row["id"]))
    if live_sink is not None:
        live_sink.emit(
            "run.done",
            ok=ok_count,
            failed=len(runs) - ok_count,
            cache_hits=sum(1 for run in runs if run.cache_hit),
            wall_s=round(wall_s, 3),
            interrupted=interrupted,
            spans_dropped=spans_dropped,
            live_dropped=live_dropped,
            slo_violated=sum(
                1 for row in slo_rows if row["status"] == "violated"
            ),
        )
    return RunAllResult(
        runs=runs,
        jobs=effective_jobs,
        seed=seed,
        cache_enabled=use_cache,
        cache_dir=str(cache_dir) if use_cache else None,
        code_fingerprint=fingerprint,
        wall_s=wall_s,
        spans=run_spans,
        retries=retries,
        task_timeout_s=task_timeout_s,
        interrupted=interrupted,
        fault_plan=fault_plan.describe() if fault_plan is not None else None,
        fault_events=fault_events,
        quarantined=list(cache.quarantine_events) if cache is not None else [],
        spans_dropped=spans_dropped,
        live_dropped=live_dropped,
        slo_rows=slo_rows,
        slo_spec_paths=[spec.path for spec in slo_specs],
    )
