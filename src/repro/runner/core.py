"""The orchestrator: plan, cache-check, fan out, merge, shape-check.

:func:`run_all` regenerates any subset of the paper's 17 registry
experiments in one call:

1. **Plan** — each experiment becomes one task, or several independent
   part tasks when its :class:`~repro.experiments.registry.ExperimentSpec`
   declares a sweep decomposition (Fig 5 by threshold, Fig 6 by scheme,
   Fig 14 by home, ...).
2. **Cache check** — every task's :func:`~repro.runner.cache.cache_key`
   is probed against the content-addressed store; hits replay instantly.
3. **Execute** — remaining tasks fan out over a
   ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` workers), slowest
   runtime class first so the pool drains evenly. ``jobs=1`` runs the same
   plan in-process; both modes produce byte-identical results because
   every task builds its own simulator from the same seed.
4. **Merge + check** — part results are merged in canonical order and the
   experiment's shape check validates the paper's headline claim.

Per-task wall-clock and cache hit/miss counts flow through the shared
``repro.obs`` metrics registry (``runner.*`` instruments); the caller gets
a :class:`RunAllResult` from which ``run_manifest.json`` is rendered
(:mod:`repro.runner.manifest`).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.registry import (
    RUNTIME_CLASSES,
    SPECS,
    ExperimentSpec,
    get_spec,
    resolve_target,
)
from repro.obs import runtime as obs_runtime
from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    ResultCache,
    cache_key,
    code_fingerprint,
)
from repro.runner.tasks import SpanContext, TaskOutcome, TaskSpec, execute_task

#: Progress callback type: receives one formatted line per event.
ProgressFn = Callable[[str], None]


@dataclass
class PartRun:
    """Outcome of one task (one sweep part, or the whole experiment)."""

    part: str
    key: str
    cache_hit: bool
    duration_s: float
    #: Engine profile attributed to this task: worker-local aggregate for
    #: pool tasks, tracked-simulator delta for in-process tasks, ``{}`` for
    #: cache hits.
    engine: Dict[str, Any] = field(default_factory=dict)
    #: The executing worker's full metrics snapshot (pool tasks only; the
    #: parent's ambient registry already holds in-process telemetry).
    metrics: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class ExperimentRun:
    """Outcome of one experiment: merged result plus per-part records."""

    id: str
    runtime: str
    seed: Optional[int]
    parts: List[PartRun]
    result: Any = None
    result_sha256: str = ""
    duration_s: float = 0.0
    cache_hit: bool = False
    shape_ok: Optional[bool] = None
    shape_detail: str = ""
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Ran without error and passed (or had no) shape check."""
        return self.error is None and self.shape_ok is not False


@dataclass
class RunAllResult:
    """Everything one ``run-all`` invocation produced."""

    runs: List[ExperimentRun]
    jobs: int
    seed: int
    cache_enabled: bool
    cache_dir: Optional[str]
    code_fingerprint: str
    wall_s: float = 0.0
    #: Span records produced by this invocation (root ``runner.run_all``
    #: plus everything recorded or adopted beneath it).
    spans: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        """Experiments served entirely from cache."""
        return sum(1 for run in self.runs if run.cache_hit)

    @property
    def ok(self) -> bool:
        """Whether every experiment ran and shape-checked clean."""
        return all(run.ok for run in self.runs)

    def run_for(self, experiment_id: str) -> ExperimentRun:
        """Lookup of one experiment's run record."""
        for run in self.runs:
            if run.id == experiment_id:
                return run
        raise KeyError(experiment_id)


@dataclass
class _Planned:
    """One experiment's task list plus how to reassemble the result."""

    spec: ExperimentSpec
    seed: Optional[int]
    tasks: List[TaskSpec]
    keys: List[str]
    merge: Optional[Callable[[Sequence[Any]], Any]]
    #: Planning failure (broken target/sweep reference); recorded on the
    #: experiment's run instead of sinking the whole invocation.
    error: Optional[str] = None


def _plan_experiment(spec: ExperimentSpec, seed: int, fingerprint: str) -> _Planned:
    """Decompose one experiment into tasks and compute their cache keys."""
    try:
        return _plan_tasks(spec, seed, fingerprint)
    except ConfigurationError as exc:
        return _Planned(
            spec=spec, seed=None, tasks=[], keys=[], merge=None, error=str(exc)
        )


def _plan_tasks(spec: ExperimentSpec, seed: int, fingerprint: str) -> _Planned:
    if spec.sweep is not None:
        factory = resolve_target(spec.sweep)
        sweep_plan = factory(seed)
        tasks = [
            TaskSpec(
                experiment_id=spec.id,
                part=part.name,
                target=part.target,
                kwargs=dict(part.kwargs),
                seed=seed if "seed" in part.kwargs else None,
            )
            for part in sweep_plan.parts
        ]
        merge: Optional[Callable[[Sequence[Any]], Any]] = sweep_plan.merge
    else:
        accepts_seed = spec.accepts_seed()
        kwargs: Dict[str, Any] = {"seed": seed} if accepts_seed else {}
        tasks = [
            TaskSpec(
                experiment_id=spec.id,
                part="all",
                target=spec.target,
                kwargs=kwargs,
                seed=seed if accepts_seed else None,
            )
        ]
        merge = None
    keys = [
        cache_key(t.experiment_id, t.part, t.target, t.kwargs, t.seed, fingerprint)
        for t in tasks
    ]
    return _Planned(
        spec=spec,
        seed=seed if any(t.seed is not None for t in tasks) else None,
        tasks=tasks,
        keys=keys,
        merge=merge,
    )


def resolve_ids(ids: Optional[Sequence[str]]) -> List[str]:
    """Normalise a user id list to canonical registry order.

    ``None`` selects every registered experiment. Unknown ids raise
    :class:`~repro.errors.ConfigurationError`; duplicates collapse.
    """
    from repro.cli import normalize_experiment_id

    if ids is None:
        return list(SPECS)
    requested = []
    for raw in ids:
        key = normalize_experiment_id(raw.strip())
        if key not in SPECS:
            raise ConfigurationError(
                f"unknown experiment {raw!r}; known: {sorted(SPECS)}"
            )
        if key not in requested:
            requested.append(key)
    return [key for key in SPECS if key in requested]


def _runtime_rank(spec: ExperimentSpec) -> int:
    return RUNTIME_CLASSES.index(spec.runtime)


def _shape_check(spec: ExperimentSpec, result: Any) -> Tuple[Optional[bool], str]:
    """Run the experiment's shape check, reporting its own failures."""
    if spec.check is None:
        return None, ""
    try:
        check = resolve_target(spec.check)
        ok, detail = check(result)
        return bool(ok), detail
    except Exception as exc:  # a broken check must not sink the run
        return False, f"shape check raised {type(exc).__name__}: {exc}"


def run_all(
    ids: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    cache_dir: str = DEFAULT_CACHE_DIR,
    seed: int = 0,
    progress: Optional[ProgressFn] = None,
) -> RunAllResult:
    """Regenerate the selected experiments, in parallel and cached.

    Parameters
    ----------
    ids:
        Experiment ids to run (``None`` = all 17). Ids tolerate zero
        padding exactly like the single-experiment CLI.
    jobs:
        Worker processes. ``None`` uses ``os.cpu_count()``; the effective
        count never exceeds the number of pending tasks, and ``1`` runs
        everything in-process (no pool).
    use_cache:
        ``False`` neither reads nor writes ``.repro_cache/``.
    cache_dir:
        Cache root (``.repro_cache`` by default).
    seed:
        Master seed handed to every seed-accepting driver.
    progress:
        Optional callback receiving one structured line per completed
        task and per completed experiment (the CLI passes ``print``).
    """
    started = time.perf_counter()
    ordered_ids = resolve_ids(ids)
    fingerprint = code_fingerprint()
    cache = ResultCache(cache_dir) if use_cache else None
    registry = obs_runtime.get_registry()
    spans = obs_runtime.get_spans()
    emit = progress or (lambda line: None)

    # Everything this invocation records nests under one root span; spans
    # already present on the recorder (earlier runs in this process) are
    # excluded from the returned records by id.
    prior_ids = {record["span_id"] for record in spans.to_records()}
    root_span = spans.begin(
        "runner.run_all", experiments=len(ordered_ids), seed=seed
    )

    planned = [_plan_experiment(get_spec(key), seed, fingerprint) for key in ordered_ids]

    # Cache probe: hits load immediately, misses queue for execution.
    results: Dict[str, Tuple[Any, float]] = {}  # key -> (result, wall_s)
    errors: Dict[str, str] = {}  # key -> error text
    hits: Dict[str, bool] = {}
    pending: List[Tuple[int, TaskSpec, str]] = []  # (rank, task, key)
    for plan in planned:
        rank = _runtime_rank(plan.spec)
        for task, key in zip(plan.tasks, plan.keys):
            hit = False
            if cache is not None:
                hit, value = cache.get(key)
                if hit:
                    results[key] = (value, 0.0)
                    registry.counter("runner.cache.hits").inc()
            hits[key] = hit
            if not hit:
                registry.counter("runner.cache.misses").inc()
                pending.append((rank, task, key))

    # Longest-processing-time-first: slow experiments enter the pool first
    # so the run's tail is not one straggler on an otherwise idle pool.
    pending.sort(key=lambda item: -item[0])
    total_tasks = len(pending)
    effective_jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    effective_jobs = max(1, min(effective_jobs, max(total_tasks, 1)))

    outcomes: Dict[str, TaskOutcome] = {}  # key -> executed-task telemetry

    def _record(task: TaskSpec, key: str, outcome: TaskOutcome, done: int) -> None:
        results[key] = (outcome.result, outcome.wall_s)
        outcomes[key] = outcome
        registry.histogram(
            "runner.part.wall_s", experiment=task.experiment_id
        ).observe(outcome.wall_s)
        registry.counter("runner.parts.executed").inc()
        emit(
            f"[task {done}/{total_tasks}] {task.experiment_id}:{task.part} "
            f"{outcome.wall_s:.2f}s"
        )
        if cache is not None:
            cache.put(
                key,
                outcome.result,
                meta={
                    "experiment": task.experiment_id,
                    "part": task.part,
                    "target": task.target,
                    "seed": task.seed,
                    "duration_s": round(outcome.wall_s, 6),
                },
            )

    if effective_jobs == 1:
        # In-process: the ambient recorders capture everything directly; the
        # task span lives on the parent recorder and engine work is
        # attributed per-task by diffing the tracked-simulator list.
        for done, (_, task, key) in enumerate(pending, start=1):
            sims_before = len(obs_runtime.simulator_stats())
            task_span = spans.begin(
                "runner.task",
                parent_id=root_span.span_id if spans.enabled else None,
                experiment=task.experiment_id,
                part=task.part,
            )
            try:
                outcome = execute_task(task)
            except Exception as exc:
                spans.end(task_span, status="error")
                errors[key] = f"{type(exc).__name__}: {exc}"
                emit(f"[task {done}/{total_tasks}] {task.experiment_id}:{task.part} FAILED: {exc}")
                continue
            spans.end(task_span)
            outcome.engine = obs_runtime.aggregate_engine_stats(
                obs_runtime.simulator_stats()[sims_before:]
            )
            _record(task, key, outcome, done)
    elif pending:
        # Pool fan-out: each task ships a SpanContext so the worker process
        # mirrors the parent's observability mode (workers re-import repro
        # with default runtime state — satellite: --no-obs must propagate)
        # and mints span ids under a collision-free per-task prefix.
        with ProcessPoolExecutor(max_workers=effective_jobs) as pool:
            futures = {}
            for index, (_, task, key) in enumerate(pending, start=1):
                ctx = SpanContext(
                    root_id=root_span.span_id if spans.enabled else None,
                    prefix=f"t{index:02d}.",
                    obs_enabled=obs_runtime.enabled(),
                    span_detail=spans.detail,
                )
                futures[pool.submit(execute_task, replace(task, obs=ctx))] = (
                    task,
                    key,
                )
            for done, future in enumerate(as_completed(futures), start=1):
                task, key = futures[future]
                try:
                    outcome = future.result()
                except Exception as exc:
                    errors[key] = f"{type(exc).__name__}: {exc}"
                    emit(
                        f"[task {done}/{total_tasks}] "
                        f"{task.experiment_id}:{task.part} FAILED: {exc}"
                    )
                    continue
                spans.adopt(outcome.spans)
                _record(task, key, outcome, done)

    # Merge parts, shape-check, and assemble the per-experiment records.
    runs: List[ExperimentRun] = []
    for index, plan in enumerate(planned, start=1):
        parts = [
            PartRun(
                part=task.part,
                key=key,
                cache_hit=hits[key],
                duration_s=results[key][1] if key in results else 0.0,
                engine=outcomes[key].engine if key in outcomes else {},
                metrics=outcomes[key].metrics if key in outcomes else [],
            )
            for task, key in zip(plan.tasks, plan.keys)
        ]
        run = ExperimentRun(
            id=plan.spec.id,
            runtime=plan.spec.runtime,
            seed=plan.seed,
            parts=parts,
            duration_s=sum(p.duration_s for p in parts),
            cache_hit=bool(parts) and all(p.cache_hit for p in parts),
        )
        failed = [
            (task.part, errors[key])
            for task, key in zip(plan.tasks, plan.keys)
            if key in errors
        ]
        if plan.error is not None:
            run.error = plan.error
        elif failed:
            run.error = "; ".join(f"{part}: {message}" for part, message in failed)
        else:
            part_results = [results[key][0] for key in plan.keys]
            run.result = (
                plan.merge(part_results) if plan.merge is not None else part_results[0]
            )
            run.result_sha256 = hashlib.sha256(
                pickle.dumps(run.result, protocol=pickle.HIGHEST_PROTOCOL)
            ).hexdigest()
            run.shape_ok, run.shape_detail = _shape_check(plan.spec, run.result)
        runs.append(run)
        status = "ok" if run.ok else "FAIL"
        source = "hit" if run.cache_hit else ("partial" if any(p.cache_hit for p in parts) else "run")
        emit(
            f"[{index}/{len(planned)}] {run.id:<7} {status:<4} cache={source:<7} "
            f"{run.duration_s:7.2f}s  {run.error or run.shape_detail}"
        )

    wall_s = time.perf_counter() - started
    registry.gauge("runner.run.wall_s").set(wall_s)
    registry.gauge("runner.run.experiments").set(len(runs))
    ok_count = sum(1 for run in runs if run.ok)
    spans.end(root_span, ok=ok_count, failed=len(runs) - ok_count)
    run_spans = [
        record
        for record in spans.to_records()
        if record["span_id"] not in prior_ids
    ]
    return RunAllResult(
        runs=runs,
        jobs=effective_jobs,
        seed=seed,
        cache_enabled=use_cache,
        cache_dir=str(cache_dir) if use_cache else None,
        code_fingerprint=fingerprint,
        wall_s=wall_s,
        spans=run_spans,
    )
