"""Exception hierarchy for the PoWiFi reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch library failures without swallowing programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CodecError(ReproError):
    """A packet or frame could not be encoded or decoded."""


class TruncatedFrameError(CodecError):
    """The byte buffer ended before the structure being parsed did."""


class ChecksumError(CodecError):
    """A decoded header carried a checksum that does not match its bytes."""


class CircuitError(ReproError):
    """An analog circuit model was driven outside its valid operating range."""


class MediumError(SimulationError):
    """Invalid interaction with the shared wireless medium model."""


class QueueFullError(ReproError):
    """A bounded transmit queue rejected an enqueue."""


class ObservabilityError(ReproError):
    """The metrics/trace instrumentation layer was misused."""


class InjectedFault(ReproError):
    """A fault deliberately fired by the fault-injection subsystem.

    Raised (or simulated) only when a :class:`repro.faults.FaultPlan` armed
    the corresponding fault point — never during normal operation. The
    message always names the fault point so failure records stay
    attributable to the plan that caused them.
    """
