"""Unit conversions used throughout the PoWiFi reproduction.

The RF world mixes logarithmic (dB, dBm, dBi) and linear (watts, volts)
quantities, SI and imperial distances (the paper reports ranges in feet), and
several time bases (microseconds on the air, minutes between camera frames).
Centralising the conversions keeps the rest of the library honest about what a
number means.

Conventions
-----------
* Power is carried in **watts** internally; ``dbm``/``milliwatts`` helpers
  exist at the boundaries.
* Distance is carried in **metres** internally; the experiment drivers accept
  feet because the paper's figures use feet.
* Time is carried in **seconds** (floats) in the simulation engine.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum (m/s), used for wavelength computations.
SPEED_OF_LIGHT = 299_792_458.0

#: Metres per foot; the paper's distances are in feet.
METERS_PER_FOOT = 0.3048

#: Boltzmann constant (J/K) for thermal-noise calculations.
BOLTZMANN = 1.380649e-23

#: Standard noise-figure reference temperature (K).
T0_KELVIN = 290.0


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts.

    >>> round(dbm_to_watts(0.0), 6)
    0.001
    >>> round(dbm_to_watts(30.0), 3)
    1.0
    """
    return 10.0 ** (dbm / 10.0) / 1000.0


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises
    ------
    ValueError
        If ``watts`` is not strictly positive (zero power has no dB value).
    """
    if watts <= 0.0:
        raise ValueError(f"power must be > 0 W to express in dBm, got {watts!r}")
    return 10.0 * math.log10(watts * 1000.0)


def dbm_to_milliwatts(dbm: float) -> float:
    """Convert dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def milliwatts_to_dbm(milliwatts: float) -> float:
    """Convert milliwatts to dBm."""
    if milliwatts <= 0.0:
        raise ValueError(f"power must be > 0 mW, got {milliwatts!r}")
    return 10.0 * math.log10(milliwatts)


def db_to_linear(db: float) -> float:
    """Convert a dB ratio to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be > 0, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def feet_to_meters(feet: float) -> float:
    """Convert feet to metres (paper figures use feet)."""
    return feet * METERS_PER_FOOT

def meters_to_feet(meters: float) -> float:
    """Convert metres to feet."""
    return meters / METERS_PER_FOOT


def wavelength(frequency_hz: float) -> float:
    """Free-space wavelength in metres for ``frequency_hz``.

    >>> round(wavelength(2.437e9), 4)
    0.123
    """
    if frequency_hz <= 0.0:
        raise ValueError(f"frequency must be > 0 Hz, got {frequency_hz!r}")
    return SPEED_OF_LIGHT / frequency_hz


def thermal_noise_watts(bandwidth_hz: float, temperature_k: float = T0_KELVIN) -> float:
    """Thermal-noise floor ``kTB`` in watts over ``bandwidth_hz``."""
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be > 0 Hz, got {bandwidth_hz!r}")
    return BOLTZMANN * temperature_k * bandwidth_hz


def microseconds(us: float) -> float:
    """Express a duration given in microseconds as seconds."""
    return us * 1e-6


def seconds_to_us(seconds: float) -> float:
    """Express a duration given in seconds as microseconds."""
    return seconds * 1e6


def mbps(megabits_per_second: float) -> float:
    """Express a rate given in Mb/s as bits per second."""
    return megabits_per_second * 1e6


def joules_to_microjoules(joules: float) -> float:
    """Express energy in microjoules."""
    return joules * 1e6


def microjoules(uj: float) -> float:
    """Express an energy given in microjoules as joules."""
    return uj * 1e-6


def millijoules(mj: float) -> float:
    """Express an energy given in millijoules as joules."""
    return mj * 1e-3
