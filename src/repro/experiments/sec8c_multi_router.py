"""§8(c): multiple PoWiFi routers transmitting power concurrently.

The paper proposes letting co-located PoWiFi routers transmit power packets
simultaneously: collisions between undecoded broadcast packets are harmless,
and the aggregate occupancy each harvester sees stays high. This driver
measures aggregate occupancy and the power-frame collision fraction for
increasing router counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.multi_router import MultiRouterDeployment, MultiRouterResult
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


@dataclass
class MultiRouterStudy:
    """Results across router counts."""

    #: router count -> measurement.
    by_count: Dict[int, MultiRouterResult]

    def aggregate_cumulative(self, count: int) -> float:
        """Aggregate (harvester-visible) cumulative occupancy."""
        return self.by_count[count].aggregate_cumulative

    @property
    def occupancy_stays_high(self) -> bool:
        """The §8(c) claim: adding routers never collapses the aggregate."""
        baseline = self.aggregate_cumulative(min(self.by_count))
        return all(
            self.aggregate_cumulative(c) >= 0.9 * baseline for c in self.by_count
        )


def run_sec8c(
    router_counts=(1, 2, 3),
    duration_s: float = 1.0,
    seed: int = 0,
) -> MultiRouterStudy:
    """Measure aggregate occupancy for each router count."""
    by_count: Dict[int, MultiRouterResult] = {}
    for count in router_counts:
        sim = Simulator()
        streams = RandomStreams(seed)
        deployment = MultiRouterDeployment(sim, streams, router_count=count)
        by_count[count] = deployment.run(duration_s)
    return MultiRouterStudy(by_count=by_count)
