"""Fig 13: the battery-free camera through walls (§5.2, Experiments 2).

The router sits against a wall; the battery-free camera is five feet away on
the other side. Four materials (plus the free-space control): 1-inch
double-pane glass, a 1.8-inch wooden door, a 5.4-inch hollow wall, and a
7.9-inch double sheet-rock wall. Claim: more absorbent materials stretch the
inter-frame time, but the camera works through all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.experiments.fig12_camera import FIG12_OCCUPANCY
from repro.rf.link import LinkBudget, Transmitter
from repro.rf.materials import WALL_MATERIALS
from repro.sensors.camera import WiFiCamera

#: The Fig 13 x-axis, in its plotted order.
FIG13_MATERIALS = ("free-space", "wood", "glass", "hollow-wall", "sheetrock")

#: Camera placement (feet).
FIG13_DISTANCE_FEET = 5.0


@dataclass
class ThroughWallResult:
    """Fig 13's bars."""

    #: material name -> inter-frame time (minutes).
    inter_frame_minutes: Dict[str, float]

    @property
    def all_operational(self) -> bool:
        """The headline claim: the camera works through every wall."""
        return all(v != float("inf") for v in self.inter_frame_minutes.values())


def run_fig13(
    materials: Sequence[str] = FIG13_MATERIALS,
    distance_feet: float = FIG13_DISTANCE_FEET,
    occupancy: float = FIG12_OCCUPANCY,
) -> ThroughWallResult:
    """The full Fig 13 measurement."""
    link = LinkBudget(Transmitter(tx_power_dbm=30.0))
    camera = WiFiCamera(battery_recharging=False)
    results: Dict[str, float] = {}
    for name in materials:
        wall = WALL_MATERIALS[name]
        outcome = camera.evaluate_at(
            link, distance_feet, occupancy, wall=wall if wall.attenuation_db else None
        )
        results[name] = outcome.inter_frame_minutes
    return ThroughWallResult(inter_frame_minutes=results)
