"""Fig 10: available power at the rectifier output vs input RF power
(§4.2(b)), per Wi-Fi channel, for both harvester variants.

The conducted measurement: a cable couples a Wi-Fi transmitter's output into
the harvester; input power sweeps −20…+4 dBm on channels 1, 6 and 11. Key
claims: output scales with input; the battery-charging harvester operates
down to −19.3 dBm versus −17.8 dBm battery-free; the three channels behave
near-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.harvester.harvester import (
    Harvester,
    battery_free_harvester,
    battery_recharging_harvester,
)
from repro.mac80211.channels import channel_frequency_hz

#: Input power sweep of Fig 10 (dBm).
DEFAULT_INPUT_POWERS_DBM: Tuple[float, ...] = tuple(range(-20, 5, 1))

#: The channels measured.
FIG10_CHANNELS: Tuple[int, int, int] = (1, 6, 11)


@dataclass
class RectifierSweepResult:
    """One harvester's Fig 10 curves."""

    name: str
    #: channel -> [(input dBm, output W)] series.
    curves: Dict[int, List[Tuple[float, float]]]
    #: channel -> measured sensitivity (dBm).
    sensitivity_dbm: Dict[int, float]

    def output_at(self, channel: int, input_dbm: float) -> float:
        """Output power (W) at one sweep point."""
        for dbm, watts in self.curves[channel]:
            if dbm == input_dbm:
                return watts
        raise KeyError(f"no point at channel={channel} input={input_dbm}")

    @property
    def worst_sensitivity_dbm(self) -> float:
        """The least sensitive channel (the figure quotes one number)."""
        return max(self.sensitivity_dbm.values())


def sweep_harvester(
    harvester: Harvester,
    input_powers_dbm: Sequence[float] = DEFAULT_INPUT_POWERS_DBM,
    channels: Sequence[int] = FIG10_CHANNELS,
) -> RectifierSweepResult:
    """Run the conducted sweep on one harvester."""
    curves: Dict[int, List[Tuple[float, float]]] = {}
    sensitivity: Dict[int, float] = {}
    for channel in channels:
        freq = channel_frequency_hz(channel)
        curves[channel] = [
            (dbm, harvester.rectifier_output_power_w(dbm, freq))
            for dbm in input_powers_dbm
        ]
        sensitivity[channel] = harvester.sensitivity_dbm(freq)
    return RectifierSweepResult(
        name=harvester.name, curves=curves, sensitivity_dbm=sensitivity
    )


def run_fig10(
    input_powers_dbm: Sequence[float] = DEFAULT_INPUT_POWERS_DBM,
) -> Tuple[RectifierSweepResult, RectifierSweepResult]:
    """Both harvesters' sweeps, as in Fig 10(a)/(b)."""
    return (
        sweep_harvester(battery_free_harvester(), input_powers_dbm),
        sweep_harvester(battery_recharging_harvester(), input_powers_dbm),
    )
