"""Sweep decompositions: split one experiment into independent part tasks.

The paper's heavier experiments are internally embarrassingly parallel —
Fig 5 sweeps four queue thresholds over a delay grid, Fig 6 runs four
schemes against the same workload, Fig 14 deploys six homes — and every
part builds its own testbed from the same master seed, so parts can run in
any order (or in different processes) without perturbing each other.

Each ``<id>_sweep`` factory here is referenced from the experiment's
:class:`~repro.experiments.registry.ExperimentSpec` and returns a
:class:`SweepPlan`: the part tasks plus a merge function whose output is
**byte-identical** (equal pickles) to a monolithic driver call with the
same arguments. That identity is what lets ``repro.runner`` fan parts out
across worker processes and still regenerate exactly the figures the
sequential CLI produces; ``tests/test_runner_run_all.py`` and
``benchmarks/test_runner_speedup.py`` pin it.

Merging relies on the drivers building their result dicts in the sweep's
canonical order (thresholds ascending, ``FIG6_SCHEMES`` order, home order),
so the merge functions insert part results in that same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Sequence, Tuple

from repro.core.config import Scheme
from repro.experiments.base import FIG6_SCHEMES
from repro.experiments.fig05_delay_sweep import (
    DEFAULT_DELAYS_US,
    DEFAULT_THRESHOLDS,
    DelaySweepResult,
)
from repro.experiments.fig08_fairness import (
    DEFAULT_NEIGHBOR_RATES,
    FIG8_SCHEMES,
    FairnessResult,
)
from repro.experiments.fig14_homes import HomeStudyResult
from repro.experiments.sec8c_multi_router import MultiRouterStudy
from repro.workloads.homes import HOME_DEPLOYMENTS


@dataclass(frozen=True)
class SweepPart:
    """One independently runnable slice of an experiment.

    Attributes
    ----------
    name:
        Stable human-readable part label (``"threshold=1"``,
        ``"scheme=powifi"``, ``"home=3"``); part of the result cache key,
        so renaming a part invalidates its cached runs.
    target:
        ``"module:callable"`` driver reference for this part.
    kwargs:
        Complete keyword arguments for the part (the factory bakes the
        seed in; the runner calls ``target(**kwargs)`` verbatim).
    """

    name: str
    target: str
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepPlan:
    """The part tasks of one experiment plus their merge function."""

    parts: Tuple[SweepPart, ...]
    #: Combines the part results (in :attr:`parts` order) into the same
    #: object a monolithic driver call would have returned.
    merge: Callable[[Sequence[Any]], Any]


def fig5_sweep(
    seed: int = 0,
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
    delays_us: Sequence[float] = DEFAULT_DELAYS_US,
    duration_s: float = 2.0,
) -> SweepPlan:
    """Fig 5 split by queue threshold (one delay-grid curve per part)."""
    parts = tuple(
        SweepPart(
            name=f"threshold={threshold}",
            target="repro.experiments.fig05_delay_sweep:run_fig05",
            kwargs={
                "thresholds": (threshold,),
                "delays_us": tuple(delays_us),
                "duration_s": duration_s,
                "seed": seed,
            },
        )
        for threshold in thresholds
    )

    def merge(results: Sequence[DelaySweepResult]) -> DelaySweepResult:
        merged = DelaySweepResult()
        for partial in results:
            merged.curves.update(partial.curves)
        return merged

    return SweepPlan(parts=parts, merge=merge)


def _scheme_sweep(
    target: str,
    seed: int,
    schemes: Sequence[Scheme],
    **driver_kwargs: Any,
) -> SweepPlan:
    """Shared shape of the Fig 6 sweeps: one part per §4.1 scheme.

    ``driver_kwargs`` pass through to every part (reduced-scale runs in
    tests); the defaults match a monolithic driver call exactly.
    """
    parts = tuple(
        SweepPart(
            name=f"scheme={scheme.value}",
            target=target,
            kwargs={"schemes": (scheme,), "seed": seed, **driver_kwargs},
        )
        for scheme in schemes
    )

    def merge(results: Sequence[Dict[Scheme, Any]]) -> Dict[Scheme, Any]:
        merged: Dict[Scheme, Any] = {}
        for partial in results:
            merged.update(partial)
        return merged

    return SweepPlan(parts=parts, merge=merge)


def fig6a_sweep(
    seed: int = 0,
    schemes: Sequence[Scheme] = FIG6_SCHEMES,
    **driver_kwargs: Any,
) -> SweepPlan:
    """Fig 6a (UDP throughput) split by scheme."""
    return _scheme_sweep(
        "repro.experiments.fig06_traffic:run_fig06a", seed, schemes, **driver_kwargs
    )


def fig6b_sweep(
    seed: int = 0,
    schemes: Sequence[Scheme] = FIG6_SCHEMES,
    **driver_kwargs: Any,
) -> SweepPlan:
    """Fig 6b (TCP throughput CDFs) split by scheme."""
    return _scheme_sweep(
        "repro.experiments.fig06_traffic:run_fig06b", seed, schemes, **driver_kwargs
    )


def fig6c_sweep(
    seed: int = 0,
    schemes: Sequence[Scheme] = FIG6_SCHEMES,
    **driver_kwargs: Any,
) -> SweepPlan:
    """Fig 6c (page-load times) split by scheme."""
    return _scheme_sweep(
        "repro.experiments.fig06_traffic:run_fig06c", seed, schemes, **driver_kwargs
    )


def fig8_sweep(
    seed: int = 0,
    schemes: Sequence[Scheme] = FIG8_SCHEMES,
    neighbor_rates: Sequence[float] = DEFAULT_NEIGHBOR_RATES,
    duration_s: float = 2.0,
) -> SweepPlan:
    """Fig 8 (neighbour fairness) split by scheme."""
    parts = tuple(
        SweepPart(
            name=f"scheme={scheme.value}",
            target="repro.experiments.fig08_fairness:run_fig08",
            kwargs={
                "schemes": (scheme,),
                "neighbor_rates": tuple(neighbor_rates),
                "duration_s": duration_s,
                "seed": seed,
            },
        )
        for scheme in schemes
    )

    def merge(results: Sequence[FairnessResult]) -> FairnessResult:
        throughput: Dict[Scheme, Dict[float, float]] = {}
        for partial in results:
            throughput.update(partial.throughput)
        return FairnessResult(throughput=throughput)

    return SweepPlan(parts=parts, merge=merge)


def fig14_sweep(
    seed: int = 0,
    duration_s: float = 24 * 3600.0,
    window_s: float = 60.0,
) -> SweepPlan:
    """Fig 14 (six-home study) split by home, via ``run_home``."""
    parts = tuple(
        SweepPart(
            name=f"home={profile.index}",
            target="repro.experiments.fig14_homes:run_home",
            kwargs={
                "profile": profile,
                "seed": seed,
                "duration_s": duration_s,
                "window_s": window_s,
            },
        )
        for profile in HOME_DEPLOYMENTS
    )

    def merge(results: Sequence[Any]) -> HomeStudyResult:
        return HomeStudyResult(homes=list(results))

    return SweepPlan(parts=parts, merge=merge)


def sec8c_sweep(
    seed: int = 0,
    router_counts: Sequence[int] = (1, 2, 3),
    duration_s: float = 1.0,
) -> SweepPlan:
    """§8(c) (concurrent routers) split by router count."""
    parts = tuple(
        SweepPart(
            name=f"routers={count}",
            target="repro.experiments.sec8c_multi_router:run_sec8c",
            kwargs={
                "router_counts": (count,),
                "duration_s": duration_s,
                "seed": seed,
            },
        )
        for count in router_counts
    )

    def merge(results: Sequence[MultiRouterStudy]) -> MultiRouterStudy:
        by_count: Dict[int, Any] = {}
        for partial in results:
            by_count.update(partial.by_count)
        return MultiRouterStudy(by_count=by_count)

    return SweepPlan(parts=parts, merge=merge)
