"""Fig 14 and Table 1: the six-home deployment study (§6).

Each home runs a PoWiFi router for 24 hours; the router logs per-channel
occupancy every 60 s. Claims: per-channel occupancy varies strongly with
neighbouring load (carrier-sense scale-back); cumulative occupancy stays
high throughout; mean cumulative occupancies land in the 78–127 % range
across homes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.occupancy import OccupancySeries
from repro.obs import runtime as obs_runtime
from repro.sim.rng import RandomStreams
from repro.workloads.homes import HOME_DEPLOYMENTS, HomeDeployment, HomeProfile


@dataclass
class HomeRunResult:
    """One home's 24-hour log."""

    profile: HomeProfile
    per_channel: Dict[int, OccupancySeries]
    cumulative: OccupancySeries

    @property
    def mean_cumulative(self) -> float:
        """The per-home number the paper summarises (78–127 %)."""
        return self.cumulative.mean


@dataclass
class HomeStudyResult:
    """All six homes."""

    homes: List[HomeRunResult]

    @property
    def mean_cumulative_range(self) -> tuple:
        """(min, max) of the per-home means."""
        means = [h.mean_cumulative for h in self.homes]
        return (min(means), max(means))


def run_home(
    profile: HomeProfile,
    seed: int = 0,
    duration_s: float = 24 * 3600.0,
    window_s: float = 60.0,
) -> HomeRunResult:
    """Generate one home's deployment log."""
    with obs_runtime.span(
        "experiments.fig14.home", home=profile.index, seed=seed
    ):
        deployment = HomeDeployment(
            profile,
            streams=RandomStreams(seed),
            window_s=window_s,
            duration_s=duration_s,
        )
        deployment.run()
        return HomeRunResult(
            profile=profile,
            per_channel=deployment.occupancy_series(),
            cumulative=deployment.cumulative_occupancy_series(),
        )


def run_fig14(
    seed: int = 0,
    duration_s: float = 24 * 3600.0,
    window_s: float = 60.0,
) -> HomeStudyResult:
    """The full six-home study."""
    return HomeStudyResult(
        homes=[
            run_home(profile, seed=seed, duration_s=duration_s, window_s=window_s)
            for profile in HOME_DEPLOYMENTS
        ]
    )
