"""§8(a): the Wi-Fi charging hotspot (Fig 16).

The USB charger sits 5–7 cm from the PoWiFi router and charges a Jawbone
UP24. Paper measurement: 2.3 mA average current; 0 → 41 % charge in 2.5 h.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensors.charger import (
    ChargeResult,
    UsbWiFiCharger,
    hotspot_incident_power_dbm,
)


@dataclass
class ChargerExperimentResult:
    """The §8(a) measurement pair."""

    incident_power_dbm: float
    session: ChargeResult

    @property
    def average_current_ma(self) -> float:
        """Paper: 2.3 mA."""
        return self.session.average_current_ma

    @property
    def charge_percent_after(self) -> float:
        """Paper: 41 % after 2.5 hours."""
        return self.session.charge_fraction_gained * 100.0


def run_sec8a(
    distance_cm: float = 6.0, duration_hours: float = 2.5
) -> ChargerExperimentResult:
    """Run the charging-hotspot session."""
    incident = hotspot_incident_power_dbm(distance_cm)
    charger = UsbWiFiCharger()
    session = charger.charge_session(incident, duration_hours)
    return ChargerExperimentResult(incident_power_dbm=incident, session=session)
