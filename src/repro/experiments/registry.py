"""Registry mapping experiment ids to their driver callables and metadata.

Populated lazily to keep import costs low; ids follow the paper's figure
and table numbering. Two views are exposed:

* :data:`EXPERIMENTS` — the historical ``id -> "module:callable"`` map,
  kept for callers that only need the driver;
* :data:`SPECS` — one :class:`ExperimentSpec` per experiment, carrying the
  orchestration metadata the parallel runner (``repro.runner``) consumes:
  an expected runtime class, an optional sweep decomposition, and a shape
  check. The metadata fields are documented in ``docs/architecture.md``.

All callables are referenced as ``"module:callable"`` strings so importing
the registry never imports a driver; :func:`resolve_target` validates and
resolves the references on demand.
"""

from __future__ import annotations

import importlib
import inspect
import keyword
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Valid :attr:`ExperimentSpec.runtime` classes, cheapest first. The runner
#: schedules ``slow`` experiments before ``fast`` ones (longest-processing-
#: time-first keeps the worker pool busy at the tail of a run).
RUNTIME_CLASSES: Tuple[str, ...] = ("fast", "medium", "slow")


@dataclass(frozen=True)
class ExperimentSpec:
    """Metadata for one registered experiment.

    Attributes
    ----------
    id:
        Canonical experiment id (``fig5``, ``table1``, ``sec8a``, ...).
    target:
        ``"module:callable"`` reference to the driver function.
    runtime:
        Expected runtime class on one core — one of
        :data:`RUNTIME_CLASSES`. ``fast`` is sub-second, ``medium`` seconds,
        ``slow`` a minute or more; purely a scheduling hint, never a limit.
    sweep:
        Optional ``"module:callable"`` reference to a sweep factory
        (see ``repro.experiments.sweeps``). Called as ``factory(seed)``, it
        returns independent part tasks plus a merge function whose output
        is byte-identical to a monolithic driver call. ``None`` means the
        experiment runs as a single task.
    check:
        Optional ``"module:callable"`` reference to a shape check
        (see ``repro.experiments.shapecheck``). Called with the merged
        result, it returns ``(ok, detail)`` asserting the paper's headline
        shape without re-running anything.
    slo:
        Optional repo-relative path to the experiment's default SLO spec
        (see ``repro.obs.slo`` and ``docs/observability.md``). ``run-all``
        evaluates it against the merged result's domain metrics; absent
        files are skipped, so specs never gate where they don't exist.
    """

    id: str
    target: str
    runtime: str = "fast"
    sweep: Optional[str] = None
    check: Optional[str] = None
    slo: Optional[str] = None

    def resolve(self) -> Callable:
        """The driver callable behind :attr:`target`."""
        return resolve_target(self.target)

    def accepts_seed(self) -> bool:
        """Whether the driver takes a ``seed`` keyword.

        Pure-analytic drivers (Fig 9–13, Table 1, §8a) have no randomness
        and take no seed; callers use this instead of catching
        ``TypeError`` (which would also swallow genuine driver bugs).
        """
        signature = inspect.signature(self.resolve())
        return "seed" in signature.parameters


def _spec(
    experiment_id: str,
    target: str,
    runtime: str = "fast",
    sweep: Optional[str] = None,
    slo: Optional[str] = None,
) -> ExperimentSpec:
    """Build one spec; shape checks follow the ``check_<id>`` convention."""
    return ExperimentSpec(
        id=experiment_id,
        target=target,
        runtime=runtime,
        sweep=sweep,
        check=f"repro.experiments.shapecheck:check_{experiment_id}",
        slo=slo,
    )


#: Experiment id -> full orchestration spec.
SPECS: Dict[str, ExperimentSpec] = {
    spec.id: spec
    for spec in (
        _spec("fig1", "repro.experiments.fig01_leakage:run_fig01"),
        _spec(
            "fig5",
            "repro.experiments.fig05_delay_sweep:run_fig05",
            runtime="medium",
            sweep="repro.experiments.sweeps:fig5_sweep",
        ),
        _spec(
            "fig6a",
            "repro.experiments.fig06_traffic:run_fig06a",
            runtime="slow",
            sweep="repro.experiments.sweeps:fig6a_sweep",
            slo="slos/fig6a.json",
        ),
        _spec(
            "fig6b",
            "repro.experiments.fig06_traffic:run_fig06b",
            runtime="medium",
            sweep="repro.experiments.sweeps:fig6b_sweep",
            slo="slos/fig6b.json",
        ),
        _spec(
            "fig6c",
            "repro.experiments.fig06_traffic:run_fig06c",
            runtime="slow",
            sweep="repro.experiments.sweeps:fig6c_sweep",
            slo="slos/fig6c.json",
        ),
        _spec(
            "fig7",
            "repro.experiments.fig06_traffic:run_fig07",
            runtime="medium",
            slo="slos/fig7.json",
        ),
        _spec(
            "fig8",
            "repro.experiments.fig08_fairness:run_fig08",
            runtime="medium",
            sweep="repro.experiments.sweeps:fig8_sweep",
        ),
        _spec("fig9", "repro.experiments.fig09_return_loss:run_fig09"),
        _spec("fig10", "repro.experiments.fig10_rectifier:run_fig10"),
        _spec("fig11", "repro.experiments.fig11_temperature:run_fig11"),
        _spec(
            "fig12",
            "repro.experiments.fig12_camera:run_fig12",
            slo="slos/fig12.json",
        ),
        _spec("fig13", "repro.experiments.fig13_walls:run_fig13"),
        _spec(
            "fig14",
            "repro.experiments.fig14_homes:run_fig14",
            sweep="repro.experiments.sweeps:fig14_sweep",
        ),
        _spec(
            "fig15",
            "repro.experiments.fig15_home_sensor:run_fig15",
            slo="slos/fig15.json",
        ),
        _spec("table1", "repro.experiments.table1_homes:run_table1"),
        _spec("sec8a", "repro.experiments.sec8a_charger:run_sec8a"),
        _spec(
            "sec8c",
            "repro.experiments.sec8c_multi_router:run_sec8c",
            runtime="medium",
            sweep="repro.experiments.sweeps:sec8c_sweep",
        ),
    )
}

#: Experiment id -> "module:callable" within repro.experiments (the
#: historical view; derived from :data:`SPECS`).
EXPERIMENTS: Dict[str, str] = {key: spec.target for key, spec in SPECS.items()}


def _validate_target(target: str) -> Tuple[str, str]:
    """Split a ``"module:callable"`` reference, validating both halves."""
    if not isinstance(target, str) or target.count(":") != 1:
        raise ConfigurationError(
            f"malformed target {target!r}: expected 'module:callable' with "
            "exactly one colon"
        )
    module_name, func_name = target.split(":")
    parts = module_name.split(".")
    if not all(part.isidentifier() and not keyword.iskeyword(part) for part in parts):
        raise ConfigurationError(
            f"malformed target {target!r}: {module_name!r} is not a dotted "
            "module path"
        )
    if not func_name.isidentifier() or keyword.iskeyword(func_name):
        raise ConfigurationError(
            f"malformed target {target!r}: {func_name!r} is not a valid "
            "callable name"
        )
    return module_name, func_name


def resolve_target(target: str) -> Callable:
    """Resolve a validated ``"module:callable"`` reference to the callable.

    Raises :class:`~repro.errors.ConfigurationError` for malformed
    references, unimportable modules, and missing attributes — registry
    entries are configuration, so their failure mode should name the broken
    entry rather than surface a bare ``ValueError``/``ImportError``.
    """
    module_name, func_name = _validate_target(target)
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(
            f"target {target!r}: cannot import module {module_name!r} ({exc})"
        ) from exc
    try:
        return getattr(module, func_name)
    except AttributeError:
        raise ConfigurationError(
            f"target {target!r}: module {module_name!r} has no attribute "
            f"{func_name!r}"
        ) from None


def get_spec(experiment_id: str) -> ExperimentSpec:
    """The full spec for an experiment id."""
    try:
        return SPECS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(SPECS)}"
        ) from None


def get_experiment(experiment_id: str) -> Callable:
    """Resolve an experiment id to its driver function."""
    return get_spec(experiment_id).resolve()
