"""Registry mapping experiment ids to their driver callables.

Populated lazily to keep import costs low; ids follow the paper's figure
and table numbering.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict

from repro.errors import ConfigurationError

#: Experiment id -> "module:callable" within repro.experiments.
EXPERIMENTS: Dict[str, str] = {
    "fig1": "repro.experiments.fig01_leakage:run_fig01",
    "fig5": "repro.experiments.fig05_delay_sweep:run_fig05",
    "fig6a": "repro.experiments.fig06_traffic:run_fig06a",
    "fig6b": "repro.experiments.fig06_traffic:run_fig06b",
    "fig6c": "repro.experiments.fig06_traffic:run_fig06c",
    "fig7": "repro.experiments.fig06_traffic:run_fig07",
    "fig8": "repro.experiments.fig08_fairness:run_fig08",
    "fig9": "repro.experiments.fig09_return_loss:run_fig09",
    "fig10": "repro.experiments.fig10_rectifier:run_fig10",
    "fig11": "repro.experiments.fig11_temperature:run_fig11",
    "fig12": "repro.experiments.fig12_camera:run_fig12",
    "fig13": "repro.experiments.fig13_walls:run_fig13",
    "fig14": "repro.experiments.fig14_homes:run_fig14",
    "fig15": "repro.experiments.fig15_home_sensor:run_fig15",
    "table1": "repro.experiments.table1_homes:run_table1",
    "sec8a": "repro.experiments.sec8a_charger:run_sec8a",
    "sec8c": "repro.experiments.sec8c_multi_router:run_sec8c",
}


def get_experiment(experiment_id: str) -> Callable:
    """Resolve an experiment id to its driver function."""
    try:
        target = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    module_name, func_name = target.split(":")
    module = importlib.import_module(module_name)
    return getattr(module, func_name)
