"""Experiment drivers: one per table/figure in the paper's evaluation.

Each driver is used three ways: the test suite asserts the paper's
qualitative claims on small configurations, the benchmark harness
regenerates the full figure rows, and the examples print human-readable
reports. The registry maps experiment ids ("fig5", "table1", ...) to
drivers.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["EXPERIMENTS", "get_experiment"]
