"""Shape checks: does a regenerated result still show the paper's claim?

One ``check_<id>`` function per registry experiment, each a pure predicate
over the experiment's result object — nothing here re-runs a simulation.
The checks assert the *shape* EXPERIMENTS.md records (who wins, roughly by
what factor, where crossovers fall), with tolerances wide enough to survive
seed changes but tight enough to catch a broken mechanism.

Every function returns ``(ok, detail)`` where ``detail`` is a one-line
human-readable summary of the numbers checked; the parallel runner records
both in ``run_manifest.json`` so a failed shape check names the offending
quantity instead of just flagging the experiment.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import Scheme

#: The result of one shape check: (passed, one-line detail).
CheckResult = Tuple[bool, str]


def check_fig1(result) -> CheckResult:
    """Stock-router harvester voltage stays below the 300 mV threshold."""
    peak_mv = 1e3 * result.peak_voltage_v
    ok = bool(result.samples) and 0.0 < result.peak_voltage_v < 0.300
    ok = ok and not result.crossed_threshold
    return ok, f"peak {peak_mv:.0f} mV, crossed={result.crossed_threshold}"


def check_fig5(result) -> CheckResult:
    """Plateau ~50 %, threshold-1 curve lower, decay at large delays."""
    plateau = result.occupancy_at(5, 100)
    shallow = result.occupancy_at(1, 100)
    slow = result.occupancy_at(5, 1000)
    ok = (
        len(result.curves) >= 2
        and all(len(curve) >= 2 for curve in result.curves.values())
        and 0.3 < plateau < 0.7
        and shallow < plateau
        and slow < 0.8 * plateau
    )
    return ok, (
        f"plateau {100 * plateau:.1f} %, threshold-1 {100 * shallow:.1f} %, "
        f"1000us {100 * slow:.1f} %"
    )


def check_fig6a(result) -> CheckResult:
    """PoWiFi ~= Baseline; NoQueue well below; BlindUDP floors throughput."""
    top_rate = max(result[Scheme.BASELINE].throughput_by_rate)
    baseline = result[Scheme.BASELINE].throughput_by_rate[top_rate]
    powifi = result[Scheme.POWIFI].throughput_by_rate[top_rate]
    noqueue = result[Scheme.NO_QUEUE].throughput_by_rate[top_rate]
    blind = result[Scheme.BLIND_UDP].throughput_by_rate[top_rate]
    ok = (
        abs(powifi - baseline) / baseline < 0.2
        and noqueue < 0.75 * baseline
        and blind < 2.0
    )
    return ok, (
        f"at {top_rate:g} Mb/s offered: baseline {baseline:.1f} / powifi "
        f"{powifi:.1f} / noqueue {noqueue:.1f} / blind {blind:.1f} Mb/s"
    )


def check_fig6b(result) -> CheckResult:
    """TCP medians: Baseline ~= PoWiFi > NoQueue > BlindUDP."""
    baseline = result[Scheme.BASELINE].median_mbps
    powifi = result[Scheme.POWIFI].median_mbps
    noqueue = result[Scheme.NO_QUEUE].median_mbps
    blind = result[Scheme.BLIND_UDP].median_mbps
    ok = (
        abs(powifi - baseline) / baseline < 0.2
        and noqueue < 0.85 * baseline
        and blind < noqueue
    )
    return ok, (
        f"medians baseline {baseline:.1f} / powifi {powifi:.1f} / "
        f"noqueue {noqueue:.1f} / blind {blind:.1f} Mb/s"
    )


def check_fig6c(result) -> CheckResult:
    """Mean PLT: Baseline <= PoWiFi < NoQueue << BlindUDP."""
    baseline = result[Scheme.BASELINE].mean_plt_s
    powifi = result[Scheme.POWIFI].mean_plt_s
    noqueue = result[Scheme.NO_QUEUE].mean_plt_s
    blind = result[Scheme.BLIND_UDP].mean_plt_s
    ok = baseline <= powifi < noqueue and blind > 2.0 * baseline
    return ok, (
        f"mean PLT baseline {baseline:.2f} / powifi {powifi:.2f} / "
        f"noqueue {noqueue:.2f} / blind {blind:.2f} s"
    )


def check_fig7(result) -> CheckResult:
    """Cumulative occupancy ~100 % despite client traffic."""
    mean = result.mean_cumulative
    ok = len(result.per_channel) == 3 and 0.7 < mean < 1.6
    return ok, f"mean cumulative {100 * mean:.1f} % over {len(result.per_channel)} channels"


def check_fig8(result) -> CheckResult:
    """PoWiFi gives the neighbour at least the equal-share throughput."""
    rates = sorted(result.throughput[Scheme.POWIFI])
    mid_rates = [r for r in rates if 10 <= r <= 48]
    ok = all(result.powifi_beats_equal_share(rate) for rate in mid_rates)
    blind_low = all(
        result.throughput[Scheme.BLIND_UDP][rate]
        <= result.throughput[Scheme.POWIFI][rate]
        for rate in mid_rates
    )
    sample = mid_rates[len(mid_rates) // 2] if mid_rates else rates[0]
    return ok and blind_low, (
        f"at {sample:g} Mb/s: powifi "
        f"{result.throughput[Scheme.POWIFI][sample]:.1f} vs equal-share "
        f"{result.throughput[Scheme.EQUAL_SHARE][sample]:.1f} Mb/s"
    )


def check_fig9(result) -> CheckResult:
    """Return loss below -10 dB in band for both harvester builds."""
    free, recharging = result
    ok = free.meets_spec and recharging.meets_spec
    return ok, (
        f"worst in-band {free.worst_in_band_db:.1f} dB (free) / "
        f"{recharging.worst_in_band_db:.1f} dB (recharging)"
    )


def check_fig10(result) -> CheckResult:
    """Rectifier sensitivities near -17.8 / -19.3 dBm, >100 uW at +4 dBm."""
    free, recharging = result
    ok = (
        abs(free.worst_sensitivity_dbm + 17.8) < 1.5
        and abs(recharging.worst_sensitivity_dbm + 19.3) < 1.5
        and free.output_at(6, 4) > 100e-6
    )
    return ok, (
        f"sensitivities {free.worst_sensitivity_dbm:.1f} / "
        f"{recharging.worst_sensitivity_dbm:.1f} dBm, "
        f"{1e6 * free.output_at(6, 4):.0f} uW at +4 dBm"
    )


def check_fig11(result) -> CheckResult:
    """Temperature sensor ranges near the paper's 20 / 28 ft."""
    ok = (
        abs(result.battery_free_range_feet - 20) < 3.5
        and abs(result.battery_recharging_range_feet - 28) < 3.0
    )
    return ok, (
        f"ranges {result.battery_free_range_feet:.1f} / "
        f"{result.battery_recharging_range_feet:.1f} ft"
    )


def check_fig12(result) -> CheckResult:
    """Camera ranges near the paper's 17 ft battery-free, 23+ ft recharging."""
    ok = (
        abs(result.battery_free_range_feet - 17) < 2.5
        and 21 < result.battery_recharging_range_feet < 31
    )
    return ok, (
        f"ranges {result.battery_free_range_feet:.1f} / "
        f"{result.battery_recharging_range_feet:.1f} ft"
    )


def check_fig13(result) -> CheckResult:
    """Camera operational through every wall; time grows with absorption."""
    times = list(result.inter_frame_minutes.values())
    ok = result.all_operational and times == sorted(times)
    return ok, (
        "inter-frame minutes "
        + ", ".join(f"{m:.1f}" for m in result.inter_frame_minutes.values())
    )


def check_fig14(result) -> CheckResult:
    """Six homes with mean cumulative occupancies in the 78-127 % band."""
    low, high = result.mean_cumulative_range
    ok = len(result.homes) == 6 and 0.6 < low < 1.1 and 0.9 < high < 1.6
    return ok, f"{len(result.homes)} homes, means {100 * low:.0f}-{100 * high:.0f} %"


def check_fig15(result) -> CheckResult:
    """Every home sustains a nonzero sensor rate inside the 0-10 reads/s axis."""
    medians = [result.median(i) for i in result.samples_by_home]
    ok = (
        len(result.samples_by_home) == 6
        and result.all_homes_deliver_power
        and max(medians) < 10.0
    )
    return ok, f"medians {min(medians):.1f}-{max(medians):.1f} reads/s"


def check_table1(result) -> CheckResult:
    """The home-deployment parameter table matches the paper verbatim."""
    return result.matches_paper, f"matches_paper={result.matches_paper}"


def check_sec8a(result) -> CheckResult:
    """Jawbone charging near the paper's 2.3 mA / 41 % in 2.5 h."""
    ok = (
        abs(result.average_current_ma - 2.3) < 0.5
        and 25.0 < result.charge_percent_after < 55.0
    )
    return ok, (
        f"{result.average_current_ma:.2f} mA, "
        f"{result.charge_percent_after:.1f} % in 2.5 h"
    )


def check_sec8c(result) -> CheckResult:
    """Adding concurrent routers never collapses aggregate occupancy."""
    counts = sorted(result.by_count)
    ok = len(counts) >= 2 and result.occupancy_stays_high
    return ok, (
        "aggregate "
        + " / ".join(
            f"{100 * result.aggregate_cumulative(c):.0f} %" for c in counts
        )
    )
