"""Fig 12: camera inter-frame time vs distance (§5.2, Experiments 1).

The §5.2 runs measured an average cumulative occupancy of 90.9 %. Claims:
the battery-free camera works to 17 ft; the battery-recharging build is
energy-neutral to 23 ft (and, off-plot, to 26.5 ft at one frame per 2.6 h);
inter-frame times are comparable up to ~15 ft.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.rf.link import LinkBudget, Transmitter
from repro.sensors.camera import WiFiCamera

#: Distances swept (feet).
DEFAULT_DISTANCES_FEET: Tuple[float, ...] = (1, 2, 3, 5, 8, 10, 12, 15, 17, 20, 23, 26)

#: The §5.2 experiments' measured average cumulative occupancy.
FIG12_OCCUPANCY = 0.909


@dataclass
class CameraSweepResult:
    """Fig 12's two curves plus operating ranges."""

    #: distance ft -> inter-frame time (minutes; inf when off).
    battery_free: Dict[float, float]
    battery_recharging: Dict[float, float]
    battery_free_range_feet: float
    battery_recharging_range_feet: float


def run_fig12(
    distances_feet: Sequence[float] = DEFAULT_DISTANCES_FEET,
    occupancy: float = FIG12_OCCUPANCY,
) -> CameraSweepResult:
    """The full Fig 12 sweep."""
    link = LinkBudget(Transmitter(tx_power_dbm=30.0))
    free = WiFiCamera(battery_recharging=False)
    recharging = WiFiCamera(battery_recharging=True)
    free_curve = {
        d: free.evaluate_at(link, d, occupancy).inter_frame_minutes
        for d in distances_feet
    }
    recharging_curve = {
        d: recharging.evaluate_at(link, d, occupancy).inter_frame_minutes
        for d in distances_feet
    }
    return CameraSweepResult(
        battery_free=free_curve,
        battery_recharging=recharging_curve,
        battery_free_range_feet=free.range_feet(link, occupancy),
        battery_recharging_range_feet=recharging.range_feet(link, occupancy),
    )
