"""Figs 6 and 7: the effect of each scheme on real Wi-Fi traffic.

Three workloads against the four schemes (Baseline, PoWiFi, NoQueue,
BlindUDP):

* (a) iperf UDP download at offered rates 1–50 Mb/s — Fig 6a;
* (b) iperf TCP download with rate adaptation — Fig 6b's CDFs;
* (c) page loads of the Alexa top-10 US sites — Fig 6c;

and, for each, the router's per-channel and cumulative occupancy — Fig 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import Scheme
from repro.core.occupancy import OccupancySeries, cumulative_series
from repro.experiments.base import FIG6_SCHEMES, Testbed, build_testbed
from repro.mac80211.rate_control import MinstrelLite
from repro.netstack.iperf import IperfTcpClient, IperfUdpClient
from repro.netstack.http import PageLoadHarness
from repro.netstack.tcp import TcpParameters
from repro.workloads.web import TOP_10_US_SITES, page_for_site

#: Offered UDP rates of Fig 6a (Mb/s). The paper tests eleven rates 1–50.
DEFAULT_UDP_RATES: Tuple[float, ...] = (1, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50)

#: Ambient load during the Fig 6/7 campaigns: "a busy weekday in our
#: organization, which has multiple other clients and routers operating on
#: channels 1, 6, and 11" — noticeably busier than the §2 baseline, and the
#: value that reproduces Fig 7's ~100 % mean cumulative occupancy.
FIG6_OFFICE_OCCUPANCY = 0.35

#: Extra fixed per-object latency from the kernel's per-packet checks
#: (§4.1(c) attributes PoWiFi's residual +101 ms mean PLT delay to them).
KERNEL_CHECK_OVERHEAD_S = {
    Scheme.BASELINE: 0.0,
    Scheme.POWIFI: 0.004,
    # NoQueue additionally parks client packets behind the power frames
    # already committed to the hardware FIFO; the paper measures +294 ms
    # mean PLT versus PoWiFi's +101 ms.
    Scheme.NO_QUEUE: 0.012,
    Scheme.BLIND_UDP: 0.0,
}


@dataclass
class OccupancyReport:
    """Fig 7's per-channel + cumulative occupancy for one run."""

    per_channel: Dict[int, OccupancySeries]
    cumulative: OccupancySeries

    @property
    def mean_cumulative(self) -> float:
        """Mean cumulative occupancy (97.6 / 100.9 / 87.6 % in the paper)."""
        return self.cumulative.mean


def _occupancy_report(bed: Testbed, window_s: float = 0.5) -> OccupancyReport:
    per_channel = bed.router.occupancy_series_by_channel(window_s)
    return OccupancyReport(
        per_channel=per_channel,
        cumulative=cumulative_series(list(per_channel.values())),
    )


# ------------------------------------------------------------------ Fig 6a


@dataclass
class UdpSchemeResult:
    """Fig 6a: achieved UDP throughput per offered rate, for one scheme."""

    scheme: Scheme
    #: offered rate -> mean achieved throughput (Mb/s).
    throughput_by_rate: Dict[float, float]
    occupancy: Optional[OccupancyReport] = None


def run_udp_for_scheme(
    scheme: Scheme,
    rates_mbps: Sequence[float] = DEFAULT_UDP_RATES,
    copies: int = 2,
    run_seconds: float = 1.5,
    gap_seconds: float = 0.5,
    seed: int = 0,
) -> UdpSchemeResult:
    """The Fig 6a iperf campaign for one scheme.

    The client is seven feet from the router with its bit rate pinned to
    54 Mb/s (§4.1(a)); each offered rate runs its own testbed so runs stay
    independent.
    """
    throughput: Dict[float, float] = {}
    occupancy: Optional[OccupancyReport] = None
    for rate in rates_mbps:
        bed = build_testbed(
            scheme, seed=seed, office_occupancy=FIG6_OFFICE_OCCUPANCY
        )
        client_flow = IperfUdpClient(
            bed.sim,
            sender=bed.router.client_station,
            target_rate_mbps=rate,
            copies=copies,
            run_seconds=run_seconds,
            gap_seconds=gap_seconds,
        )
        bed.start()
        client_flow.start()
        total = copies * (run_seconds + gap_seconds)
        bed.sim.run(until=total)
        throughput[rate] = client_flow.result().mean_throughput_mbps
        if occupancy is None and scheme is Scheme.POWIFI:
            occupancy = _occupancy_report(bed)
    return UdpSchemeResult(scheme=scheme, throughput_by_rate=throughput, occupancy=occupancy)


def run_fig06a(
    schemes: Sequence[Scheme] = FIG6_SCHEMES,
    rates_mbps: Sequence[float] = DEFAULT_UDP_RATES,
    seed: int = 0,
    copies: int = 2,
    run_seconds: float = 1.5,
) -> Dict[Scheme, UdpSchemeResult]:
    """Fig 6a across all schemes."""
    return {
        scheme: run_udp_for_scheme(
            scheme, rates_mbps, seed=seed, copies=copies, run_seconds=run_seconds
        )
        for scheme in schemes
    }


# ------------------------------------------------------------------ Fig 6b


@dataclass
class TcpSchemeResult:
    """Fig 6b: the 500 ms-interval TCP throughput samples for one scheme."""

    scheme: Scheme
    interval_throughputs_mbps: List[float]
    occupancy: Optional[OccupancyReport] = None

    @property
    def median_mbps(self) -> float:
        """Median of the CDF the paper plots."""
        ordered = sorted(self.interval_throughputs_mbps)
        if not ordered:
            return 0.0
        return ordered[len(ordered) // 2]


def run_tcp_for_scheme(
    scheme: Scheme,
    runs: int = 3,
    copies: int = 2,
    run_seconds: float = 1.5,
    gap_seconds: float = 0.5,
    seed: int = 0,
) -> TcpSchemeResult:
    """The Fig 6b campaign for one scheme, with Minstrel rate adaptation."""
    intervals: List[float] = []
    occupancy: Optional[OccupancyReport] = None
    for run_index in range(runs):
        bed = build_testbed(
            scheme, seed=seed + run_index, office_occupancy=FIG6_OFFICE_OCCUPANCY
        )
        minstrel = MinstrelLite(rng=bed.streams.stream("minstrel"))
        iperf = IperfTcpClient(
            bed.sim,
            sender=bed.router.client_station,
            receiver=bed.client,
            copies=copies,
            run_seconds=run_seconds,
            gap_seconds=gap_seconds,
            rate_provider=minstrel.select,
            rate_reporter=minstrel.report,
        )
        bed.start()
        iperf.start()
        bed.sim.run(until=copies * (run_seconds + gap_seconds))
        intervals.extend(iperf.result().interval_throughputs_mbps)
        if occupancy is None and scheme is Scheme.POWIFI:
            occupancy = _occupancy_report(bed)
    return TcpSchemeResult(
        scheme=scheme, interval_throughputs_mbps=intervals, occupancy=occupancy
    )


def run_fig06b(
    schemes: Sequence[Scheme] = FIG6_SCHEMES,
    runs: int = 3,
    seed: int = 0,
    copies: int = 2,
    run_seconds: float = 1.5,
) -> Dict[Scheme, TcpSchemeResult]:
    """Fig 6b across all schemes."""
    return {
        scheme: run_tcp_for_scheme(
            scheme, runs=runs, seed=seed, copies=copies, run_seconds=run_seconds
        )
        for scheme in schemes
    }


# ------------------------------------------------------------------ Fig 6c


@dataclass
class PltSchemeResult:
    """Fig 6c: page-load times per site for one scheme."""

    scheme: Scheme
    #: site -> mean PLT in seconds.
    plt_by_site: Dict[str, float]
    occupancy: Optional[OccupancyReport] = None

    @property
    def mean_plt_s(self) -> float:
        """Mean PLT across sites."""
        return sum(self.plt_by_site.values()) / len(self.plt_by_site)


def run_plt_for_scheme(
    scheme: Scheme,
    sites: Sequence[str] = TOP_10_US_SITES,
    loads_per_site: int = 3,
    page_scale: float = 0.3,
    seed: int = 0,
) -> PltSchemeResult:
    """The Fig 6c campaign for one scheme.

    ``page_scale`` shrinks the page models uniformly to bound simulation
    time; the scheme-vs-scheme ordering is scale-invariant.
    """
    plt_by_site: Dict[str, float] = {}
    occupancy: Optional[OccupancyReport] = None
    for site in sites:
        bed = build_testbed(
            scheme, seed=seed, office_occupancy=FIG6_OFFICE_OCCUPANCY
        )
        harness = PageLoadHarness(
            bed.sim,
            ap=bed.router.client_station,
            client=bed.client,
            per_load_overhead_s=KERNEL_CHECK_OVERHEAD_S.get(scheme, 0.0),
            tcp_params=TcpParameters(),
        )
        bed.start()
        page = page_for_site(site, scale=page_scale)
        harness.run_loads(page, loads_per_site)
        # Step the clock until the loads finish (BlindUDP pages crawl, so a
        # generous horizon backstops the loop).
        horizon = 120.0 * loads_per_site
        while len(harness.load_times) < loads_per_site and bed.sim.now < horizon:
            bed.sim.run(until=bed.sim.now + 1.0)
        plt_by_site[site] = harness.mean_plt
        if occupancy is None and scheme is Scheme.POWIFI:
            occupancy = _occupancy_report(bed)
    return PltSchemeResult(scheme=scheme, plt_by_site=plt_by_site, occupancy=occupancy)


def run_fig06c(
    schemes: Sequence[Scheme] = FIG6_SCHEMES,
    sites: Sequence[str] = TOP_10_US_SITES,
    loads_per_site: int = 3,
    page_scale: float = 0.3,
    seed: int = 0,
) -> Dict[Scheme, PltSchemeResult]:
    """Fig 6c across all schemes."""
    return {
        scheme: run_plt_for_scheme(
            scheme, sites, loads_per_site, page_scale, seed=seed
        )
        for scheme in schemes
    }


# ------------------------------------------------------------------- Fig 7


def run_fig07(
    duration_s: float = 5.0, seed: int = 0, window_s: float = 0.5
) -> OccupancyReport:
    """Fig 7: PoWiFi's occupancy during a client-traffic run.

    A standalone variant for callers that want the occupancy CDFs without
    rerunning the full Fig 6 campaigns (which also produce them).
    """
    bed = build_testbed(
        Scheme.POWIFI, seed=seed, office_occupancy=FIG6_OFFICE_OCCUPANCY
    )
    iperf = IperfUdpClient(
        bed.sim,
        sender=bed.router.client_station,
        target_rate_mbps=20.0,
        copies=max(1, int(duration_s // 2)),
        run_seconds=1.5,
        gap_seconds=0.5,
    )
    bed.start()
    iperf.start()
    bed.sim.run(until=duration_s)
    return _occupancy_report(bed, window_s)
