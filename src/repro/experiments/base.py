"""Shared scaffolding for the experiment drivers.

Builds the "busy office" environment every §4 experiment runs in: three
channel media, a PoWiFi router in one of the §4.1 schemes, ambient
background traffic, and a client station.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.config import InjectorConfig, Scheme
from repro.core.router import PoWiFiRouter, RouterConfig
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.obs import runtime as obs_runtime
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.office import OfficeBackground

#: The §2 observation: ambient office occupancy 10-40 %, mostly low end.
DEFAULT_OFFICE_OCCUPANCY = 0.25


@dataclass
class Testbed:
    """A wired-up office testbed for one experiment run."""

    sim: Simulator
    streams: RandomStreams
    media: Dict[int, Medium]
    router: PoWiFiRouter
    client: Station
    office: Optional[OfficeBackground]

    def start(self) -> None:
        """Start the router (beacons + injectors) and background traffic."""
        self.router.start()
        if self.office is not None:
            self.office.start()


def build_testbed(
    scheme: Scheme,
    seed: int = 0,
    channels: Tuple[int, ...] = (1, 6, 11),
    office_occupancy: Optional[float] = DEFAULT_OFFICE_OCCUPANCY,
    injector_override: Optional[InjectorConfig] = None,
    equal_share_rate_mbps: Optional[float] = None,
) -> Testbed:
    """Stand up the standard §4 testbed.

    Parameters
    ----------
    scheme:
        Which router scheme to run.
    seed:
        Master random seed (deterministic runs).
    channels:
        Channels the router occupies.
    office_occupancy:
        Ambient per-channel background load; ``None`` disables background
        traffic entirely (the Fig 5 "absence of client traffic" setup still
        keeps background — pass 0.0 or None for a silent environment).
    injector_override:
        Replace the scheme's stock injector parameters.
    equal_share_rate_mbps:
        For :attr:`Scheme.EQUAL_SHARE`.
    """
    with obs_runtime.span(
        "experiments.base.build_testbed", scheme=scheme.value, seed=seed
    ):
        sim = Simulator()
        streams = RandomStreams(seed)
        media = {ch: Medium(sim, channel=ch) for ch in channels}
        config = RouterConfig(
            scheme=scheme,
            channels=channels,
            client_channel=channels[0],
            injector_override=injector_override,
            equal_share_rate_mbps=equal_share_rate_mbps,
        )
        router = PoWiFiRouter(sim, media, streams, config)
        client = Station(sim, name="client", streams=streams)
        media[channels[0]].attach(client)
        office = None
        if office_occupancy:
            office = OfficeBackground(
                sim, media, streams, {ch: office_occupancy for ch in channels}
            )
        return Testbed(
            sim=sim,
            streams=streams,
            media=media,
            router=router,
            client=client,
            office=office,
        )


#: The §4.1 scheme set, in the order Fig 6's legends list them.
FIG6_SCHEMES: Tuple[Scheme, ...] = (
    Scheme.BASELINE,
    Scheme.POWIFI,
    Scheme.NO_QUEUE,
    Scheme.BLIND_UDP,
)
