"""Fig 8: fairness to neighbouring Wi-Fi networks (§4.1(d)).

A neighbouring router–client pair runs saturated UDP at a chosen bit rate on
channel 1 while our router transmits power packets under one of three
schemes: BlindUDP (1 Mb/s), EqualShare (power packets at the *neighbour's*
bit rate) and PoWiFi (54 Mb/s). The paper's claim: PoWiFi gives the
neighbour *better* than the equal-share throughput because 54 Mb/s frames
occupy the channel for less time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.config import Scheme
from repro.experiments.base import build_testbed
from repro.mac80211.station import Station
from repro.netstack.udp import UdpFlow

#: Neighbour bit rates swept in Fig 8 (Mb/s).
DEFAULT_NEIGHBOR_RATES: Tuple[float, ...] = (1, 2, 5.5, 11, 12, 18, 24, 36, 48, 54)

#: The three schemes Fig 8 compares.
FIG8_SCHEMES: Tuple[Scheme, ...] = (
    Scheme.EQUAL_SHARE,
    Scheme.POWIFI,
    Scheme.BLIND_UDP,
)


@dataclass
class FairnessResult:
    """Fig 8: neighbour throughput per (scheme, neighbour bit rate)."""

    #: scheme -> {neighbour rate -> achieved throughput Mb/s}.
    throughput: Dict[Scheme, Dict[float, float]]

    def powifi_beats_equal_share(self, rate_mbps: float) -> bool:
        """The paper's headline fairness claim at one neighbour rate."""
        return (
            self.throughput[Scheme.POWIFI][rate_mbps]
            >= self.throughput[Scheme.EQUAL_SHARE][rate_mbps]
        )


def measure_neighbor_throughput(
    scheme: Scheme,
    neighbor_rate_mbps: float,
    duration_s: float = 2.0,
    seed: int = 0,
) -> float:
    """Neighbour pair's achieved UDP throughput under one scheme."""
    bed = build_testbed(
        scheme,
        seed=seed,
        channels=(1,),
        office_occupancy=None,  # the Fig 8 setup isolates the two networks
        equal_share_rate_mbps=(
            neighbor_rate_mbps if scheme is Scheme.EQUAL_SHARE else None
        ),
    )
    neighbor_ap = Station(bed.sim, name="neighbor-ap", streams=bed.streams)
    bed.media[1].attach(neighbor_ap)
    # Saturated UDP: offer well past the channel capacity at this bit rate.
    flow = UdpFlow(
        bed.sim,
        neighbor_ap,
        target_rate_mbps=min(60.0, neighbor_rate_mbps * 1.5 + 5.0),
        rate_mbps=neighbor_rate_mbps,
        flow_label="neighbor",
    )
    bed.start()
    flow.start()
    bed.sim.run(until=duration_s)
    return flow.delivered_mbps(0.0, duration_s)


def run_fig08(
    schemes: Sequence[Scheme] = FIG8_SCHEMES,
    neighbor_rates: Sequence[float] = DEFAULT_NEIGHBOR_RATES,
    duration_s: float = 2.0,
    seed: int = 0,
) -> FairnessResult:
    """The full Fig 8 sweep."""
    throughput: Dict[Scheme, Dict[float, float]] = {}
    for scheme in schemes:
        throughput[scheme] = {
            rate: measure_neighbor_throughput(scheme, rate, duration_s, seed)
            for rate in neighbor_rates
        }
    return FairnessResult(throughput=throughput)
