"""Table 1: the home-deployment summary (§6).

Reproduces the deployment-parameter table driving Figs 14–15.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.workloads.homes import HOME_DEPLOYMENTS, HomeProfile

#: The table exactly as printed in the paper.
PAPER_TABLE1: Tuple[Tuple[int, int, int, int], ...] = (
    # (home, users, devices, neighbouring APs)
    (1, 2, 6, 17),
    (2, 1, 1, 4),
    (3, 3, 6, 10),
    (4, 2, 4, 15),
    (5, 1, 2, 24),
    (6, 3, 6, 16),
)


@dataclass
class Table1Result:
    """The reproduced table plus a match check against the paper."""

    rows: List[Tuple[int, int, int, int]]

    @property
    def matches_paper(self) -> bool:
        """True when the encoded profiles equal the printed table."""
        return tuple(self.rows) == PAPER_TABLE1

    def as_text(self) -> str:
        """Render in the paper's layout."""
        homes = [str(r[0]) for r in self.rows]
        users = [str(r[1]) for r in self.rows]
        devices = [str(r[2]) for r in self.rows]
        aps = [str(r[3]) for r in self.rows]
        lines = [
            "Home #          " + "  ".join(homes),
            "Users           " + "  ".join(users),
            "Devices         " + "  ".join(devices),
            "Neighboring APs " + "  ".join(f"{a:>2}" for a in aps),
        ]
        return "\n".join(lines)


def run_table1() -> Table1Result:
    """Build Table 1 from the encoded home profiles."""
    rows = [
        (p.index, p.users, p.devices, p.neighboring_aps)
        for p in HOME_DEPLOYMENTS
    ]
    return Table1Result(rows=rows)
