"""One-shot reproduction report: run every experiment, emit markdown.

``python -m repro report`` (or :func:`generate_report`) runs a reduced-scale
version of every paper experiment and renders a single markdown document
with the regenerated numbers next to the paper's — a self-contained
"does the reproduction still hold on this machine?" artifact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.config import Scheme
from repro.obs import runtime as obs_runtime


@dataclass
class ReportSection:
    """One experiment's contribution to the report."""

    title: str
    paper_claim: str
    lines: List[str]
    ok: bool
    seconds: float


def _fig1() -> ReportSection:
    from repro.experiments.fig01_leakage import run_fig01, run_fig01_powifi_contrast

    result = run_fig01(duration_s=0.05)
    contrast = run_fig01_powifi_contrast(duration_s=0.05)
    return ReportSection(
        title="Fig 1 — harvester voltage under a stock router",
        paper_claim="never crosses 300 mV at 10 ft; PoWiFi would",
        lines=[
            f"stock peak {1e3 * result.peak_voltage_v:.0f} mV (crossed: {result.crossed_threshold}); "
            f"PoWiFi peak {1e3 * contrast.peak_voltage_v:.0f} mV (crossed: {contrast.crossed_threshold})"
        ],
        ok=(not result.crossed_threshold) and contrast.crossed_threshold,
        seconds=0.0,
    )


def _fig5() -> ReportSection:
    from repro.experiments.fig05_delay_sweep import measure_occupancy

    plateau = measure_occupancy(100.0, 5, duration_s=1.0)
    shallow = measure_occupancy(100.0, 1, duration_s=1.0)
    slow = measure_occupancy(1000.0, 5, duration_s=1.0)
    return ReportSection(
        title="Fig 5 — occupancy vs inter-packet delay/threshold",
        paper_claim="~50 % plateau; threshold-1 lower; decay at large delay",
        lines=[
            f"plateau {100 * plateau:.1f} %, threshold-1 {100 * shallow:.1f} %, "
            f"1000 us {100 * slow:.1f} %"
        ],
        ok=(0.4 < plateau < 0.6) and shallow < plateau and slow < 0.8 * plateau,
        seconds=0.0,
    )


def _fig6a() -> ReportSection:
    from repro.experiments.fig06_traffic import run_udp_for_scheme

    kwargs = dict(rates_mbps=(20,), copies=1, run_seconds=1.0)
    baseline = run_udp_for_scheme(Scheme.BASELINE, **kwargs).throughput_by_rate[20]
    powifi = run_udp_for_scheme(Scheme.POWIFI, **kwargs).throughput_by_rate[20]
    noqueue = run_udp_for_scheme(Scheme.NO_QUEUE, **kwargs).throughput_by_rate[20]
    blind = run_udp_for_scheme(Scheme.BLIND_UDP, **kwargs).throughput_by_rate[20]
    return ReportSection(
        title="Fig 6a — UDP throughput per scheme (20 Mb/s offered)",
        paper_claim="PoWiFi ~= Baseline; NoQueue ~half; BlindUDP floors",
        lines=[
            f"baseline {baseline:.1f} / powifi {powifi:.1f} / "
            f"noqueue {noqueue:.1f} / blind {blind:.1f} Mb/s"
        ],
        ok=(abs(powifi - baseline) / baseline < 0.15)
        and noqueue < 0.75 * baseline
        and blind < 2.0,
        seconds=0.0,
    )


def _fig9() -> ReportSection:
    from repro.experiments.fig09_return_loss import run_fig09

    free, recharging = run_fig09()
    return ReportSection(
        title="Fig 9 — harvester return loss",
        paper_claim="< -10 dB across 2.401-2.473 GHz, both builds",
        lines=[
            f"battery-free worst {free.worst_in_band_db:.1f} dB; "
            f"battery-recharging worst {recharging.worst_in_band_db:.1f} dB"
        ],
        ok=free.meets_spec and recharging.meets_spec,
        seconds=0.0,
    )


def _fig10() -> ReportSection:
    from repro.experiments.fig10_rectifier import run_fig10

    free, recharging = run_fig10(input_powers_dbm=(-20, -10, 0, 4))
    return ReportSection(
        title="Fig 10 — rectifier output and sensitivity",
        paper_claim="sensitivities -17.8 / -19.3 dBm; ~150 uW at +4 dBm",
        lines=[
            f"sensitivities {free.worst_sensitivity_dbm:.1f} / "
            f"{recharging.worst_sensitivity_dbm:.1f} dBm; "
            f"output at +4 dBm {1e6 * free.output_at(6, 4):.0f} uW"
        ],
        ok=abs(free.worst_sensitivity_dbm + 17.8) < 1.0
        and abs(recharging.worst_sensitivity_dbm + 19.3) < 1.0,
        seconds=0.0,
    )


def _fig11_12() -> ReportSection:
    from repro.experiments.fig11_temperature import run_fig11
    from repro.experiments.fig12_camera import run_fig12

    temperature = run_fig11(distances_feet=(10, 20, 28))
    camera = run_fig12(distances_feet=(10, 17, 23))
    return ReportSection(
        title="Figs 11/12 — sensor operating ranges",
        paper_claim="temp 20/28 ft; camera 17/23+ ft",
        lines=[
            f"temperature {temperature.battery_free_range_feet:.1f} / "
            f"{temperature.battery_recharging_range_feet:.1f} ft; "
            f"camera {camera.battery_free_range_feet:.1f} / "
            f"{camera.battery_recharging_range_feet:.1f} ft"
        ],
        ok=abs(temperature.battery_free_range_feet - 20) < 2.5
        and abs(temperature.battery_recharging_range_feet - 28) < 2.5
        and abs(camera.battery_free_range_feet - 17) < 2.0,
        seconds=0.0,
    )


def _fig13() -> ReportSection:
    from repro.experiments.fig13_walls import FIG13_MATERIALS, run_fig13

    result = run_fig13()
    times = [result.inter_frame_minutes[m] for m in FIG13_MATERIALS]
    return ReportSection(
        title="Fig 13 — camera through walls",
        paper_claim="operational everywhere; time grows with absorption",
        lines=[
            ", ".join(
                f"{m}={result.inter_frame_minutes[m]:.1f}min" for m in FIG13_MATERIALS
            )
        ],
        ok=result.all_operational and times == sorted(times),
        seconds=0.0,
    )


def _fig14_15() -> ReportSection:
    from repro.experiments.fig14_homes import run_fig14
    from repro.experiments.fig15_home_sensor import run_fig15

    study = run_fig14(duration_s=12 * 3600.0)
    sensor = run_fig15(study)
    low, high = study.mean_cumulative_range
    medians = [sensor.median(i) for i in sensor.samples_by_home]
    return ReportSection(
        title="Figs 14/15 — six-home deployment",
        paper_claim="cumulative means 78-127 %; power delivered in every home",
        lines=[
            f"means {100 * low:.0f}-{100 * high:.0f} %; sensor medians "
            f"{min(medians):.1f}-{max(medians):.1f} reads/s"
        ],
        ok=(0.6 < low < 1.1) and (0.9 < high < 1.6) and sensor.all_homes_deliver_power,
        seconds=0.0,
    )


def _sec8() -> ReportSection:
    from repro.experiments.sec8a_charger import run_sec8a
    from repro.experiments.sec8c_multi_router import run_sec8c

    charger = run_sec8a()
    routers = run_sec8c(router_counts=(1, 2), duration_s=0.5)
    return ReportSection(
        title="§8 — charging hotspot and multi-router",
        paper_claim="2.3 mA / 41 % in 2.5 h; aggregate occupancy stays high",
        lines=[
            f"charger {charger.average_current_ma:.2f} mA, "
            f"{charger.charge_percent_after:.0f} % in 2.5 h; multi-router "
            f"aggregate {100 * routers.aggregate_cumulative(2):.0f} %"
        ],
        ok=abs(charger.average_current_ma - 2.3) < 0.5
        and routers.occupancy_stays_high,
        seconds=0.0,
    )


_SECTIONS: List[Callable[[], ReportSection]] = [
    _fig1,
    _fig5,
    _fig6a,
    _fig9,
    _fig10,
    _fig11_12,
    _fig13,
    _fig14_15,
    _sec8,
]


def generate_report(target: Optional[str] = None) -> str:
    """Run every check and render the markdown report.

    Parameters
    ----------
    target:
        Optional path to write the report to.
    """
    obs_runtime.reset()
    sections: List[ReportSection] = []
    for build in _SECTIONS:
        started = time.perf_counter()
        section = build()
        section.seconds = time.perf_counter() - started
        sections.append(section)
    passed = sum(1 for s in sections if s.ok)
    lines = [
        "# PoWiFi reproduction report",
        "",
        f"{passed}/{len(sections)} experiment groups reproduce the paper's claims.",
        "",
        "| experiment | paper claim | measured | ok | s |",
        "|---|---|---|---|---|",
    ]
    for section in sections:
        measured = "; ".join(section.lines)
        status = "✅" if section.ok else "❌"
        lines.append(
            f"| {section.title} | {section.paper_claim} | {measured} | "
            f"{status} | {section.seconds:.1f} |"
        )
    engine = obs_runtime.aggregate_engine_stats()
    if engine["simulators"]:
        lines += [
            "",
            "## Engine telemetry",
            "",
            f"{engine['simulators']} simulators, "
            f"{engine['dispatched']} events dispatched, "
            f"{engine['cancelled']} cancelled, "
            f"heap high-water {engine['heap_high_watermark']}.",
            "",
            "| callback | calls | wall s |",
            "|---|---|---|",
        ]
        for row in obs_runtime.hot_callbacks(5):
            lines.append(f"| {row['name']} | {row['count']} | {row['wall_s']:.3f} |")
    text = "\n".join(lines) + "\n"
    if target is not None:
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
