"""Calibration-sensitivity analysis: how robust are the reproduced results
to the simulator's own assumptions?

The reproduction fixes several environmental parameters the paper could not
report precisely (indoor path-loss exponent, ambient office load, per-AP
neighbourhood utilisation). This module sweeps them and reports how the
headline results move — the reproducibility equivalent of an error-bar
analysis, and the honest answer to "did you just tune it until it matched?"
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.config import Scheme
from repro.experiments.base import build_testbed
from repro.rf.link import LinkBudget, Transmitter
from repro.rf.propagation import LogDistancePathLoss
from repro.sensors.camera import WiFiCamera
from repro.sensors.temperature import TemperatureSensor


@dataclass
class PathLossSensitivity:
    """Sensor ranges as a function of the path-loss exponent."""

    #: exponent -> (temp-free range ft, temp-recharging, camera-free).
    ranges: Dict[float, tuple] = field(default_factory=dict)

    def spread_feet(self) -> float:
        """Max-min of the battery-free temperature range over the sweep."""
        values = [r[0] for r in self.ranges.values()]
        return max(values) - min(values)


def sweep_path_loss_exponent(
    exponents: Sequence[float] = (1.7, 1.8, 1.85, 1.9, 2.0),
) -> PathLossSensitivity:
    """Sweep the indoor exponent and report the §5 operating ranges.

    The calibrated value (1.85) reproduces the paper's 20/28/17 ft; nearby
    exponents must keep the *ordering* (camera < temp-free < recharging)
    even as absolute ranges move by a few feet.
    """
    result = PathLossSensitivity()
    for exponent in exponents:
        link = LinkBudget(
            Transmitter(tx_power_dbm=30.0),
            path_loss=LogDistancePathLoss(exponent=exponent),
        )
        temp_free = TemperatureSensor(battery_recharging=False).range_feet(link)
        temp_recharging = TemperatureSensor(battery_recharging=True).range_feet(link)
        camera_free = WiFiCamera(battery_recharging=False).range_feet(link)
        result.ranges[exponent] = (temp_free, temp_recharging, camera_free)
    return result


@dataclass
class OfficeLoadSensitivity:
    """PoWiFi-vs-baseline client throughput across ambient office loads."""

    #: office occupancy -> (baseline Mb/s, powifi Mb/s).
    throughput: Dict[float, tuple] = field(default_factory=dict)

    def max_powifi_penalty(self) -> float:
        """Worst relative client-throughput loss PoWiFi ever causes."""
        worst = 0.0
        for baseline, powifi in self.throughput.values():
            if baseline > 0:
                worst = max(worst, (baseline - powifi) / baseline)
        return worst


def sweep_office_load(
    loads: Sequence[float] = (0.1, 0.25, 0.4, 0.55),
    offered_mbps: float = 10.0,
    duration_s: float = 2.0,
    seed: int = 0,
) -> OfficeLoadSensitivity:
    """Sweep ambient load; the do-no-harm property must hold at every level.

    This is the key robustness claim: whatever the building's actual load
    was, PoWiFi ≈ Baseline for the client.
    """
    from repro.netstack.udp import UdpFlow

    result = OfficeLoadSensitivity()
    for load in loads:
        pair = []
        for scheme in (Scheme.BASELINE, Scheme.POWIFI):
            bed = build_testbed(
                scheme, seed=seed, channels=(1,), office_occupancy=load
            )
            flow = UdpFlow(
                bed.sim, bed.router.client_station, target_rate_mbps=offered_mbps
            )
            bed.start()
            flow.start()
            bed.sim.run(until=duration_s)
            pair.append(flow.delivered_mbps(0.5, duration_s))
        result.throughput[load] = tuple(pair)
    return result
