"""Fig 9: harvester return loss across the Wi-Fi band (§4.2(a)).

The VNA sweep: both harvester variants must stay below −10 dB return loss
over 2.401–2.473 GHz, which bounds the reflected-power penalty under 0.5 dB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.harvester.matching import (
    LMatchingNetwork,
    battery_free_matching,
    battery_recharging_matching,
)
from repro.mac80211.channels import WIFI_BAND_START_HZ, WIFI_BAND_STOP_HZ


@dataclass
class ReturnLossResult:
    """One harvester's Fig 9 sweep."""

    name: str
    #: (frequency Hz, return loss dB) series over the plotted span.
    sweep: List[Tuple[float, float]]
    worst_in_band_db: float

    @property
    def meets_spec(self) -> bool:
        """The paper's acceptance criterion: < −10 dB across the band."""
        return self.worst_in_band_db < -10.0

    @property
    def worst_power_penalty_db(self) -> float:
        """Power lost to reflection at the worst point (paper: < 0.5 dB)."""
        import math

        gamma_sq = 10.0 ** (self.worst_in_band_db / 10.0)
        return -10.0 * math.log10(1.0 - gamma_sq)


def sweep_network(network: LMatchingNetwork, name: str) -> ReturnLossResult:
    """Run the Fig 9 sweep on one matching network."""
    sweep = network.sweep_return_loss(2.400e9, 2.480e9, points=161)
    worst = max(
        rl
        for f, rl in sweep
        if WIFI_BAND_START_HZ <= f <= WIFI_BAND_STOP_HZ
    )
    return ReturnLossResult(name=name, sweep=sweep, worst_in_band_db=worst)


def run_fig09() -> Tuple[ReturnLossResult, ReturnLossResult]:
    """Both harvester variants' sweeps, as in Fig 9(a)/(b)."""
    return (
        sweep_network(battery_free_matching(), "battery-free"),
        sweep_network(battery_recharging_matching(), "battery-recharging"),
    )
