"""Fig 11: temperature-sensor update rate vs distance (§5.1).

Both sensor builds at increasing distances from a PoWiFi router; the §5.1
experiments measured an average cumulative occupancy of 91.3 %. Claims:
rates fall with distance; the builds are comparable up close; beyond ~15 ft
the battery-recharging build wins; ranges are 20 ft (battery-free) and
28 ft (energy-neutral battery-recharging).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.rf.link import LinkBudget, Transmitter
from repro.sensors.temperature import TemperatureSensor

#: Distances swept (feet).
DEFAULT_DISTANCES_FEET: Tuple[float, ...] = (1, 2, 3, 5, 8, 10, 12, 15, 18, 20, 22, 25, 28, 30)

#: The §5.1 experiments' measured average cumulative occupancy.
FIG11_OCCUPANCY = 0.913


@dataclass
class TemperatureSweepResult:
    """Fig 11's two curves plus the derived operating ranges."""

    #: distance ft -> update rate (reads/s), battery-free build.
    battery_free: Dict[float, float]
    #: distance ft -> energy-neutral update rate, battery-recharging build.
    battery_recharging: Dict[float, float]
    battery_free_range_feet: float
    battery_recharging_range_feet: float


def run_fig11(
    distances_feet: Sequence[float] = DEFAULT_DISTANCES_FEET,
    occupancy: float = FIG11_OCCUPANCY,
) -> TemperatureSweepResult:
    """The full Fig 11 sweep."""
    link = LinkBudget(Transmitter(tx_power_dbm=30.0))
    free = TemperatureSensor(battery_recharging=False)
    recharging = TemperatureSensor(battery_recharging=True)
    free_curve = {
        d: free.evaluate_at(link, d, occupancy).update_rate_hz
        for d in distances_feet
    }
    recharging_curve = {
        d: recharging.evaluate_at(link, d, occupancy).update_rate_hz
        for d in distances_feet
    }
    return TemperatureSweepResult(
        battery_free=free_curve,
        battery_recharging=recharging_curve,
        battery_free_range_feet=free.range_feet(link, occupancy),
        battery_recharging_range_feet=recharging.range_feet(link, occupancy),
    )
