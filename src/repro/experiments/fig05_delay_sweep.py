"""Fig 5: channel occupancy vs UDP inter-packet delay and queue threshold.

Single channel, no client traffic, 1500-byte broadcast at 54 Mb/s. The paper
sweeps the injector's inter-packet delay for queue-depth thresholds of 1, 5,
50 and 100 and finds a plateau while the delay is below the frame's on-air
duration, a decline beyond it, and a consistently lower curve for
threshold 1 (the queue repeatedly drains before user space can refill it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import InjectorConfig, Scheme
from repro.experiments.base import build_testbed
from repro.obs import runtime as obs_runtime

#: The paper's threshold sweep.
DEFAULT_THRESHOLDS: Tuple[int, ...] = (1, 5, 50, 100)

#: Delay sweep in microseconds (the paper plots 0–400 µs; we extend it so
#: the post-plateau decay is fully visible given standards-exact airtimes).
DEFAULT_DELAYS_US: Tuple[float, ...] = (10, 50, 100, 150, 200, 300, 400, 600, 800, 1000)


@dataclass
class DelaySweepResult:
    """Occupancy per (threshold, delay) point."""

    #: threshold -> list of (delay_us, occupancy) points.
    curves: Dict[int, List[Tuple[float, float]]] = field(default_factory=dict)

    def occupancy_at(self, threshold: int, delay_us: float) -> float:
        """Lookup of a single sweep point."""
        for d, occ in self.curves[threshold]:
            if math.isclose(d, delay_us):
                return occ
        raise KeyError(f"no point at threshold={threshold} delay={delay_us}")


def measure_occupancy(
    delay_us: float,
    queue_threshold: Optional[int],
    duration_s: float = 2.0,
    seed: int = 0,
    office_occupancy: Optional[float] = 0.25,
) -> float:
    """Occupancy of a single-channel injector at one sweep point."""
    config = InjectorConfig(
        inter_packet_delay_s=delay_us * 1e-6,
        queue_threshold=queue_threshold,
        rate_mbps=54.0,
    )
    bed = build_testbed(
        Scheme.POWIFI,
        seed=seed,
        channels=(1,),
        office_occupancy=office_occupancy,
        injector_override=config,
    )
    bed.start()
    bed.sim.run(until=duration_s)
    return bed.router.occupancy_by_channel()[1]


def run_fig05(
    thresholds: Sequence[int] = DEFAULT_THRESHOLDS,
    delays_us: Sequence[float] = DEFAULT_DELAYS_US,
    duration_s: float = 2.0,
    seed: int = 0,
) -> DelaySweepResult:
    """Run the full Fig 5 sweep."""
    result = DelaySweepResult()
    for threshold in thresholds:
        curve: List[Tuple[float, float]] = []
        for delay in delays_us:
            with obs_runtime.span(
                "experiments.fig5.point", threshold=int(threshold), delay_us=delay
            ):
                occupancy = measure_occupancy(
                    delay, threshold, duration_s=duration_s, seed=seed
                )
            curve.append((delay, occupancy))
        result.curves[int(threshold)] = curve
    return result
