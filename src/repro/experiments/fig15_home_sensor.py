"""Fig 15: the battery-free temperature sensor across the six homes (§6).

The sensor sits ten feet from each home's router; its update rate follows
the cumulative occupancy of that home's 60-second windows, yielding one CDF
per home. Claim: power is delivered successfully under real-world network
conditions in every home.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.fig14_homes import HomeStudyResult, run_fig14
from repro.rf.link import LinkBudget, Transmitter
from repro.sensors.temperature import TemperatureSensor

#: Sensor placement in every home (feet).
FIG15_DISTANCE_FEET = 10.0


@dataclass
class HomeSensorResult:
    """Fig 15: per-home update-rate samples (one per 60 s window)."""

    #: home index -> update-rate samples (reads/s).
    samples_by_home: Dict[int, List[float]]

    def cdf(self, home_index: int) -> List[Tuple[float, float]]:
        """(rate, cumulative fraction) points for one home's curve."""
        from repro.analysis import empirical_cdf

        return empirical_cdf(self.samples_by_home[home_index])

    def median(self, home_index: int) -> float:
        """Median update rate in one home."""
        from repro.analysis import percentile

        return percentile(self.samples_by_home[home_index], 50)

    @property
    def all_homes_deliver_power(self) -> bool:
        """The §6 claim: every home sustains a nonzero median update rate."""
        return all(self.median(i) > 0 for i in self.samples_by_home)


def run_fig15(
    study: HomeStudyResult = None,
    seed: int = 0,
    duration_s: float = 24 * 3600.0,
) -> HomeSensorResult:
    """Compute the Fig 15 CDFs (reusing a Fig 14 study when provided)."""
    if study is None:
        study = run_fig14(seed=seed, duration_s=duration_s)
    link = LinkBudget(Transmitter(tx_power_dbm=30.0))
    sensor = TemperatureSensor(battery_recharging=False)
    rx_dbm = link.received_power_dbm_at_feet(FIG15_DISTANCE_FEET)
    samples: Dict[int, List[float]] = {}
    for home in study.homes:
        rates = [
            sensor.update_rate_hz(rx_dbm, occupancy=window)
            for window in home.cumulative.samples
        ]
        samples[home.profile.index] = rates
    return HomeSensorResult(samples_by_home=samples)
