"""Fig 1 / §2: why plain Wi-Fi cannot power the harvester.

A battery-free temperature sensor sits ten feet from a stock Asus RT-AC68U
(23 dBm, 4.04 dBi antennas) whose channel occupancy is in the 10–40 % range.
The driver generates a bursty transmission schedule at that occupancy, feeds
it to the rectifier-waveform simulator, and reports the peak reservoir
voltage — which must stay below the 300 mV DC–DC threshold, reproducing the
paper's 24-hour failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.harvester.harvester import battery_free_harvester
from repro.harvester.storage import Capacitor
from repro.harvester.waveform import Burst, RectifierWaveformSimulator, VoltageSample
from repro.rf.antenna import ASUS_ROUTER_ANTENNA
from repro.rf.link import LinkBudget, Transmitter
from repro.sim.rng import RandomStreams
from repro.units import feet_to_meters

#: The §2 experiment's geometry.
SENSOR_DISTANCE_FEET = 10.0

#: The DC–DC converter's minimum input voltage [15].
MIN_THRESHOLD_V = 0.30


@dataclass
class LeakageResult:
    """Outcome of the Fig 1 reproduction."""

    received_power_dbm: float
    occupancy: float
    peak_voltage_v: float
    mean_voltage_v: float
    samples: List[VoltageSample]

    @property
    def crossed_threshold(self) -> bool:
        """Whether the harvester ever reached the 300 mV threshold."""
        return self.peak_voltage_v >= MIN_THRESHOLD_V


def generate_bursty_schedule(
    duration_s: float,
    occupancy: float,
    seed: int = 0,
    mean_burst_s: float = 500e-6,
    rng: Optional[random.Random] = None,
) -> List[Burst]:
    """A random on/off schedule with the requested busy fraction.

    Burst lengths are exponential around ``mean_burst_s`` (a few frames of
    aggregated traffic); gaps are sized to meet the occupancy. Draws come
    from the injected ``rng`` when given, otherwise from the named
    ``fig1.bursts`` stream of a :class:`RandomStreams` built on ``seed``.
    """
    if not (0.0 < occupancy < 1.0):
        raise ConfigurationError(f"occupancy must be in (0, 1), got {occupancy}")
    if rng is None:
        rng = RandomStreams(seed).stream("fig1.bursts")
    mean_gap_s = mean_burst_s * (1.0 - occupancy) / occupancy
    bursts: List[Burst] = []
    t = 0.0
    while t < duration_s:
        gap = rng.expovariate(1.0 / mean_gap_s)
        burst = rng.expovariate(1.0 / mean_burst_s)
        start = t + gap
        bursts.append(Burst(start_s=start, duration_s=burst))
        t = start + burst
    return bursts


def run_fig01(
    duration_s: float = 0.05,
    occupancy: float = 0.25,
    seed: int = 0,
) -> LeakageResult:
    """Reproduce the Fig 1 waveform measurement.

    Parameters
    ----------
    duration_s:
        Simulated span (the paper's figure shows 2.5 ms; longer spans make
        the sub-threshold conclusion statistically stronger).
    occupancy:
        The stock router's channel occupancy (§2: 10–40 %).
    """
    transmitter = Transmitter(tx_power_dbm=23.0, antenna=ASUS_ROUTER_ANTENNA)
    link = LinkBudget(transmitter)
    rx_dbm = link.received_power_dbm(feet_to_meters(SENSOR_DISTANCE_FEET))
    harvester = battery_free_harvester()
    reservoir = Capacitor(capacitance_f=1.0e-6, leakage_resistance_ohm=3.0e5)
    simulator = RectifierWaveformSimulator(
        harvester, reservoir, incident_power_dbm=rx_dbm
    )
    schedule = generate_bursty_schedule(duration_s, occupancy, seed)
    samples = simulator.run(schedule, duration_s)
    peak = max(s.voltage_v for s in samples)
    mean = sum(s.voltage_v for s in samples) / len(samples)
    return LeakageResult(
        received_power_dbm=rx_dbm,
        occupancy=occupancy,
        peak_voltage_v=peak,
        mean_voltage_v=mean,
        samples=samples,
    )


def run_fig01_powifi_contrast(
    duration_s: float = 0.05, seed: int = 0
) -> LeakageResult:
    """The counterfactual: a PoWiFi router at the same spot.

    With ~continuous cumulative transmissions and 30 dBm / 6 dBi, the same
    sensor's reservoir sails past 300 mV — the paper's whole point.
    """
    link = LinkBudget(Transmitter(tx_power_dbm=30.0))
    rx_dbm = link.received_power_dbm(feet_to_meters(SENSOR_DISTANCE_FEET))
    harvester = battery_free_harvester()
    reservoir = Capacitor(capacitance_f=1.0e-6, leakage_resistance_ohm=3.0e5)
    simulator = RectifierWaveformSimulator(
        harvester, reservoir, incident_power_dbm=rx_dbm
    )
    # Near-continuous transmission: 95 % occupancy in large chunks.
    schedule = generate_bursty_schedule(
        duration_s, 0.95, seed, mean_burst_s=5e-3
    )
    samples = simulator.run(schedule, duration_s)
    peak = max(s.voltage_v for s in samples)
    mean = sum(s.voltage_v for s in samples) / len(samples)
    return LeakageResult(
        received_power_dbm=rx_dbm,
        occupancy=0.95,
        peak_voltage_v=peak,
        mean_voltage_v=mean,
        samples=samples,
    )


def run_fig01_mac_driven(
    duration_s: float = 0.05,
    occupancy: float = 0.25,
    seed: int = 0,
) -> LeakageResult:
    """Fig 1 with the burst schedule produced by the DCF simulator itself.

    Instead of a synthetic on/off process, a stock AP is simulated on the
    shared medium at the §2 traffic level and the medium's actual
    transmission records drive the analog waveform — the full-stack version
    of the same measurement.
    """
    from repro.harvester.waveform import bursts_from_records
    from repro.mac80211.medium import Medium
    from repro.mac80211.station import Station
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    from repro.workloads.traffic import BurstyFrameSource

    sim = Simulator()
    streams = RandomStreams(seed)
    medium = Medium(sim, channel=6)
    ap = Station(sim, name="stock-ap", streams=streams)
    medium.attach(ap)
    records = []
    medium.add_observer(records.append)
    source = BurstyFrameSource(
        sim, ap, streams.stream("fig1"), target_occupancy=occupancy
    )
    source.start()
    sim.run(until=duration_s)

    transmitter = Transmitter(tx_power_dbm=23.0, antenna=ASUS_ROUTER_ANTENNA)
    link = LinkBudget(transmitter)
    rx_dbm = link.received_power_dbm(feet_to_meters(SENSOR_DISTANCE_FEET))
    harvester = battery_free_harvester()
    reservoir = Capacitor(capacitance_f=1.0e-6, leakage_resistance_ohm=3.0e5)
    simulator = RectifierWaveformSimulator(
        harvester, reservoir, incident_power_dbm=rx_dbm
    )
    samples = simulator.run(bursts_from_records(records), duration_s)
    peak = max(s.voltage_v for s in samples)
    mean = sum(s.voltage_v for s in samples) / len(samples)
    return LeakageResult(
        received_power_dbm=rx_dbm,
        occupancy=medium.occupancy(),
        peak_voltage_v=peak,
        mean_voltage_v=mean,
        samples=samples,
    )
