"""The busy-office environment of §4.

Every §4 benchmark ran "during a busy weekday in our organization, which has
multiple other clients and routers operating on channels 1, 6, and 11"; §2
reports ambient router occupancy in the 10–40 % range. :class:`OfficeBackground`
stands up one background station per channel, driven by a bursty source at a
configurable ambient load.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.mac80211.medium import Medium
from repro.mac80211.station import Station
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.traffic import BurstyFrameSource


class OfficeBackground:
    """Ambient office traffic on each channel.

    Parameters
    ----------
    sim, media, streams:
        Kernel, channel media and random streams.
    occupancy_by_channel:
        Ambient busy fraction per channel; defaults to the §2 observation
        (20–30 % on every channel).
    """

    def __init__(
        self,
        sim: Simulator,
        media: Dict[int, Medium],
        streams: RandomStreams,
        occupancy_by_channel: Optional[Dict[int, float]] = None,
    ) -> None:
        if occupancy_by_channel is None:
            occupancy_by_channel = {ch: 0.25 for ch in media}
        unknown = [ch for ch in occupancy_by_channel if ch not in media]
        if unknown:
            raise ConfigurationError(f"no medium for channels {unknown}")
        self.sim = sim
        self.stations: Dict[int, Station] = {}
        self.sources: Dict[int, BurstyFrameSource] = {}
        for channel, occupancy in occupancy_by_channel.items():
            station = Station(sim, name=f"office:ch{channel}", streams=streams)
            media[channel].attach(station)
            source = BurstyFrameSource(
                sim,
                station,
                rng=streams.stream(f"office:ch{channel}"),
                target_occupancy=occupancy,
            )
            self.stations[channel] = station
            self.sources[channel] = source

    def start(self) -> None:
        """Start every channel's background source."""
        for source in self.sources.values():
            source.start()

    def stop(self) -> None:
        """Stop all sources."""
        for source in self.sources.values():
            source.stop()
