"""Front-page models of the ten most popular US websites (§4.1(c)).

The paper loads the Alexa top-10 US front pages of January 2015 with
PhantomJS. We model each page as a root HTML document plus sub-resources,
with sizes and object counts drawn from HTTP-archive measurements of that
era, scaled so a load completes in the paper's PLT range over an ~18 Mb/s
effective wireless hop.

The absolute sizes matter less than the spread: the paper's Fig 6c shows
per-site PLTs between roughly 0.7 s (google.com) and 4 s (yahoo.com), and
the scheme-induced *deltas* (+101 ms PoWiFi, +294 ms NoQueue) are what the
reproduction must preserve.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.netstack.http import WebObject, WebPage

#: Site order as in Fig 6c.
TOP_10_US_SITES: Tuple[str, ...] = (
    "reddit.com",
    "twitter.com",
    "yahoo.com",
    "youtube.com",
    "wikipedia.org",
    "linkedin.com",
    "google.com",
    "facebook.com",
    "amazon.com",
    "ebay.com",
)

#: Per-site (root_kb, object_count, mean_object_kb, server_latency_ms).
#: Calibrated so the Baseline scheme lands near the Fig 6c bar heights.
_SITE_SHAPES: Dict[str, Tuple[float, int, float, float]] = {
    "reddit.com": (110.0, 24, 38.0, 55.0),
    "twitter.com": (90.0, 18, 34.0, 50.0),
    "yahoo.com": (160.0, 40, 42.0, 60.0),
    "youtube.com": (120.0, 28, 40.0, 55.0),
    "wikipedia.org": (60.0, 8, 22.0, 40.0),
    "linkedin.com": (85.0, 14, 30.0, 50.0),
    "google.com": (45.0, 5, 18.0, 30.0),
    "facebook.com": (95.0, 12, 28.0, 45.0),
    "amazon.com": (130.0, 30, 36.0, 55.0),
    "ebay.com": (115.0, 26, 34.0, 50.0),
}


def page_for_site(site: str, scale: float = 1.0) -> WebPage:
    """Build the :class:`WebPage` model for ``site``.

    Parameters
    ----------
    site:
        One of :data:`TOP_10_US_SITES`.
    scale:
        Uniform size multiplier; benchmarks may scale pages down to bound
        simulation time while preserving relative ordering.
    """
    try:
        root_kb, count, mean_kb, latency_ms = _SITE_SHAPES[site]
    except KeyError:
        raise ConfigurationError(
            f"unknown site {site!r}; choose from {TOP_10_US_SITES}"
        ) from None
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    objects: List[WebObject] = [
        WebObject(
            size_bytes=max(1, int(root_kb * 1024 * scale)),
            server_latency_s=latency_ms / 1e3,
        )
    ]
    for i in range(count):
        # Deterministic size spread around the mean: alternating small
        # assets and larger images, so parallel connections matter.
        factor = 0.4 if i % 3 == 0 else (1.0 if i % 3 == 1 else 1.6)
        objects.append(
            WebObject(
                size_bytes=max(1, int(mean_kb * 1024 * factor * scale)),
                server_latency_s=latency_ms / 1e3,
            )
        )
    return WebPage(name=site, objects=objects)


def all_pages(scale: float = 1.0) -> List[WebPage]:
    """The full Fig 6c page set."""
    return [page_for_site(site, scale) for site in TOP_10_US_SITES]
