"""Generic stochastic frame sources.

These drive "other people's traffic": the busy-office background of §4.1 and
the neighbouring-network load of the home deployments. Both are stations of
their own on the shared medium, so they contend with the router exactly as
real neighbours do — which is how PoWiFi's carrier-sense fairness emerges in
the simulation rather than being assumed.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.mac80211.airtime import frame_airtime_s
from repro.mac80211.frames import FrameJob, FrameKind
from repro.mac80211.station import Station
from repro.sim.engine import Event, Simulator

#: (size bytes, weight) mix approximating indoor WLAN traffic: many small
#: control/ACK-sized frames, a body of mid-size, a bulk of full MTU.
DEFAULT_SIZE_MIX: Tuple[Tuple[int, float], ...] = (
    (90, 0.3),
    (400, 0.2),
    (800, 0.15),
    (1536, 0.35),
)

#: Rates neighbouring 802.11g devices plausibly run.
DEFAULT_RATE_MIX: Tuple[Tuple[float, float], ...] = (
    (6.0, 0.1),
    (12.0, 0.15),
    (24.0, 0.3),
    (36.0, 0.25),
    (54.0, 0.2),
)


def _weighted_choice(rng: random.Random, mix: Sequence[Tuple[float, float]]) -> float:
    total = sum(w for _, w in mix)
    x = rng.random() * total
    for value, weight in mix:
        x -= weight
        if x <= 0:
            return value
    return mix[-1][0]


class PoissonFrameSource:
    """Poisson arrivals of broadcast-ish frames at a target busy fraction.

    Parameters
    ----------
    sim, station:
        Kernel and the transmitting station.
    target_occupancy:
        Desired long-run fraction of airtime this source generates
        (0 disables the source).
    size_mix, rate_mix:
        Weighted distributions for frame size and PHY rate.
    """

    def __init__(
        self,
        sim: Simulator,
        station: Station,
        rng: random.Random,
        target_occupancy: float = 0.2,
        size_mix: Sequence[Tuple[int, float]] = DEFAULT_SIZE_MIX,
        rate_mix: Sequence[Tuple[float, float]] = DEFAULT_RATE_MIX,
    ) -> None:
        if not (0.0 <= target_occupancy < 1.0):
            raise ConfigurationError(
                f"target occupancy must be in [0, 1), got {target_occupancy}"
            )
        self.sim = sim
        self.station = station
        self.rng = rng
        self.size_mix = tuple(size_mix)
        self.rate_mix = tuple(rate_mix)
        self.frames_generated = 0
        self._running = False
        self._timer: Optional[Event] = None
        self.set_target_occupancy(target_occupancy)

    def set_target_occupancy(self, target: float) -> None:
        """Retune the offered load (used by diurnal home profiles)."""
        if not (0.0 <= target < 1.0):
            raise ConfigurationError(f"target occupancy must be in [0, 1), got {target}")
        self.target_occupancy = target
        self._mean_gap = self._mean_airtime() / target if target > 0 else float("inf")

    def _mean_airtime(self) -> float:
        total_weight = sum(w for _, w in self.size_mix) * sum(w for _, w in self.rate_mix)
        mean = 0.0
        for size, sw in self.size_mix:
            for rate, rw in self.rate_mix:
                mean += sw * rw * frame_airtime_s(size, rate)
        return mean / total_weight

    def start(self) -> None:
        """Begin generating traffic."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop generating (queued frames drain)."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule_next(self) -> None:
        if not self._running or self._mean_gap == float("inf"):
            return
        gap = self.rng.expovariate(1.0 / self._mean_gap)
        self._timer = self.sim.schedule(gap, self._emit, name="bg_frame")

    def _emit(self) -> None:
        if not self._running:
            return
        size = int(_weighted_choice(self.rng, self.size_mix))
        rate = _weighted_choice(self.rng, self.rate_mix)
        frame = FrameJob(
            mac_bytes=size,
            rate_mbps=rate,
            kind=FrameKind.BACKGROUND,
            broadcast=True,  # background frames need no ACK bookkeeping here
            flow="background",
        )
        self.station.enqueue(frame)
        self.frames_generated += 1
        self._schedule_next()


class BurstyFrameSource(PoissonFrameSource):
    """Background traffic arriving in bursts (closer to real WLAN shape).

    A burst of geometrically distributed length arrives at Poisson epochs;
    within a burst frames are back-to-back in the queue. The long-run load
    still meets ``target_occupancy``.
    """

    def __init__(
        self,
        sim: Simulator,
        station: Station,
        rng: random.Random,
        target_occupancy: float = 0.2,
        mean_burst_frames: float = 5.0,
        **kwargs,
    ) -> None:
        if mean_burst_frames < 1.0:
            raise ConfigurationError(
                f"mean burst length must be >= 1, got {mean_burst_frames}"
            )
        self.mean_burst_frames = mean_burst_frames
        super().__init__(sim, station, rng, target_occupancy, **kwargs)

    def set_target_occupancy(self, target: float) -> None:
        """Retune the offered load, accounting for burst batching."""
        super().set_target_occupancy(target)
        if target > 0:
            # Bursts arrive less often; each delivers mean_burst_frames.
            self._mean_gap *= self.mean_burst_frames

    def _emit(self) -> None:
        if not self._running:
            return
        # Geometric burst length with the configured mean.
        p = 1.0 / self.mean_burst_frames
        length = 1
        while self.rng.random() > p and length < 100:
            length += 1
        for _ in range(length):
            size = int(_weighted_choice(self.rng, self.size_mix))
            rate = _weighted_choice(self.rng, self.rate_mix)
            frame = FrameJob(
                mac_bytes=size,
                rate_mbps=rate,
                kind=FrameKind.BACKGROUND,
                broadcast=True,
                flow="background",
            )
            self.station.enqueue(frame)
            self.frames_generated += 1
        self._schedule_next()
