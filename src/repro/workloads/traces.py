"""Occupancy-trace files: export, import, replay.

A deployment (real or simulated) produces a per-channel occupancy log; the
paper's routers logged every 60 seconds over 24 hours. This module defines a
small JSON-lines trace format for such logs so they can be archived, shared,
and replayed — e.g. replaying a home's trace through the duty-cycle
simulator to predict how a sensor would have fared in that exact home.

Format: one JSON object per line. The first line is a header::

    {"type": "header", "window_s": 60.0, "channels": [1, 6, 11]}

followed by one record per window::

    {"type": "window", "t": 0.0, "occupancy": {"1": 0.41, "6": 0.39, ...}}
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO, Union

from repro.core.occupancy import OccupancySeries, cumulative_series
from repro.errors import ConfigurationError


@dataclass
class OccupancyTrace:
    """A multi-channel occupancy log at fixed window resolution."""

    window_s: float
    channels: List[int]
    #: channel -> samples, all equally long.
    samples: Dict[int, List[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigurationError("window must be > 0")
        if not self.channels:
            raise ConfigurationError("trace needs at least one channel")
        for channel in self.channels:
            self.samples.setdefault(channel, [])
        lengths = {len(self.samples[ch]) for ch in self.channels}
        if len(lengths) > 1:
            raise ConfigurationError("per-channel sample counts differ")

    @property
    def window_count(self) -> int:
        """Number of windows recorded."""
        return len(self.samples[self.channels[0]])

    @property
    def duration_s(self) -> float:
        """Total span covered by the trace."""
        return self.window_count * self.window_s

    def append_window(self, occupancy: Dict[int, float]) -> None:
        """Add one window's per-channel occupancies."""
        missing = [ch for ch in self.channels if ch not in occupancy]
        if missing:
            raise ConfigurationError(f"window missing channels {missing}")
        for channel in self.channels:
            self.samples[channel].append(float(occupancy[channel]))

    # ------------------------------------------------------------ conversions

    def series(self, channel: int) -> OccupancySeries:
        """One channel's log as an :class:`OccupancySeries`."""
        if channel not in self.samples:
            raise ConfigurationError(f"channel {channel} not in trace")
        return OccupancySeries(window_s=self.window_s, samples=list(self.samples[channel]))

    def cumulative(self) -> OccupancySeries:
        """The summed cumulative series across channels."""
        return cumulative_series([self.series(ch) for ch in self.channels])

    @classmethod
    def from_home_deployment(cls, deployment) -> "OccupancyTrace":
        """Capture a :class:`repro.workloads.homes.HomeDeployment` log."""
        if not deployment.samples:
            raise ConfigurationError("deployment has not been run")
        channels = sorted(deployment.samples[0].router_occupancy)
        trace = cls(window_s=deployment.window_s, channels=channels)
        for sample in deployment.samples:
            trace.append_window(sample.router_occupancy)
        return trace

    # ------------------------------------------------------------------- I/O

    def dump(self, target: Union[str, TextIO, None] = None) -> str:
        """Serialise to the JSON-lines format."""
        lines = [
            json.dumps(
                {"type": "header", "window_s": self.window_s, "channels": self.channels}
            )
        ]
        for i in range(self.window_count):
            lines.append(
                json.dumps(
                    {
                        "type": "window",
                        "t": i * self.window_s,
                        "occupancy": {
                            str(ch): round(self.samples[ch][i], 6)
                            for ch in self.channels
                        },
                    }
                )
            )
        text = "\n".join(lines) + "\n"
        if target is None:
            return text
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
        else:
            target.write(text)
        return text

    @classmethod
    def load(cls, source: Union[str, TextIO]) -> "OccupancyTrace":
        """Parse a trace written by :meth:`dump`."""
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        else:
            lines = source.read().splitlines()
        if not lines:
            raise ConfigurationError("empty trace")
        header = json.loads(lines[0])
        if header.get("type") != "header":
            raise ConfigurationError("trace must start with a header line")
        trace = cls(
            window_s=float(header["window_s"]),
            channels=[int(ch) for ch in header["channels"]],
        )
        for line in lines[1:]:
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("type") != "window":
                raise ConfigurationError(f"unexpected record type {record.get('type')!r}")
            trace.append_window(
                {int(ch): v for ch, v in record["occupancy"].items()}
            )
        return trace


def replay_through_sensor(
    trace: OccupancyTrace,
    duty_cycle_simulator,
) -> "DutyCycleResult":
    """Replay a trace's cumulative occupancy through a duty-cycle simulator.

    Predicts how a sensor would have behaved in the deployment the trace
    came from (the Fig 15 methodology, sample by sample).
    """
    cumulative = trace.cumulative()
    return duty_cycle_simulator.run_series(cumulative.samples, trace.window_s)
