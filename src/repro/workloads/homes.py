"""The six-home deployment study (§6, Table 1, Figs 14–15).

Each home ran a PoWiFi router for 24 hours as its only Internet access
point. We reproduce the study with a *fluid* occupancy model sampled at the
paper's 60-second logging resolution: simulating 24 hours at per-frame
granularity (~5x10^8 events) would add nothing at that reporting resolution.

The fluid model shares the per-frame airtime arithmetic with the
discrete-event MAC: the router's achievable single-channel occupancy metric
is derived from the same DIFS/backoff/airtime constants, and the
carrier-sense scale-back (§6: "when the load is high on neighboring
networks, our router scales back its transmissions") is the same
proportional-share behaviour the DCF simulator exhibits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import DEFAULT_POWER_PACKET_BYTES, MAC_OVERHEAD_BYTES
from repro.core.occupancy import OccupancySeries, cumulative_series
from repro.errors import ConfigurationError
from repro.mac80211.airtime import frame_airtime_s
from repro.mac80211.rates import PHY_80211G
from repro.sim.rng import RandomStreams

#: The channels the home routers injected power on.
HOME_CHANNELS: Tuple[int, int, int] = (1, 6, 11)


@dataclass(frozen=True)
class HomeProfile:
    """One row of Table 1 plus the deployment start time.

    Attributes
    ----------
    index:
        Home number (1–6).
    users, devices, neighboring_aps:
        Table 1 columns.
    start_hour:
        Local hour the 24-h log begins (read off the Fig 14 x-axes).
    weekend:
        The paper staged homes 1–2 over a weekend, the rest on weekdays.
    """

    index: int
    users: int
    devices: int
    neighboring_aps: int
    start_hour: int
    weekend: bool

    def __post_init__(self) -> None:
        if not (0 <= self.start_hour <= 23):
            raise ConfigurationError(f"start hour must be 0-23, got {self.start_hour}")
        for label, v in (
            ("users", self.users),
            ("devices", self.devices),
            ("neighboring_aps", self.neighboring_aps),
        ):
            if v < 0:
                raise ConfigurationError(f"{label} must be >= 0, got {v}")


#: Table 1, augmented with start hours read from Fig 14.
HOME_DEPLOYMENTS: Tuple[HomeProfile, ...] = (
    HomeProfile(1, users=2, devices=6, neighboring_aps=17, start_hour=20, weekend=True),
    HomeProfile(2, users=1, devices=1, neighboring_aps=4, start_hour=16, weekend=True),
    HomeProfile(3, users=3, devices=6, neighboring_aps=10, start_hour=16, weekend=False),
    HomeProfile(4, users=2, devices=4, neighboring_aps=15, start_hour=20, weekend=False),
    HomeProfile(5, users=1, devices=2, neighboring_aps=24, start_hour=0, weekend=False),
    HomeProfile(6, users=3, devices=6, neighboring_aps=16, start_hour=20, weekend=False),
)


def peak_single_channel_metric(
    rate_mbps: float = 54.0,
    ip_bytes: int = DEFAULT_POWER_PACKET_BYTES,
    kernel_efficiency: float = 0.92,
) -> float:
    """Best-case Σ size/rate occupancy a lone injector can sustain.

    Derived from the same constants the DCF simulator uses: each power frame
    cycle spends DIFS + mean backoff + the frame's airtime on the channel,
    but the occupancy metric only credits the payload bits (size/rate);
    kernel pacing hiccups shave a further few percent (§3.2(ii)).

    >>> 0.55 < peak_single_channel_metric() < 0.65
    True
    """
    mac_bytes = ip_bytes + MAC_OVERHEAD_BYTES
    payload_time = 8 * mac_bytes / (rate_mbps * 1e6)
    cycle = (
        PHY_80211G.difs
        + (PHY_80211G.cw_min / 2.0) * PHY_80211G.slot_time
        + frame_airtime_s(mac_bytes, rate_mbps)
    )
    return kernel_efficiency * payload_time / cycle


def diurnal_multiplier(hour_of_day: float, weekend: bool = False) -> float:
    """Relative neighbourhood Wi-Fi activity by local hour.

    A smooth two-bump curve: a morning shoulder, an evening peak around
    21:00, and a deep trough near 04:00. Weekends flatten the morning
    commute dip.
    """
    h = hour_of_day % 24.0
    evening = math.exp(-((h - 21.0) % 24.0 - 0.0) ** 2 / 18.0) + math.exp(
        -(((h - 21.0) % 24.0) - 24.0) ** 2 / 18.0
    )
    morning = 0.5 * math.exp(-((h - 9.0) ** 2) / 8.0)
    trough = 0.35
    base = trough + 0.9 * evening + (0.4 if weekend else 1.0) * morning
    return min(base, 1.6)


@dataclass
class HomeWindowSample:
    """One 60-second log window."""

    time_s: float
    hour_of_day: float
    neighbor_load: Dict[int, float]
    client_load: float
    power_occupancy: Dict[int, float]
    router_occupancy: Dict[int, float]

    @property
    def cumulative(self) -> float:
        """Cumulative router occupancy across channels for this window."""
        return sum(self.router_occupancy.values())


class HomeDeployment:
    """Generates the 24-hour occupancy log for one home.

    Parameters
    ----------
    profile:
        The home's Table 1 row.
    streams:
        Random streams (forked per home for independence).
    window_s:
        Log resolution; the paper logs every 60 s.
    duration_s:
        Deployment length; 24 h in the paper.
    """

    def __init__(
        self,
        profile: HomeProfile,
        streams: Optional[RandomStreams] = None,
        window_s: float = 60.0,
        duration_s: float = 24 * 3600.0,
    ) -> None:
        if window_s <= 0 or duration_s <= 0:
            raise ConfigurationError("window and duration must be > 0")
        self.profile = profile
        self.streams = (streams or RandomStreams(0)).fork(f"home{profile.index}")
        self.window_s = window_s
        self.duration_s = duration_s
        self.samples: List[HomeWindowSample] = []
        # Contending with neighbours inflates backoff and causes the
        # occasional power-frame collision; 0.78 reflects the injector's
        # effective pacing efficiency in occupied neighbourhoods.
        self._peak = peak_single_channel_metric(kernel_efficiency=0.78)

    # ------------------------------------------------------------ load model

    def _neighbor_base_load(self, channel: int) -> float:
        """Mean airtime fraction the neighbourhood claims on ``channel``.

        Neighbouring APs cluster on the non-overlapping channels; each
        contributes a few percent of effective busy time once hidden
        terminals and partial-overlap energy are folded in.
        """
        rng = self.streams.stream(f"chan-split:{channel}")
        aps_per_channel = self.profile.neighboring_aps / len(HOME_CHANNELS)
        # Effective per-AP busy fraction folds in hidden terminals and
        # overlapping-channel energy; a baseline floor covers non-Wi-Fi
        # interferers (Bluetooth, microwave ovens, cordless gear) present
        # in every urban apartment.
        per_ap = 0.050 + 0.010 * rng.random()
        floor = 0.17
        return min(0.85, floor + aps_per_channel * per_ap)

    def _client_base_load(self) -> float:
        """Mean airtime the home's own devices claim on the client channel."""
        activity = 0.01 * self.profile.users + 0.004 * self.profile.devices
        return min(0.3, activity)

    # ------------------------------------------------------------ generation

    def run(self) -> List[HomeWindowSample]:
        """Generate every 60 s window of the deployment."""
        self.samples = []
        noise_rng = self.streams.stream("noise")
        base_neighbor = {ch: self._neighbor_base_load(ch) for ch in HOME_CHANNELS}
        base_client = self._client_base_load()
        n_windows = int(self.duration_s / self.window_s)
        # Slowly varying AR(1) noise so occupancy wiggles like Fig 14.
        ar_state = {ch: 0.0 for ch in HOME_CHANNELS}
        client_ar = 0.0
        for i in range(n_windows):
            t = i * self.window_s
            hour = (self.profile.start_hour + t / 3600.0) % 24.0
            mult = diurnal_multiplier(hour, self.profile.weekend)
            neighbor_load: Dict[int, float] = {}
            for ch in HOME_CHANNELS:
                ar_state[ch] = 0.95 * ar_state[ch] + 0.05 * noise_rng.gauss(0.0, 1.0)
                load = base_neighbor[ch] * mult * (1.0 + 0.6 * ar_state[ch])
                neighbor_load[ch] = min(max(load, 0.02), 0.9)
            client_ar = 0.9 * client_ar + 0.1 * noise_rng.gauss(0.0, 1.0)
            client_load = min(
                max(base_client * mult * (1.0 + 1.2 * client_ar), 0.0), 0.6
            )
            self.samples.append(
                self._window_sample(t, hour, neighbor_load, client_load)
            )
        return self.samples

    def _window_sample(
        self,
        t: float,
        hour: float,
        neighbor_load: Dict[int, float],
        client_load: float,
    ) -> HomeWindowSample:
        """Apply the carrier-sense share model to one window."""
        power: Dict[int, float] = {}
        router: Dict[int, float] = {}
        for ch in HOME_CHANNELS:
            own_client = client_load if ch == HOME_CHANNELS[0] else 0.0
            # The injector is always backlogged; carrier sense grants it the
            # airtime the neighbours and the home's own clients leave free.
            available = max(0.0, 1.0 - neighbor_load[ch] - own_client)
            power[ch] = self._peak * available
            # The paper's metric counts the router's client traffic too.
            router[ch] = power[ch] + own_client
        return HomeWindowSample(
            time_s=t,
            hour_of_day=hour,
            neighbor_load=neighbor_load,
            client_load=client_load,
            power_occupancy=power,
            router_occupancy=router,
        )

    # -------------------------------------------------------------- metrics

    def occupancy_series(self) -> Dict[int, OccupancySeries]:
        """Per-channel router-occupancy series (run() must have been called)."""
        if not self.samples:
            raise ConfigurationError("call run() first")
        out: Dict[int, OccupancySeries] = {}
        for ch in HOME_CHANNELS:
            series = OccupancySeries(window_s=self.window_s)
            series.samples = [s.router_occupancy[ch] for s in self.samples]
            out[ch] = series
        return out

    def cumulative_occupancy_series(self) -> OccupancySeries:
        """Cumulative (summed) occupancy series across the three channels."""
        return cumulative_series(list(self.occupancy_series().values()))
