"""Workload generators: office background traffic, the Alexa top-10 page
models, and the six-home deployment profiles of Table 1."""

from repro.workloads.traffic import PoissonFrameSource, BurstyFrameSource
from repro.workloads.office import OfficeBackground
from repro.workloads.web import TOP_10_US_SITES, page_for_site
from repro.workloads.homes import HOME_DEPLOYMENTS, HomeDeployment, HomeProfile

__all__ = [
    "PoissonFrameSource",
    "BurstyFrameSource",
    "OfficeBackground",
    "TOP_10_US_SITES",
    "page_for_site",
    "HOME_DEPLOYMENTS",
    "HomeDeployment",
    "HomeProfile",
]
